//! Trace capture → replay fidelity.
//!
//! The paper's methodology feeds captured reference traces into the
//! memory-system simulator (Simics → Sumo, Section 3.3). For that to be
//! sound, a replayed trace must reproduce the live run's memory-system
//! behavior exactly: same hit levels, same upgrades, same cache-to-cache
//! transfers. These tests capture a live SPECjbb window through the
//! observer seam and assert the replay is bit-identical.

use memsys::{Addr, AddrRange};
use middlesim::engine::{replay_trace, TraceObserver};
use middlesim::{AccessSource, ExperimentPlan, Machine, MachineConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

/// A short but real SPECjbb run on `pset` processors with a
/// [`TraceObserver`] attached from cycle zero, returning the machine
/// (after its measurement window) and the capture.
fn captured_run(pset: usize, seed: u64) -> (Machine<SpecJbb>, memsys::SystemTrace) {
    let cfg = SpecJbbConfig::scaled(2 * pset, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
    let handle = m.attach_observer(TraceObserver::new());
    m.run_until(4 * MCYCLES);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + 8 * MCYCLES);
    let trace = m.observer(handle).trace().clone();
    (m, trace)
}

/// Replaying a capture into a fresh, cold memory system of the same
/// configuration reproduces the live window statistics *exactly*: the
/// warm-up prefix re-warms the caches and the in-stream window marker
/// resets the counters at the same point in coherence order.
#[test]
fn replay_reproduces_live_window_statistics() {
    let (m, trace) = captured_run(2, 7);
    assert!(trace.refs() > 10_000, "capture is non-trivial");
    let live = m.memory().stats().clone();
    let replayed = replay_trace(&trace, m.memory().config());
    assert_eq!(
        replayed.stats, live,
        "replayed window statistics must equal the live run's"
    );
    // Spot-check the headline counters the figures are built from.
    assert_eq!(replayed.stats.data().l2_misses, live.data().l2_misses);
    assert_eq!(replayed.stats.data().upgrades, live.data().upgrades);
    assert_eq!(replayed.stats.data().c2c, live.data().c2c);
    assert!(replayed.instructions > 0);
}

/// Capture once, replay twice — the replay itself is deterministic, and
/// replaying through the experiment plan merges in input order.
#[test]
fn replay_is_deterministic_and_plan_routable() {
    let (m, trace) = captured_run(1, 3);
    let hierarchy = m.memory().config().clone();
    let a = replay_trace(&trace, &hierarchy);
    let b = replay_trace(&trace, &hierarchy);
    assert_eq!(a, b);
    let plan = ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(2);
    let reports = middlesim::replay_traces(&plan, &[trace.clone(), trace], &hierarchy);
    assert_eq!(reports[0], a);
    assert_eq!(reports[1], a);
}

/// The Section 3.3 filter: a capture reduced to a processor subset
/// replays only that subset's traffic, and filtering at capture time
/// (observer predicate) equals filtering the full capture afterwards
/// with [`memsys::SystemTrace::filtered_cpus`].
#[test]
fn filtered_capture_equals_post_filtered_trace() {
    let cfg = SpecJbbConfig::scaled(4, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(2);
    mc.seed = 5;
    let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
    let full = m.attach_observer(TraceObserver::new());
    let filtered = m.attach_observer(TraceObserver::filtered(
        |cpu: usize, _source: AccessSource| cpu == 0,
    ));
    m.run_until(4 * MCYCLES);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + 4 * MCYCLES);

    let post = m.observer(full).trace().filtered_cpus(|cpu| cpu == 0);
    let at_capture = m.observer(filtered).trace();
    assert!(at_capture.refs() > 0);
    assert!(at_capture.refs() < m.observer(full).trace().refs());
    assert_eq!(at_capture.refs(), post.refs());
    assert_eq!(at_capture.instructions(), post.instructions());
}
