//! Same-seed determinism, serially and in parallel.
//!
//! A seed names one reproducible universe: two runs of the same machine
//! with the same seed must agree bit-for-bit, and the parallel
//! experiment runner must produce exactly the serial results no matter
//! how many worker threads claim the jobs.

use std::collections::HashSet;
use std::sync::Mutex;

use memsys::{Addr, AddrRange};
use middlesim::{ExperimentPlan, Machine, MachineConfig, WindowReport};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

fn jbb(pset: usize, seed: u64) -> Machine<SpecJbb> {
    let cfg = SpecJbbConfig::scaled(2 * pset, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, SpecJbb::new(cfg, region))
}

fn measure(pset: usize, seed: u64) -> WindowReport {
    let mut m = jbb(pset, seed);
    m.run_until(10 * MCYCLES);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + 20 * MCYCLES);
    m.window_report()
}

/// Two runs of the same seed produce the identical window report.
#[test]
fn same_seed_same_report() {
    let a = measure(2, 7);
    let b = measure(2, 7);
    assert_eq!(a, b, "same seed must reproduce the window bit-for-bit");
}

/// The parallel runner returns exactly the serial results, in input
/// order, at every thread count.
#[test]
fn parallel_runner_matches_serial_bit_for_bit() {
    // pset x seed jobs, enough to keep several workers busy at once.
    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..3u64).map(move |s| (p, s)))
        .collect();
    let run = |plan: &ExperimentPlan| plan.run(&jobs, |&(p, s)| measure(p, s));

    let serial = run(&ExperimentPlan::serial(middlesim::Effort::Quick));
    for threads in [2, 4] {
        let parallel = run(&ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread run diverged from the serial run"
        );
    }
}

/// The runner demonstrably fans jobs across at least two OS threads.
#[test]
fn parallel_runner_uses_multiple_threads() {
    let plan = ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(4);
    let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let jobs: Vec<u32> = (0..16).collect();
    let _ = plan.run(&jobs, |_| {
        ids.lock().unwrap().insert(std::thread::current().id());
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct >= 2,
        "expected >= 2 worker threads, saw {distinct}"
    );
}
