//! Same-seed determinism, serially and in parallel.
//!
//! A seed names one reproducible universe: two runs of the same machine
//! with the same seed must agree bit-for-bit, and the parallel
//! experiment runner must produce exactly the serial results no matter
//! how many worker threads claim the jobs.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use memsys::{Addr, AddrRange, DramConfig, MemoryConfig};
use middlesim::{ExperimentPlan, Machine, MachineConfig, WindowReport};
use probes::RunLog;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

fn jbb_on(pset: usize, seed: u64, memory: MemoryConfig) -> Machine<SpecJbb> {
    let cfg = SpecJbbConfig::scaled(2 * pset, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    mc.hierarchy.memory = memory;
    Machine::new(mc, SpecJbb::new(cfg, region))
}

fn jbb(pset: usize, seed: u64) -> Machine<SpecJbb> {
    jbb_on(pset, seed, MemoryConfig::Flat)
}

fn measure_on(pset: usize, seed: u64, memory: MemoryConfig) -> WindowReport {
    let mut m = jbb_on(pset, seed, memory);
    m.run_until(10 * MCYCLES);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + 20 * MCYCLES);
    m.window_report()
}

fn measure(pset: usize, seed: u64) -> WindowReport {
    measure_on(pset, seed, MemoryConfig::Flat)
}

/// Two runs of the same seed produce the identical window report.
#[test]
fn same_seed_same_report() {
    let a = measure(2, 7);
    let b = measure(2, 7);
    assert_eq!(a, b, "same seed must reproduce the window bit-for-bit");
}

/// The parallel runner returns exactly the serial results, in input
/// order, at every thread count.
#[test]
fn parallel_runner_matches_serial_bit_for_bit() {
    // pset x seed jobs, enough to keep several workers busy at once.
    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..3u64).map(move |s| (p, s)))
        .collect();
    let run = |plan: &ExperimentPlan| plan.run(&jobs, |&(p, s)| measure(p, s));

    let serial = run(&ExperimentPlan::serial(middlesim::Effort::Quick));
    for threads in [2, 4] {
        let parallel = run(&ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread run diverged from the serial run"
        );
    }
}

/// The determinism contract holds for every memory backend, not just the
/// flat default: a machine timed by the load-dependent `BankedDram`
/// model reproduces its window bit-for-bit on the same seed, and the
/// parallel runner merges the identical results at 1/2/4 workers. The
/// DRAM backend's internal clock advances only from simulated cycles the
/// machine feeds it, so worker scheduling must not leak into the timing.
#[test]
fn dram_backend_runs_are_deterministic_serial_and_parallel() {
    let dram = MemoryConfig::BankedDram(DramConfig::default());
    let a = measure_on(2, 7, dram);
    let b = measure_on(2, 7, dram);
    assert_eq!(a, b, "same seed must reproduce the DRAM-timed window");
    assert_ne!(
        a,
        measure(2, 7),
        "DRAM timing should actually change the window (else the backend is inert)"
    );

    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let run = |plan: &ExperimentPlan| plan.run(&jobs, |&(p, s)| measure_on(p, s, dram));
    let serial = run(&ExperimentPlan::serial(middlesim::Effort::Quick));
    for threads in [1, 2, 4] {
        let parallel = run(&ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread DRAM-backed run diverged from the serial run"
        );
    }
}

/// Observability must be free: the same batch run bare, with a RunLog
/// attached (`run_with`-style plain runs and `run_hinted` cost-hinted
/// runs), and with per-job counter snapshots (`run_probed`) produces
/// bit-identical outputs at every worker count — span emission lives
/// outside the input-order merge.
#[test]
fn run_log_attachment_leaves_outputs_bit_identical() {
    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let cost = |&(p, _): &(usize, u64)| middlesim::Effort::Quick.cost_hint(p);

    let bare_plain =
        ExperimentPlan::serial(middlesim::Effort::Quick).run(&jobs, |&(p, s)| measure(p, s));
    let bare_hinted =
        ExperimentPlan::serial(middlesim::Effort::Quick)
            .run_hinted(&jobs, cost, |&(p, s)| measure(p, s));
    assert_eq!(bare_plain, bare_hinted);

    let log = Arc::new(RunLog::new());
    for threads in [1, 2, 4] {
        let plan = ExperimentPlan::serial(middlesim::Effort::Quick)
            .with_threads(threads)
            .with_run_log(Arc::clone(&log), "determinism")
            .with_job_labels(jobs.iter().map(|&(p, s)| format!("p{p}-s{s}")).collect());
        let logged = plan.run_hinted(&jobs, cost, |&(p, s)| measure(p, s));
        assert_eq!(
            bare_plain, logged,
            "{threads}-thread logged run diverged from the bare run"
        );
        let probed = plan.run_probed(&jobs, cost, |&(p, s)| {
            let mut m = jbb(p, s);
            m.run_until(10 * MCYCLES);
            m.begin_measurement();
            let start = m.time();
            m.run_until(start + 20 * MCYCLES);
            (m.window_report(), Some(m.counters()))
        });
        assert_eq!(
            bare_plain, probed,
            "{threads}-thread probed run diverged from the bare run"
        );
    }

    // Every job of every logged run produced exactly one span, and the
    // serialized log passes the simreport schema check.
    assert_eq!(log.run_count(), 6);
    assert_eq!(log.span_count(), 6 * jobs.len());
    let jsonl = log.to_jsonl(&probes::Provenance {
        git_rev: "test".into(),
        hostname: "test".into(),
        cpu_count: 4,
        timestamp: 0,
        workers: None,
        effort: None,
        sim_mode: None,
    });
    let parsed = probes::report::check(&jsonl).expect("runner emits schema-valid JSONL");
    assert!(parsed
        .jobs
        .iter()
        .all(|j| j.label.is_some() && j.cost_hint.is_some()));
    // run_probed spans carry the counter snapshots; the plain hinted
    // runs carry none.
    let probed_spans = parsed
        .jobs
        .iter()
        .filter(|j| !j.counters.is_empty())
        .count();
    assert_eq!(probed_spans, 3 * jobs.len());
}

/// Interval sampling and latency histograms must also be free: running
/// the same jobs with an `IntervalSampler` attached, latency histograms
/// enabled, and the full telemetry streamed through `run_telemetry`
/// leaves every merged output bit-identical to the bare run, at every
/// worker count. The sampler only ever reads counters and the
/// histograms only ever observe latencies the simulation already
/// computed, so attaching them cannot perturb a single simulated event.
#[test]
fn interval_sampler_attachment_leaves_outputs_bit_identical() {
    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let cost = |&(p, _): &(usize, u64)| middlesim::Effort::Quick.cost_hint(p);
    let bare = ExperimentPlan::serial(middlesim::Effort::Quick).run(&jobs, |&(p, s)| measure(p, s));

    let log = Arc::new(RunLog::new());
    for threads in [1, 2, 4] {
        let plan = ExperimentPlan::serial(middlesim::Effort::Quick)
            .with_threads(threads)
            .with_run_log(Arc::clone(&log), "sampled");
        let sampled = plan.run_telemetry(&jobs, cost, |&(p, s)| {
            let mut m = jbb(p, s);
            m.enable_latency_hists();
            let sampler = m.attach_observer(middlesim::IntervalSampler::new(5 * MCYCLES));
            m.run_until(10 * MCYCLES);
            m.begin_measurement();
            let start = m.time();
            m.run_until(start + 20 * MCYCLES);
            let mut tele = middlesim::JobTelemetry::counters(Some(m.counters()));
            if let Some(h) = m.latency_hist() {
                tele.hists.push(("mem.latency".into(), h.clone()));
            }
            if let Some(h) = m.drain_hist() {
                tele.hists.push(("cpu.store_drain".into(), h));
            }
            tele.intervals = m.observer(sampler).samples().to_vec();
            (m.window_report(), tele)
        });
        assert_eq!(
            bare, sampled,
            "{threads}-thread sampled run diverged from the bare run"
        );
    }

    // Three logged runs, each with a full telemetry set: spans with
    // counters, a 20-Mcycle measurement window sampled at 5 Mcycles
    // (plus warmup samples), and both histograms per job. The
    // serialized log passes the simreport schema check.
    assert_eq!(log.run_count(), 3);
    assert_eq!(log.span_count(), 3 * jobs.len());
    assert_eq!(log.hist_count(), 3 * jobs.len() * 2);
    assert!(log.interval_count() >= 3 * jobs.len() * 4);
    let jsonl = log.to_jsonl(&probes::Provenance {
        git_rev: "test".into(),
        hostname: "test".into(),
        cpu_count: 4,
        timestamp: 0,
        workers: None,
        effort: None,
        sim_mode: None,
    });
    let parsed = probes::report::check(&jsonl).expect("telemetry log passes the schema check");
    assert!(parsed.intervals.iter().all(|iv| iv.end > iv.start));
    assert!(parsed.hists.iter().all(|h| h.hist.count() > 0));
}

/// Sampled-mode runs are part of the same determinism contract: the
/// unit schedule, cluster assignment, calibrated fast-clock base and
/// extrapolated estimates must replay bit-for-bit on the same seed, and
/// the plan must merge identical sampled results at 1/2/4 workers. The
/// sampling path consumes no RNG of its own (leader clustering is
/// insertion-ordered, the stride jitter is hashed, the fast clock is
/// integer Q8), so nothing may depend on worker scheduling.
#[test]
fn sampled_runs_are_identical_serial_and_parallel() {
    use middlesim::engine::{measure_sampled, SamplingConfig};

    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let sample = |&(p, s): &(usize, u64)| {
        let mut m = jbb(p, s);
        let run = measure_sampled(
            &mut m,
            10 * MCYCLES,
            20 * MCYCLES,
            &SamplingConfig::for_window(20 * MCYCLES),
        );
        (
            run.units.clone(),
            run.base_q8,
            run.to_window_report(),
            run.cpi().mean.to_bits(),
        )
    };
    let run = |plan: &ExperimentPlan| plan.run(&jobs, sample);

    let serial = run(&ExperimentPlan::serial(middlesim::Effort::Quick));
    assert!(serial.iter().all(|(units, ..)| !units.is_empty()));
    for threads in [1, 2, 4] {
        let parallel = run(&ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(threads));
        assert_eq!(
            serial, parallel,
            "{threads}-thread sampled run diverged from the serial run"
        );
    }
}

/// The run observatory is part of the determinism contract: the event
/// streams the timeline is built from — GC pauses and window resets
/// from the `TimelineCollector`, DRAM queue-stall episodes drained from
/// the banked backend, and sample-unit strata from the sampled spine —
/// serialize to byte-identical JSONL lines at 1, 2 and 4 workers, in
/// both full and sampled modes. Events are stamped on the worker
/// threads and sorted at serialization time, so worker scheduling must
/// not leak into a single timestamp or a single record's order.
#[test]
fn event_records_are_bit_identical_across_worker_counts() {
    use middlesim::engine::{measure_sampled, SamplingConfig};

    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let cost = |&(p, _): &(usize, u64)| middlesim::Effort::Quick.cost_hint(p);
    // A harder-scaled heap (divisor 512 vs the file-wide 64) shrinks the
    // eden so GC pauses land inside the short test window.
    let jbb_hot = |p: usize, s: u64, memory: MemoryConfig| {
        let cfg = SpecJbbConfig::scaled(2 * p, 512);
        let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
        let mut mc = MachineConfig::e6000(p);
        mc.seed = s;
        mc.hierarchy.memory = memory;
        Machine::new(mc, SpecJbb::new(cfg, region))
    };
    let prov = probes::Provenance {
        git_rev: "test".into(),
        hostname: "test".into(),
        cpu_count: 4,
        timestamp: 0,
        workers: None,
        effort: None,
        sim_mode: None,
    };
    let event_lines = |log: &RunLog| -> Vec<String> {
        log.to_jsonl(&prov)
            .lines()
            .filter(|l| l.contains("\"ev\":\"event\""))
            .map(str::to_string)
            .collect()
    };

    // Full mode on the DRAM-timed backend: GC pauses, the window reset
    // and queue-stall episodes all land in the stream.
    let full = |&(p, s): &(usize, u64)| {
        let mut m = jbb_hot(p, s, MemoryConfig::BankedDram(DramConfig::default()));
        let timeline = m.attach_observer(middlesim::TimelineCollector::new());
        m.run_until(10 * MCYCLES);
        m.begin_measurement();
        let start = m.time();
        m.run_until(start + 20 * MCYCLES);
        let mut events = m.observer(timeline).to_records(0, 0);
        events.extend(
            m.take_dram_stall_episodes()
                .into_iter()
                .map(|(start, end)| probes::runlog::EventRecord {
                    run: 0,
                    id: 0,
                    name: "dram.stall".into(),
                    start,
                    end,
                }),
        );
        let tele = middlesim::JobTelemetry::counters(Some(m.counters())).with_events(events);
        (m.window_report(), tele)
    };

    // Sampled mode: the unit schedule's detailed / fast-forward /
    // recovery strata join the GC timeline.
    let sampled = |&(p, s): &(usize, u64)| {
        let mut m = jbb_hot(p, s, MemoryConfig::Flat);
        let timeline = m.attach_observer(middlesim::TimelineCollector::new());
        let run = measure_sampled(
            &mut m,
            10 * MCYCLES,
            20 * MCYCLES,
            &SamplingConfig::for_window(20 * MCYCLES),
        );
        let mut events = m.observer(timeline).to_records(0, 0);
        events.extend(run.event_records(0, 0));
        let tele = middlesim::JobTelemetry::default().with_events(events);
        (run.to_window_report(), tele)
    };

    type Body<'a> = &'a (dyn Fn(&(usize, u64)) -> (WindowReport, middlesim::JobTelemetry) + Sync);
    let modes: [(&str, Body); 2] = [("full", &full), ("sampled", &sampled)];
    for (tag, body) in modes {
        let mut reference: Option<Vec<String>> = None;
        for threads in [1, 2, 4] {
            let log = Arc::new(RunLog::new());
            let plan = ExperimentPlan::serial(middlesim::Effort::Quick)
                .with_threads(threads)
                .with_run_log(Arc::clone(&log), tag);
            let _ = plan.run_telemetry(&jobs, cost, body);
            let lines = event_lines(&log);
            assert!(
                !lines.is_empty(),
                "{tag}-mode run produced no event records"
            );
            match &reference {
                None => {
                    // The streams carry the expected vocabularies.
                    let has = |needle: &str| lines.iter().any(|l| l.contains(needle));
                    assert!(has("gc.pause"), "{tag}-mode stream lacks gc.pause spans");
                    assert!(has("window.reset"), "{tag}-mode stream lacks window.reset");
                    if tag == "full" {
                        assert!(has("dram.stall"), "full-mode stream lacks dram.stall");
                    } else {
                        assert!(has("unit."), "sampled-mode stream lacks unit strata");
                    }
                    reference = Some(lines);
                }
                Some(first) => assert_eq!(
                    first, &lines,
                    "{threads}-thread {tag}-mode event stream diverged from 1-thread"
                ),
            }
        }
    }
}

/// Attribution records ride the same contract as events: the
/// `phase;component;cause;region` cycle folds an `AttribProfiler`
/// harvests are stamped on the worker threads and sorted at
/// serialization time, so the `"ev":"attrib"` JSONL stream must be
/// byte-identical at 1, 2 and 4 workers, in both full and sampled
/// modes, and must carry both the mutator and the GC phase.
#[test]
fn attrib_records_are_bit_identical_across_worker_counts() {
    use middlesim::engine::{measure_sampled, SamplingConfig};
    use workloads::model::Workload;

    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let cost = |&(p, _): &(usize, u64)| middlesim::Effort::Quick.cost_hint(p);
    // Same harder-scaled heap as the event-record test: a small eden
    // puts GC attribution inside the short window.
    let jbb_hot = |p: usize, s: u64| {
        let cfg = SpecJbbConfig::scaled(2 * p, 512);
        let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
        let mut mc = MachineConfig::e6000(p);
        mc.seed = s;
        Machine::new(mc, SpecJbb::new(cfg, region))
    };
    let base_cpi = MachineConfig::e6000(1).pipeline.base_cpi;
    let prov = probes::Provenance {
        git_rev: "test".into(),
        hostname: "test".into(),
        cpu_count: 4,
        timestamp: 0,
        workers: None,
        effort: None,
        sim_mode: None,
    };
    let attrib_lines = |log: &RunLog| -> Vec<String> {
        log.to_jsonl(&prov)
            .lines()
            .filter(|l| l.contains("\"ev\":\"attrib\""))
            .map(str::to_string)
            .collect()
    };

    // Full mode: counters carry the attrib roll-up so the serialized
    // log also exercises the `--check` cross-validation invariant.
    let full = |&(p, s): &(usize, u64)| {
        let mut m = jbb_hot(p, s);
        let handle = m.attach_observer(middlesim::AttribProfiler::new(
            m.workload().region_map(),
            base_cpi,
        ));
        m.run_until(10 * MCYCLES);
        m.begin_measurement();
        let start = m.time();
        m.run_until(start + 20 * MCYCLES);
        let prof = m.observer(handle);
        let mut counters = m.counters();
        counters.record(prof);
        let tele =
            middlesim::JobTelemetry::counters(Some(counters)).with_attribs(prof.to_records(0, 0));
        (m.window_report(), tele)
    };

    // Sampled mode: the profiler observes only the detailed units the
    // sampling spine simulates, which must replay identically too.
    let sampled = |&(p, s): &(usize, u64)| {
        let mut m = jbb_hot(p, s);
        let handle = m.attach_observer(middlesim::AttribProfiler::new(
            m.workload().region_map(),
            base_cpi,
        ));
        let run = measure_sampled(
            &mut m,
            10 * MCYCLES,
            20 * MCYCLES,
            &SamplingConfig::for_window(20 * MCYCLES),
        );
        let prof = m.observer(handle);
        let tele = middlesim::JobTelemetry::default().with_attribs(prof.to_records(0, 0));
        (run.to_window_report(), tele)
    };

    type Body<'a> = &'a (dyn Fn(&(usize, u64)) -> (WindowReport, middlesim::JobTelemetry) + Sync);
    let modes: [(&str, Body); 2] = [("full", &full), ("sampled", &sampled)];
    for (tag, body) in modes {
        let mut reference: Option<Vec<String>> = None;
        for threads in [1, 2, 4] {
            let log = Arc::new(RunLog::new());
            let plan = ExperimentPlan::serial(middlesim::Effort::Quick)
                .with_threads(threads)
                .with_run_log(Arc::clone(&log), tag);
            let _ = plan.run_telemetry(&jobs, cost, body);
            let lines = attrib_lines(&log);
            assert!(
                !lines.is_empty(),
                "{tag}-mode run produced no attrib records"
            );
            match &reference {
                None => {
                    let has = |needle: &str| lines.iter().any(|l| l.contains(needle));
                    assert!(
                        has("\"stack\":\"mutator;"),
                        "{tag}-mode fold lacks mutator stacks"
                    );
                    assert!(has("data_stall"), "{tag}-mode fold lacks data stalls");
                    if tag == "full" {
                        assert!(has("\"stack\":\"gc;"), "full-mode fold lacks GC stacks");
                        // The heap-region dimension survives serialization.
                        assert!(
                            has(";old_gen\"") || has(";eden\""),
                            "full-mode fold lacks heap-region leaves"
                        );
                    }
                    reference = Some(lines);
                }
                Some(first) => assert_eq!(
                    first, &lines,
                    "{threads}-thread {tag}-mode attrib stream diverged from 1-thread"
                ),
            }
        }
    }
}

/// Attribution must be free: running the same jobs with an
/// `AttribProfiler` attached leaves every pre-existing output —
/// window reports and the machine counter snapshots — bit-identical
/// to the bare run at every worker count. The profiler only reads the
/// `StallCharge` the timers already computed, so switching it on may
/// not perturb a single simulated event.
#[test]
fn attrib_profiler_attachment_leaves_outputs_bit_identical() {
    use workloads::model::Workload;

    let jobs: Vec<(usize, u64)> = [1usize, 2]
        .iter()
        .flat_map(|&p| (0..2u64).map(move |s| (p, s)))
        .collect();
    let base_cpi = MachineConfig::e6000(1).pipeline.base_cpi;
    let observe = |&(p, s): &(usize, u64), attach: bool| {
        let mut m = jbb(p, s);
        if attach {
            let _ = m.attach_observer(middlesim::AttribProfiler::new(
                m.workload().region_map(),
                base_cpi,
            ));
        }
        m.run_until(10 * MCYCLES);
        m.begin_measurement();
        let start = m.time();
        m.run_until(start + 20 * MCYCLES);
        (m.window_report(), m.counters())
    };

    let bare =
        ExperimentPlan::serial(middlesim::Effort::Quick).run(&jobs, |job| observe(job, false));
    for threads in [1, 2, 4] {
        let profiled = ExperimentPlan::serial(middlesim::Effort::Quick)
            .with_threads(threads)
            .run(&jobs, |job| observe(job, true));
        assert_eq!(
            bare, profiled,
            "{threads}-thread profiled run diverged from the bare run"
        );
    }
}

/// The official SPECjbb run protocol — speculative ramp rounds on the
/// plan — produces the identical score structure at every worker count.
#[test]
fn official_run_is_identical_serial_and_parallel() {
    let serial =
        middlesim::official_run_with(&ExperimentPlan::serial(middlesim::Effort::Quick), 2, 4);
    for threads in [2, 4] {
        let parallel = middlesim::official_run_with(
            &ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(threads),
            2,
            4,
        );
        assert_eq!(
            serial, parallel,
            "{threads}-thread official run diverged from serial"
        );
    }
}

/// The two-tier cluster — app seeds fanned out, query logs flowing into
/// database replays as plan dependencies — merges to the identical
/// report at every worker count.
#[test]
fn cluster_run_is_identical_serial_and_parallel() {
    let serial = middlesim::run_cluster_with(&ExperimentPlan::serial(middlesim::Effort::Quick), 2);
    for threads in [2, 4] {
        let parallel = middlesim::run_cluster_with(
            &ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(threads),
            2,
        );
        assert_eq!(
            serial, parallel,
            "{threads}-thread cluster run diverged from serial"
        );
    }
}

/// On a mixed-size batch the size-aware runner claims the biggest jobs
/// first — observed through the claim probe — while outputs still land
/// in input order.
#[test]
fn mixed_size_batch_claims_largest_first() {
    // Simulated "system sizes" as cost hints: 1, 16, 2, 8, 4.
    let jobs: Vec<(usize, u64)> = [(0, 1u64), (1, 16), (2, 2), (3, 8), (4, 4)].to_vec();
    for threads in [1, 2, 4] {
        let claims = Mutex::new(Vec::new());
        let out = ExperimentPlan::serial(middlesim::Effort::Quick)
            .with_threads(threads)
            .run_hinted_observed(
                &jobs,
                |&(_, size)| middlesim::Effort::Quick.cost_hint(size as usize),
                |&(i, _)| i,
                |i| claims.lock().unwrap().push(i),
            );
        assert_eq!(out, vec![0, 1, 2, 3, 4], "outputs merge in input order");
        assert_eq!(
            claims.into_inner().unwrap(),
            vec![1, 3, 4, 2, 0],
            "{threads}-thread pool must claim largest jobs first"
        );
    }
}

/// The runner demonstrably fans jobs across at least two OS threads.
#[test]
fn parallel_runner_uses_multiple_threads() {
    let plan = ExperimentPlan::serial(middlesim::Effort::Quick).with_threads(4);
    let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let jobs: Vec<u32> = (0..16).collect();
    let _ = plan.run(&jobs, |_| {
        ids.lock().unwrap().insert(std::thread::current().id());
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct >= 2,
        "expected >= 2 worker threads, saw {distinct}"
    );
}
