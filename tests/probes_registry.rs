//! Counter-registry drift protection.
//!
//! The registry's value is that `cpustat`-style snapshots cannot
//! silently diverge from the stats structs they describe: descriptor
//! tables are `'static`, `values` destructures exhaustively, and these
//! tests hold the whole machine-wide panel to that contract on a real
//! run — every registered name unique, every stats field present under
//! its registered name with the exact live value.

use java_middleware_memsim::memsys::{AccessKind, Addr, MemorySystem};
use middlesim::{jbb_machine, measure, Effort};
use probes::registry::{CounterSet, Snapshot};

/// A driven machine's full snapshot: every name unique across all four
/// counter sets (memsys, bus, pipeline, cpustat veneer, accounting).
#[test]
fn machine_panel_names_are_unique() {
    let effort = Effort::Quick;
    let mut m = jbb_machine(2, 4, 1, effort);
    let _ = measure(&mut m, effort);
    let snap = m.counters();
    assert!(snap.len() > 30, "panel should cover all layers");
    assert!(
        snap.names_unique(),
        "machine-wide counter names must be unique"
    );
}

/// Every `SystemStats` field surfaces in the snapshot with its live
/// value. The per-kind block is checked for all three kinds, and the
/// per-cpu vectors through their registered totals — if a field were
/// dropped from the descriptor table, this is the test that notices.
#[test]
fn every_memsys_field_is_registered_with_its_live_value() {
    let mut sys = MemorySystem::e6000(4).unwrap();
    // Drive enough traffic to make every counter nonzero-able: private
    // stores (upgrades, writebacks), cross-cpu sharing (c2c), ifetches.
    for i in 0..40_000u64 {
        let cpu = (i % 4) as usize;
        sys.access(cpu, AccessKind::Store, Addr(0x1000 + (i % 512) * 64));
        sys.access(
            (cpu + 1) % 4,
            AccessKind::Load,
            Addr(0x1000 + (i % 512) * 64),
        );
        sys.access(cpu, AccessKind::Ifetch, Addr(0x8_0000 + (i % 128) * 64));
        // Private stores over a 2 MB region — twice the L2 — so dirty
        // victims get written back.
        sys.access(
            cpu,
            AccessKind::Store,
            Addr(0x100_0000 + cpu as u64 * 0x40_0000 + (i % 32_768) * 64),
        );
    }
    let snap = sys.counters();
    assert!(snap.names_unique());

    let stats = sys.stats();
    for (prefix, k) in [
        ("ifetch", &stats.ifetch),
        ("load", &stats.load),
        ("store", &stats.store),
    ] {
        assert_eq!(
            snap.get(&format!("mem.{prefix}.accesses")),
            Some(k.accesses)
        );
        assert_eq!(
            snap.get(&format!("mem.{prefix}.l1_misses")),
            Some(k.l1_misses)
        );
        assert_eq!(
            snap.get(&format!("mem.{prefix}.l2_misses")),
            Some(k.l2_misses)
        );
        assert_eq!(
            snap.get(&format!("mem.{prefix}.upgrades")),
            Some(k.upgrades)
        );
        assert_eq!(snap.get(&format!("mem.{prefix}.c2c")), Some(k.c2c));
    }
    assert_eq!(snap.get("mem.writebacks"), Some(stats.writebacks));
    assert_eq!(
        snap.get("mem.l2_miss.percpu_total"),
        Some(stats.l2_misses_by_cpu.iter().sum())
    );
    assert_eq!(
        snap.get("mem.c2c.percpu_total"),
        Some(stats.c2c_by_cpu.iter().sum())
    );

    let bus = sys.bus_stats();
    assert_eq!(snap.get("bus.gets"), Some(bus.gets));
    assert_eq!(snap.get("bus.getx"), Some(bus.getx));
    assert_eq!(snap.get("bus.upgrades"), Some(bus.upgrades));
    assert_eq!(snap.get("bus.snoop_cb"), Some(bus.snoop_copybacks));
    assert_eq!(snap.get("bus.writebacks"), Some(bus.writebacks));
    assert_eq!(snap.get("bus.snoops_sent"), Some(bus.snoops_sent));
    assert_eq!(snap.get("bus.snoops_filtered"), Some(bus.snoops_filtered));

    // The work above exercised every protocol path, so the registered
    // counters are live, not vestigial.
    for name in [
        "mem.store.upgrades",
        "mem.load.c2c",
        "mem.writebacks",
        "bus.snoop_cb",
        "bus.snoops_filtered",
    ] {
        assert!(
            snap.get(name).unwrap() > 0,
            "{name} never moved under a workload designed to drive it"
        );
    }
}

/// The descriptor/values contract itself: a set must push exactly as
/// many values as it declares, in order. `Snapshot::record` enforces the
/// count; order is pinned here against the descriptor table.
#[test]
fn values_follow_descriptor_order() {
    let mut sys = MemorySystem::e6000(2).unwrap();
    sys.access(0, AccessKind::Load, Addr(0x40));
    let descs = sys.stats().descriptors();
    let snap = Snapshot::of(sys.stats());
    assert_eq!(snap.len(), descs.len());
    for (d, (name, kind, _)) in descs.iter().zip(snap.iter()) {
        assert_eq!(d.name, name);
        assert_eq!(d.kind, kind);
    }
}

/// Deltas between machine snapshots behave like `cpustat` interval
/// samples: monotonic counters subtract, and a quiet machine deltas to
/// all-zero counts.
#[test]
fn machine_deltas_are_interval_samples() {
    let mut sys = MemorySystem::e6000(2).unwrap();
    sys.access(0, AccessKind::Store, Addr(0x40));
    let a = sys.counters();
    let b = sys.counters();
    let quiet = b.delta(&a);
    assert_eq!(quiet.get("mem.store.accesses"), Some(0));
    assert_eq!(quiet.get("bus.getx"), Some(0));

    sys.access(1, AccessKind::Load, Addr(0x40));
    let c = sys.counters();
    let d = c.delta(&a);
    assert_eq!(d.get("mem.load.accesses"), Some(1));
    assert_eq!(d.get("mem.load.c2c"), Some(1), "dirty remote line → c2c");
}
