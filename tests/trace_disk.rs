//! The compact on-disk trace format, end-to-end.
//!
//! The paper's trace archive is the bridge between its two simulators:
//! Simics captures are written out once and replayed into Sumo many
//! times (Section 3.3). Our counterpart is `SystemTrace::write_to` /
//! `read_from` — a varint-packed record encoding behind a magic+version
//! header. These tests hold it to the archive's bar: a real captured
//! window must survive the disk round-trip byte-for-byte *and* replay
//! from the reloaded copy to the live run's exact statistics.

use memsys::{Addr, AddrRange, SystemTrace};
use middlesim::engine::{replay_trace, TraceObserver};
use middlesim::{Machine, MachineConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

/// A short but real SPECjbb run with a trace observer attached,
/// returning the machine (after its window) and the capture.
fn captured_run(pset: usize, seed: u64) -> (Machine<SpecJbb>, SystemTrace) {
    let cfg = SpecJbbConfig::scaled(2 * pset, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
    let handle = m.attach_observer(TraceObserver::new());
    m.run_until(4 * MCYCLES);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + 8 * MCYCLES);
    let trace = m.observer(handle).trace().clone();
    (m, trace)
}

/// A real capture survives disk: write → read is the identity, through
/// an actual file, and the reloaded trace replays to the live window's
/// exact statistics.
#[test]
fn real_capture_roundtrips_through_a_file() {
    let (m, trace) = captured_run(2, 11);
    assert!(trace.refs() > 10_000, "capture is non-trivial");

    let path = std::env::temp_dir().join(format!("trace_disk_{}.mtrc", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create archive");
        trace.write_to(file).expect("write archive");
    }
    let reloaded = {
        let file = std::fs::File::open(&path).expect("open archive");
        SystemTrace::read_from(file).expect("read archive")
    };
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded, trace, "disk round-trip must be the identity");
    let live = m.memory().stats().clone();
    let replayed = replay_trace(&reloaded, m.memory().config());
    assert_eq!(
        replayed.stats, live,
        "a replay from the archived copy must equal the live window"
    );
}

/// The encoding is compact: a real interleaved capture (small cpu
/// indices, clustered addresses) takes well under half its 16-byte
/// in-memory footprint, and the writer is deterministic.
#[test]
fn encoding_is_compact_and_deterministic() {
    let (_, trace) = captured_run(1, 4);
    let mut a = Vec::new();
    trace.write_to(&mut a).unwrap();
    let mut b = Vec::new();
    trace.write_to(&mut b).unwrap();
    assert_eq!(a, b, "same trace must serialize to the same bytes");
    assert!(
        a.len() < trace.len() * 8,
        "expected < 8 bytes/event on a real capture, got {} for {} events",
        a.len(),
        trace.len()
    );
}

/// Filter-then-archive equals archive-then-filter: the disk format
/// preserves the tags the Section 3.3 tier filter keys on.
#[test]
fn archived_trace_filters_identically() {
    let (_, trace) = captured_run(2, 9);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).unwrap();
    let reloaded = SystemTrace::read_from(&bytes[..]).unwrap();
    let direct = trace.filtered_cpus(|cpu| cpu == 0);
    let via_disk = reloaded.filtered_cpus(|cpu| cpu == 0);
    assert_eq!(via_disk, direct);
    assert_eq!(via_disk.window_instructions(), direct.window_instructions());
}
