//! Tier-1 coverage of the in-workspace bench harness: the same
//! `Harness`/`Bencher` pair the `cargo bench` targets use, driven at
//! smoke size over real simulator kernels, so `cargo test -q` proves
//! the cargo-bench-equivalent path end to end.

use bench::Harness;
use java_middleware_memsim::memsys::{AccessKind, Addr, BatchRef, MemorySystem};

#[test]
fn harness_times_the_memsys_hot_path() {
    let mut h = Harness::with(2, 2);
    let mut sys = MemorySystem::e6000(4).unwrap();
    let mut i = 0u64;
    h.bench_function("memsys/local_load", |b| {
        b.iter(|| {
            i = i.wrapping_add(64) & 0xf_ffff;
            sys.access(0, AccessKind::Load, Addr(i))
        })
    });
    let mut batch = MemorySystem::e6000(4).unwrap();
    let refs: Vec<BatchRef> = (0..256)
        .map(|j| BatchRef {
            cpu: (j % 4) as u32,
            kind: AccessKind::Load,
            addr: Addr((j * 64) & 0xf_ffff),
        })
        .collect();
    h.bench_function("memsys/access_batch_256", |b| {
        b.iter(|| batch.access_batch(&refs, |_, _| None))
    });

    let rows = h.finish();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.median_ns > 0.0 && r.iters >= 1));
    // The simulator did real work under the timer.
    assert!(sys.stats().load.accesses > 0);
    assert!(batch.stats().load.accesses >= 256);
}

#[test]
fn iter_batched_excludes_setup_cost() {
    let mut h = Harness::with(2, 1);
    h.bench_function("harness/batched", |b| {
        b.iter_batched(
            || vec![1u64; 4096], // setup, untimed
            |v| v.iter().sum::<u64>(),
        )
    });
    let rows = h.finish();
    assert_eq!(rows[0].samples, 2);
    assert!(rows[0].median_ns > 0.0);
}
