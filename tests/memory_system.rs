//! Integration tests exercising the memory system through the public
//! facade with workload-like reference patterns.

use java_middleware_memsim::memsys::{
    AccessKind, Addr, CacheSweep, HierarchyConfig, HitLevel, MemorySystem,
};

#[test]
fn producer_consumer_pattern_is_all_cache_to_cache() {
    let mut sys = MemorySystem::e6000(2).unwrap();
    // Warm: producer writes a buffer; consumer reads it; repeat with
    // role reversal. After warm-up every handoff is a snoop copyback.
    for round in 0..20u64 {
        let (producer, consumer) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
        for line in 0..32u64 {
            sys.access(producer, AccessKind::Store, Addr(0x10_0000 + line * 64));
        }
        for line in 0..32u64 {
            sys.access(consumer, AccessKind::Load, Addr(0x10_0000 + line * 64));
        }
    }
    let ratio = sys.stats().c2c_ratio();
    assert!(ratio > 0.8, "handoffs must be cache-to-cache: {ratio:.2}");
}

#[test]
fn shared_l2_absorbs_the_same_pattern() {
    let mut b = HierarchyConfig::builder(2);
    b.cpus_per_l2(2);
    let mut sys = MemorySystem::new(b.build().unwrap());
    for round in 0..20u64 {
        let (producer, consumer) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
        for line in 0..32u64 {
            sys.access(producer, AccessKind::Store, Addr(0x10_0000 + line * 64));
        }
        for line in 0..32u64 {
            sys.access(consumer, AccessKind::Load, Addr(0x10_0000 + line * 64));
        }
    }
    assert_eq!(
        sys.stats().total_c2c(),
        0,
        "one shared cache: no coherence misses at all (Figure 16's win)"
    );
}

#[test]
fn false_sharing_bounces_a_single_line() {
    let mut sys = MemorySystem::e6000(4).unwrap();
    for i in 0..100u64 {
        sys.access((i % 4) as usize, AccessKind::Store, Addr(0x2000));
    }
    assert!(sys.stats().total_c2c() > 70, "every other write bounces");
}

#[test]
fn streaming_scan_misses_once_per_line() {
    let mut sys = MemorySystem::e6000(1).unwrap();
    for line in 0..1000u64 {
        let o = sys.access(0, AccessKind::Load, Addr(line * 64));
        assert_eq!(o.level, HitLevel::Memory, "cold scan misses to memory");
    }
    for line in 0..100u64 {
        let o = sys.access(0, AccessKind::Load, Addr(line * 64));
        assert_ne!(o.level, HitLevel::Memory, "1000 lines fit the 1MB L2");
    }
}

#[test]
fn sweep_and_system_agree_on_uniprocessor_misses() {
    // The bank-of-caches sweep at 1 MB must match a real 1 MB L2 on the
    // same stream (same geometry, same LRU).
    let mut sys = MemorySystem::e6000(1).unwrap();
    let mut sweep = CacheSweep::new(&[1 << 20]).unwrap();
    let mut misses = 0u64;
    let mut addr = 0u64;
    for i in 0..50_000u64 {
        addr = (addr.wrapping_mul(6364136223846793005).wrapping_add(i)) % (4 << 20);
        let a = Addr(addr & !63);
        sweep.access(a);
        let o = sys.access(0, AccessKind::Load, a);
        if o.level.is_l2_data_miss() {
            misses += 1;
        }
    }
    // The L2 sits behind a filtering L1 (hits never update the L2's
    // LRU), so agreement is near-exact rather than exact.
    let (_, point) = sweep.results()[0];
    let diff = point.misses.abs_diff(misses) as f64 / misses.max(1) as f64;
    assert!(
        diff < 0.02,
        "sweep ({}) vs L2 ({}) diverged by {:.1}%",
        point.misses,
        misses,
        diff * 100.0
    );
}
