//! Differential oracle for the memory-backend seam.
//!
//! PR 6 routed every memory fill through a [`MemoryBackend`]; the default
//! [`FlatLatency`] in deferred mode returns no cycle count, so the CPU
//! model keeps charging its flat table constant — by construction the
//! exact pre-refactor behavior. This suite pins the seam from the
//! outside, snoop_filter-style: seeded mixed-access streams drive pairs
//! of systems that must agree on every per-access outcome, every final
//! statistic, every latency histogram bit, and the coherence state of
//! every touched line.
//!
//! Three claims:
//!  1. A `FlatFixed(c)` backend (which stamps `mem_cycles: Some(c)` on
//!     every fill) is bit-identical to the deferred default when the
//!     latency table's memory cost is also `c` — so the backend-supplied
//!     cost path reproduces the table-constant path exactly.
//!  2. Swapping in `BankedDram` perturbs *timing only*: protocol
//!     outcomes, `SystemStats`, bus traffic, and final MOESI states all
//!     stay identical to the flat system's; only `mem_cycles` differs.
//!  3. `BankedDram` is deterministic: the same stream costs the same,
//!     request by request.

use java_middleware_memsim::memsys::{
    AccessKind, Addr, CacheConfig, DramConfig, HierarchyConfig, LatencyCosts, MemoryConfig,
    MemorySystem,
};
use prng::SimRng;

/// The costs the differential runs histogram with; `memory` matches the
/// `FlatFixed` backend below so claims can be compared bit-for-bit.
const COSTS: LatencyCosts = LatencyCosts {
    l1: 0,
    l2: 10,
    upgrade: 60,
    c2c: 105,
    memory: 75,
};

/// Small hierarchy so the stream below overflows everything and memory
/// fills (the seam under test) happen constantly.
fn tiny(cpus: usize, memory: MemoryConfig) -> HierarchyConfig {
    let mut b = HierarchyConfig::builder(cpus);
    b.l1i(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l1d(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l2(CacheConfig::new(8 << 10, 4, 64).unwrap());
    b.memory(memory);
    b.build().unwrap()
}

/// Same mixed stream as the snoop-filter oracle: 35% ifetch, 40% load,
/// 25% store over shared, private, and hot ping-pong regions.
fn next_ref(rng: &mut SimRng, cpus: usize) -> (usize, AccessKind, Addr) {
    let r = rng.next_u64();
    let cpu = (r % cpus as u64) as usize;
    let roll = (r >> 8) % 100;
    let kind = if roll < 35 {
        AccessKind::Ifetch
    } else if roll < 75 {
        AccessKind::Load
    } else {
        AccessKind::Store
    };
    let pick = (r >> 16) % 100;
    let line = (r >> 32) % 192;
    let addr = if pick < 50 {
        0x1000 + line * 64
    } else if pick < 90 {
        0x10_0000 + (cpu as u64) * 0x1_0000 + line * 64
    } else {
        0x9000
    };
    (cpu, kind, Addr(addr))
}

/// Claim 1: deferred flat vs `FlatFixed(75)` under a table whose memory
/// cost is 75 — everything, including the latency histogram, must agree
/// bit-for-bit.
fn drive_flat_fixed(cpus: usize, steps: u64, seed: u64) {
    let mut deferred = MemorySystem::new(tiny(cpus, MemoryConfig::Flat));
    let mut fixed = MemorySystem::new(tiny(cpus, MemoryConfig::FlatFixed(COSTS.memory)));
    deferred.enable_latency_hist(COSTS);
    fixed.enable_latency_hist(COSTS);

    let mut rng = SimRng::seed_from_u64(seed);
    let mut touched = std::collections::BTreeSet::new();
    for step in 0..steps {
        let (cpu, kind, addr) = next_ref(&mut rng, cpus);
        touched.insert(addr.0);
        let a = deferred.access(cpu, kind, addr);
        let b = fixed.access(cpu, kind, addr);
        // The one designed difference: the deferred backend never stamps
        // a cost, the fixed one stamps every fill with the same constant
        // the table charges.
        assert_eq!(a.level, b.level, "level diverged at step {step}");
        assert_eq!(
            a.writeback, b.writeback,
            "writeback diverged at step {step}"
        );
        assert_eq!(a.mem_cycles, None, "deferred backend must not stamp costs");
        if b.level == java_middleware_memsim::memsys::HitLevel::Memory {
            assert_eq!(b.mem_cycles, Some(COSTS.memory));
        } else {
            assert_eq!(b.mem_cycles, None, "non-memory outcomes carry no stamp");
        }
    }

    assert_eq!(deferred.stats(), fixed.stats(), "SystemStats diverged");
    assert_eq!(deferred.bus_stats(), fixed.bus_stats(), "BusStats diverged");
    let (ha, hb) = (
        deferred.latency_hist().expect("hist enabled"),
        fixed.latency_hist().expect("hist enabled"),
    );
    assert_eq!(
        ha.to_json(),
        hb.to_json(),
        "latency histograms must be bit-identical"
    );
    assert!(ha.count() == steps, "every access histogrammed");
    for &raw in &touched {
        let addr = Addr(raw);
        assert_eq!(deferred.l2_states(addr), fixed.l2_states(addr));
    }
}

#[test]
fn flat_fixed_matches_deferred_1_cpu() {
    drive_flat_fixed(1, 30_000, 0xF1A7);
}

#[test]
fn flat_fixed_matches_deferred_4_cpus() {
    drive_flat_fixed(4, 30_000, 0xF4A7);
}

#[test]
fn flat_fixed_matches_deferred_16_cpus() {
    drive_flat_fixed(16, 40_000, 0xF16A);
}

/// Claim 2: `BankedDram` changes memory-fill *timing* and nothing else.
/// Protocol outcomes, system statistics, bus traffic, and final MOESI
/// state must match the flat system's exactly on the same stream.
#[test]
fn dram_backend_perturbs_timing_only() {
    let cpus = 8;
    let mut flat = MemorySystem::new(tiny(cpus, MemoryConfig::Flat));
    let mut dram = MemorySystem::new(tiny(cpus, MemoryConfig::BankedDram(DramConfig::default())));
    assert!(!flat.needs_clock());
    assert!(dram.needs_clock());

    let mut rng = SimRng::seed_from_u64(0xD8A7);
    let mut touched = std::collections::BTreeSet::new();
    let mut stamped = 0u64;
    for (step, now) in (0..40_000u64).map(|s| (s, s * 40)) {
        let (cpu, kind, addr) = next_ref(&mut rng, cpus);
        touched.insert(addr.0);
        dram.set_now(now);
        let a = flat.access(cpu, kind, addr);
        let b = dram.access(cpu, kind, addr);
        assert_eq!(a.level, b.level, "level diverged at step {step}");
        assert_eq!(
            a.writeback, b.writeback,
            "writeback diverged at step {step}"
        );
        if b.level == java_middleware_memsim::memsys::HitLevel::Memory {
            let c = b.mem_cycles.expect("DRAM stamps every fill");
            assert!(c > 0);
            stamped += 1;
        } else {
            assert_eq!(b.mem_cycles, None);
        }
    }
    assert!(stamped > 1_000, "stream must actually hit memory");

    assert_eq!(flat.stats(), dram.stats(), "SystemStats diverged");
    assert_eq!(flat.bus_stats(), dram.bus_stats(), "BusStats diverged");
    for &raw in &touched {
        let addr = Addr(raw);
        assert_eq!(flat.l2_states(addr), dram.l2_states(addr));
        for cpu in 0..cpus {
            assert_eq!(flat.l1_holds(cpu, addr), dram.l1_holds(cpu, addr));
        }
    }

    // The dram panel exists and is consistent with what the run did:
    // every stamped fill was a read request, every dirty L2 victim a
    // writeback.
    let ds = dram.dram_stats().expect("DRAM backend exposes stats");
    assert_eq!(ds.reads, stamped);
    assert_eq!(ds.writebacks, dram.stats().writebacks);
    assert_eq!(ds.row_hits + ds.row_conflicts, ds.requests());
    let hist = dram.dram_queue_hist().expect("DRAM keeps a latency hist");
    assert_eq!(hist.count(), stamped, "one hist sample per read");
    assert!(
        flat.dram_stats().is_none(),
        "flat systems have no dram panel"
    );
}

/// Claim 3: the DRAM backend is deterministic — replaying the identical
/// stream on a fresh system reproduces every statistic and histogram bit.
#[test]
fn dram_backend_is_deterministic() {
    let run = || {
        let mut sys = MemorySystem::new(tiny(4, MemoryConfig::BankedDram(DramConfig::default())));
        sys.enable_latency_hist(COSTS);
        let mut rng = SimRng::seed_from_u64(0xDE7E);
        for now in (0..30_000u64).map(|s| s * 25) {
            let (cpu, kind, addr) = next_ref(&mut rng, 4);
            sys.set_now(now);
            sys.access(cpu, kind, addr);
        }
        sys
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.dram_stats(), b.dram_stats());
    assert_eq!(
        a.dram_queue_hist().unwrap().to_json(),
        b.dram_queue_hist().unwrap().to_json()
    );
    assert_eq!(
        a.latency_hist().unwrap().to_json(),
        b.latency_hist().unwrap().to_json()
    );
}
