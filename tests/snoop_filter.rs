//! Differential oracle for the sharer-directory snoop filter.
//!
//! [`MemorySystem::new`] snoops only the L2 groups the exact directory
//! lists as sharers; [`MemorySystem::new_broadcast`] probes every remote
//! group, the textbook behavior. The filter's exactness claim — skipping
//! a cache that does not hold the line cannot change any MOESI outcome —
//! is checked here end-to-end: both systems consume identical seeded
//! streams of mixed loads/stores/ifetches across several `cpus` ×
//! `cpus_per_l2` shapes, with small caches so evictions, upgrades and
//! invalidations churn constantly, and must agree on every per-access
//! outcome, every final statistic, and the coherence state of every
//! touched line. Protocol invariants (single writer, L1 inclusion) and a
//! ground-truth directory audit run along the way.

use java_middleware_memsim::memsys::{
    AccessKind, Addr, CacheConfig, Directory, HierarchyConfig, LineState, MemorySystem,
};
use prng::SimRng;

/// Small hierarchy so the working set below overflows everything: L2s a
/// few hundred lines, L1s a couple dozen.
fn tiny(cpus: usize, cpus_per_l2: usize) -> HierarchyConfig {
    let mut b = HierarchyConfig::builder(cpus);
    b.l1i(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l1d(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l2(CacheConfig::new(8 << 10, 4, 64).unwrap());
    b.cpus_per_l2(cpus_per_l2);
    b.build().unwrap()
}

/// One seeded reference: 35% ifetch, 40% load, 25% store, drawn from a
/// shared region (heavy cross-L2 contention), a per-cpu private region
/// (upgrade/eviction churn), and a hot ping-pong line.
fn next_ref(rng: &mut SimRng, cpus: usize) -> (usize, AccessKind, Addr) {
    let r = rng.next_u64();
    let cpu = (r % cpus as u64) as usize;
    let roll = (r >> 8) % 100;
    let kind = if roll < 35 {
        AccessKind::Ifetch
    } else if roll < 75 {
        AccessKind::Load
    } else {
        AccessKind::Store
    };
    let pick = (r >> 16) % 100;
    let line = (r >> 32) % 192; // > 128-line L2: conflict misses guaranteed
    let addr = if pick < 50 {
        0x1000 + line * 64 // shared region
    } else if pick < 90 {
        0x10_0000 + (cpu as u64) * 0x1_0000 + line * 64 // private region
    } else {
        0x9000 // one hot contended line
    };
    (cpu, kind, Addr(addr))
}

/// Protocol invariants on one line: at most one dirty (M/O) copy, and an
/// M or E copy excludes every other valid copy.
fn check_single_writer(states: &[LineState], addr: Addr) {
    let valid = states.iter().filter(|s| s.is_valid()).count();
    let dirty = states.iter().filter(|s| s.is_dirty()).count();
    let exclusive = states
        .iter()
        .any(|s| matches!(s, LineState::Modified | LineState::Exclusive));
    assert!(dirty <= 1, "two dirty copies of {addr:?}: {states:?}");
    assert!(
        !exclusive || valid == 1,
        "M/E copy of {addr:?} coexists with another valid copy: {states:?}"
    );
}

/// L1 inclusion: a line valid in any of cpu's L1s must be valid in its
/// group's L2.
fn check_inclusion(sys: &MemorySystem, addr: Addr) {
    let states = sys.l2_states(addr);
    for cpu in 0..sys.cpus() {
        if sys.l1_holds(cpu, addr) {
            let group = sys.config().l2_group(cpu);
            assert!(
                states[group].is_valid(),
                "cpu {cpu} holds {addr:?} in L1 but its L2 group {group} does not"
            );
        }
    }
}

fn drive_shape(cpus: usize, cpus_per_l2: usize, steps: u64, seed: u64) {
    let cfg = tiny(cpus, cpus_per_l2);
    let mut filtered = MemorySystem::new(cfg);
    let mut broadcast = MemorySystem::new_broadcast(cfg);
    assert_eq!(
        filtered.snoop_filter_enabled(),
        cfg.l2_count() > 1 && cfg.l2_count() <= Directory::MAX_GROUPS
    );
    assert!(!broadcast.snoop_filter_enabled());

    let mut rng = SimRng::seed_from_u64(seed);
    let mut touched = std::collections::BTreeSet::new();
    for step in 0..steps {
        let (cpu, kind, addr) = next_ref(&mut rng, cpus);
        touched.insert(addr.0);
        let a = filtered.access(cpu, kind, addr);
        let b = broadcast.access(cpu, kind, addr);
        assert_eq!(
            a, b,
            "outcome diverged at step {step} ({cpu} {kind} {addr:?})"
        );
        check_single_writer(&filtered.l2_states(addr), addr);
        check_inclusion(&filtered, addr);
        if step % 4096 == 0 {
            filtered.audit_directory();
        }
    }
    filtered.audit_directory();

    // Every statistic the protocol produces must match. The snoop fan-out
    // diagnostics are the one legitimate difference — the filter's whole
    // point — so compare the protocol fields individually and check the
    // diagnostic totals cover the same transactions.
    assert_eq!(filtered.stats(), broadcast.stats(), "SystemStats diverged");
    let (fb, bb) = (filtered.bus_stats(), broadcast.bus_stats());
    assert_eq!(fb.gets, bb.gets);
    assert_eq!(fb.getx, bb.getx);
    assert_eq!(fb.upgrades, bb.upgrades);
    assert_eq!(fb.snoop_copybacks, bb.snoop_copybacks);
    assert_eq!(fb.writebacks, bb.writebacks);
    assert_eq!(
        fb.snoops_sent + fb.snoops_filtered,
        bb.snoops_sent,
        "filtered and broadcast saw different snoop opportunities"
    );
    if cfg.l2_count() > 1 && cfg.l2_count() <= Directory::MAX_GROUPS {
        assert!(
            fb.snoops_filtered > 0,
            "a contended run at {cpus} cpus should filter something"
        );
    }

    // Final coherence state of every line either system ever touched.
    for &raw in &touched {
        let addr = Addr(raw);
        assert_eq!(
            filtered.l2_states(addr),
            broadcast.l2_states(addr),
            "final L2 states diverged for {addr:?}"
        );
        for cpu in 0..cpus {
            assert_eq!(
                filtered.l1_holds(cpu, addr),
                broadcast.l1_holds(cpu, addr),
                "final L1 residency diverged for cpu {cpu}, {addr:?}"
            );
        }
    }
}

#[test]
fn filtered_matches_broadcast_1_cpu() {
    drive_shape(1, 1, 30_000, 0xD1F);
}

#[test]
fn filtered_matches_broadcast_2_cpus() {
    drive_shape(2, 1, 30_000, 0xD2F);
}

#[test]
fn filtered_matches_broadcast_4_cpus() {
    drive_shape(4, 1, 30_000, 0xD4F);
}

#[test]
fn filtered_matches_broadcast_16_cpus() {
    drive_shape(16, 1, 40_000, 0xD16F);
}

#[test]
fn filtered_matches_broadcast_16_cpus_shared_l2() {
    drive_shape(16, 4, 40_000, 0xD164);
}

#[test]
fn filtered_matches_broadcast_32_l2_groups() {
    // Past the old 16-group sharer field: the two-word directory entry
    // keeps the filter exact (and enabled — drive_shape asserts it) at
    // 32 private-L2 groups instead of falling back to broadcast.
    drive_shape(32, 1, 40_000, 0xD32F);
}

#[test]
fn filtered_matches_broadcast_at_exactly_max_groups() {
    // The boundary the PR 5 widening moved: 64 private-L2 groups is the
    // last shape the one-word sharer bitset tracks, so the filter must
    // still be enabled (drive_shape asserts it) and exact there.
    assert_eq!(Directory::MAX_GROUPS, 64);
    drive_shape(64, 1, 30_000, 0xD64F);
}

#[test]
fn one_past_max_groups_falls_back_to_broadcast() {
    // 65 groups exceeds the bitset: the directory must disengage and the
    // "filtered" system become a plain broadcast one — still exact, and
    // filtering nothing.
    let cfg = tiny(65, 1);
    assert!(cfg.l2_count() > Directory::MAX_GROUPS);
    let filtered = MemorySystem::new(cfg);
    assert!(
        !filtered.snoop_filter_enabled(),
        "past MAX_GROUPS the directory must fall back to broadcast"
    );
    drive_shape(65, 1, 15_000, 0xD65F);
    // drive_shape's snoops_filtered > 0 expectation is gated on the
    // filter being on, so also pin the fallback's observable here.
    let mut sys = MemorySystem::new(tiny(65, 1));
    let mut rng = SimRng::seed_from_u64(0xB65);
    for _ in 0..5_000 {
        let (cpu, kind, addr) = next_ref(&mut rng, 65);
        sys.access(cpu, kind, addr);
    }
    assert_eq!(sys.bus_stats().snoops_filtered, 0);
    assert!(sys.bus_stats().snoops_sent > 0);
}

#[test]
fn filtered_matches_broadcast_4_cpus_one_shared_l2() {
    // Degenerate topology: a single L2 group, nothing to snoop, filter
    // disabled — the fast path must still match broadcast exactly.
    drive_shape(4, 4, 20_000, 0xD44);
}

/// The filter-rate invariant through the counter registry: on every
/// differential shape, `bus.snoops_sent + bus.snoops_filtered` of the
/// filtered system equals the broadcast system's probe count (its
/// `bus.snoops_sent`; nothing is ever filtered there), and the
/// registered `bus.snoop_filter_ppm` ratio reproduces
/// [`java_middleware_memsim::memsys::BusStats::snoop_filter_rate`].
#[test]
fn snapshot_reports_the_filter_invariant() {
    for (cpus, cpus_per_l2, seed) in [(2usize, 1usize, 0xA2u64), (4, 1, 0xA4), (16, 4, 0xA16)] {
        let cfg = tiny(cpus, cpus_per_l2);
        let mut filtered = MemorySystem::new(cfg);
        let mut broadcast = MemorySystem::new_broadcast(cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..20_000 {
            let (cpu, kind, addr) = next_ref(&mut rng, cpus);
            filtered.access(cpu, kind, addr);
            broadcast.access(cpu, kind, addr);
        }
        let fs = filtered.counters();
        let bs = broadcast.counters();
        let sent = fs.get("bus.snoops_sent").unwrap();
        let skipped = fs.get("bus.snoops_filtered").unwrap();
        assert_eq!(
            sent + skipped,
            bs.get("bus.snoops_sent").unwrap(),
            "{cpus}x{cpus_per_l2}: filtered + sent must equal the broadcast probe count"
        );
        assert_eq!(
            bs.get("bus.snoops_filtered"),
            Some(0),
            "a broadcast system never filters"
        );
        let total = sent + skipped;
        let expect_ppm = if total == 0 {
            0
        } else {
            (skipped as f64 / total as f64 * 1e6).round() as u64
        };
        assert_eq!(
            fs.get("bus.snoop_filter_ppm"),
            Some(expect_ppm),
            "registered ratio must match the raw counters"
        );
    }
}

#[test]
fn default_shape_filters_most_snoops() {
    // E6000 geometry, mostly-private traffic: the directory should absorb
    // nearly all broadcast probes, which is the performance story.
    let mut sys = MemorySystem::e6000(16).unwrap();
    let mut rng = SimRng::seed_from_u64(7);
    for _ in 0..200_000 {
        let r = rng.next_u64();
        let cpu = (r % 16) as usize;
        let kind = if (r >> 8) % 4 == 0 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        // 1/16 of traffic shared, the rest private.
        let addr = if (r >> 16) % 16 == 0 {
            0x2000 + ((r >> 32) % 512) * 64
        } else {
            0x100_0000 + (cpu as u64) * 0x10_0000 + ((r >> 32) % 8192) * 64
        };
        sys.access(cpu, kind, Addr(addr));
    }
    let rate = sys.bus_stats().snoop_filter_rate();
    assert!(rate > 0.8, "filter rate {rate:.3} unexpectedly low");
    sys.audit_directory();
}
