//! Differential oracle for the per-CPU MRU line filter and the batched
//! access path.
//!
//! [`MemorySystem::new`] short-circuits repeated hits through a small
//! per-CPU filter; [`MemorySystem::new_unfiltered`] is the same system
//! one knob away — sharer directory on, filter off — so any divergence
//! indicts the filter alone. The filter's claim is *bit-identity*: a
//! fast-path hit must be an architectural no-op, so both systems,
//! consuming identical seeded streams over small caches (constant
//! eviction/upgrade/invalidation churn), must agree on every per-access
//! outcome, every statistic, the latency histogram, the bytes of a
//! captured trace replay, and the final coherence state of every touched
//! line. The broadcast reference runs alongside as ground truth.
//!
//! The batched path ([`MemorySystem::access_batch`]) carries the same
//! claim relative to the scalar loop, including backend-clock stamping
//! on the DRAM backend. (Sampled-mode runs drive this same filtered
//! system through the engine's fast sink; their bit-determinism is held
//! by `tests/determinism.rs` and their accuracy bounds by the
//! validate-sampled differential matrix.)

use java_middleware_memsim::memsys::{
    AccessKind, AccessOutcome, Addr, BatchRef, CacheConfig, DramConfig, HierarchyConfig, HitLevel,
    LatencyCosts, MemoryConfig, MemorySystem, SystemTrace,
};
use prng::SimRng;

/// Small hierarchy so the working set below overflows everything. The
/// 1 KB L1s have 8 sets — fewer than the filter's 64-slot ceiling — so
/// the slots-equal-sets geometry is exercised alongside the big one.
fn tiny(cpus: usize, cpus_per_l2: usize) -> HierarchyConfig {
    let mut b = HierarchyConfig::builder(cpus);
    b.l1i(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l1d(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l2(CacheConfig::new(8 << 10, 4, 64).unwrap());
    b.cpus_per_l2(cpus_per_l2);
    b.build().unwrap()
}

const COSTS: LatencyCosts = LatencyCosts {
    l1: 1,
    l2: 10,
    upgrade: 20,
    c2c: 105,
    memory: 75,
};

/// One seeded reference with deliberate within-line re-touch runs (the
/// case the filter exists for) layered over the snoop-filter oracle's
/// shared/private/hot-line mix, so fast-path hits, full-path walks, and
/// every invalidation reason interleave densely.
fn next_ref(rng: &mut SimRng, cpus: usize) -> (usize, AccessKind, Addr) {
    let r = rng.next_u64();
    let cpu = (r % cpus as u64) as usize;
    let roll = (r >> 8) % 100;
    let kind = if roll < 35 {
        AccessKind::Ifetch
    } else if roll < 70 {
        AccessKind::Load
    } else {
        AccessKind::Store
    };
    let pick = (r >> 16) % 100;
    let line = (r >> 32) % 192; // > 128-line L2: conflict misses guaranteed
    let addr = if pick < 45 {
        0x1000 + line * 64 // shared region
    } else if pick < 85 {
        0x10_0000 + (cpu as u64) * 0x1_0000 + line * 64 // private region
    } else {
        0x9000 // one hot contended line
    };
    (cpu, kind, Addr(addr))
}

/// Drives filtered, unfiltered and broadcast systems in lockstep and
/// checks bit-identity at every step, plus aggregate and final state.
fn drive_shape(cpus: usize, cpus_per_l2: usize, steps: u64, seed: u64) {
    let cfg = tiny(cpus, cpus_per_l2);
    let mut filtered = MemorySystem::new(cfg);
    let mut unfiltered = MemorySystem::new_unfiltered(cfg);
    let mut broadcast = MemorySystem::new_broadcast(cfg);
    assert!(filtered.mru_filter_enabled());
    assert!(!unfiltered.mru_filter_enabled());
    assert_eq!(
        filtered.snoop_filter_enabled(),
        unfiltered.snoop_filter_enabled()
    );
    for sys in [&mut filtered, &mut unfiltered, &mut broadcast] {
        sys.enable_latency_hist(COSTS);
        sys.enable_line_stats();
    }

    let mut rng = SimRng::seed_from_u64(seed);
    let mut touched = std::collections::BTreeSet::new();
    for step in 0..steps {
        let (cpu, kind, addr) = next_ref(&mut rng, cpus);
        touched.insert(addr.0);
        let a = filtered.access(cpu, kind, addr);
        let b = unfiltered.access(cpu, kind, addr);
        let c = broadcast.access(cpu, kind, addr);
        assert_eq!(
            a, b,
            "outcome diverged from unfiltered at step {step} ({cpu} {kind} {addr:?})"
        );
        assert_eq!(
            a, c,
            "outcome diverged from broadcast at step {step} ({cpu} {kind} {addr:?})"
        );
        if step % 4096 == 0 {
            filtered.audit_directory();
        }
    }
    filtered.audit_directory();

    assert_eq!(filtered.stats(), unfiltered.stats(), "SystemStats diverged");
    assert_eq!(
        filtered.bus_stats(),
        unfiltered.bus_stats(),
        "BusStats diverged (same directory, so even the snoop fan-out must match)"
    );
    assert_eq!(filtered.stats(), broadcast.stats());
    assert_eq!(
        filtered.latency_hist().unwrap(),
        unfiltered.latency_hist().unwrap(),
        "latency histograms diverged"
    );
    assert_eq!(
        filtered.line_stats().unwrap().touched_lines(),
        unfiltered.line_stats().unwrap().touched_lines()
    );
    assert_eq!(
        filtered.line_stats().unwrap().total_c2c(),
        unfiltered.line_stats().unwrap().total_c2c()
    );

    for &raw in &touched {
        let addr = Addr(raw);
        assert_eq!(
            filtered.l2_states(addr),
            unfiltered.l2_states(addr),
            "final L2 states diverged for {addr:?}"
        );
        for cpu in 0..cpus {
            assert_eq!(
                filtered.l1_holds(cpu, addr),
                unfiltered.l1_holds(cpu, addr),
                "final L1 residency diverged for cpu {cpu}, {addr:?}"
            );
        }
    }
}

#[test]
fn filtered_matches_unfiltered_1_cpu() {
    drive_shape(1, 1, 40_000, 0xF1);
}

#[test]
fn filtered_matches_unfiltered_4_cpus() {
    drive_shape(4, 1, 40_000, 0xF4);
}

#[test]
fn filtered_matches_unfiltered_16_cpus() {
    drive_shape(16, 1, 50_000, 0xF16);
}

#[test]
fn filtered_matches_unfiltered_16_cpus_shared_l2() {
    drive_shape(16, 4, 50_000, 0xF164);
}

#[test]
fn filtered_matches_unfiltered_one_shared_l2() {
    // Single L2 group: no directory, snoop loops empty, but the filter
    // and its epochs are fully live across the 4 sharing CPUs.
    drive_shape(4, 4, 40_000, 0xF44);
}

/// The filter actually fires on the default geometry — otherwise the
/// oracle above proves nothing about the fast path.
#[test]
fn default_shape_uses_the_filter() {
    let mut sys = MemorySystem::e6000(2).unwrap();
    assert!(sys.mru_filter_enabled());
    sys.access(0, AccessKind::Load, Addr(0x40));
    let o = sys.access(0, AccessKind::Load, Addr(0x40));
    assert_eq!(o.level, HitLevel::L1);
    // Mismatched block sizes disable it (entries would need sub-entry
    // invalidation granularity), without changing behavior.
    let mut b = HierarchyConfig::builder(1);
    b.l1i(CacheConfig::new(1 << 10, 2, 32).unwrap());
    b.l1d(CacheConfig::new(1 << 10, 2, 32).unwrap());
    let sys = MemorySystem::new(b.build().unwrap());
    assert!(!sys.mru_filter_enabled());
}

/// DRAM backend: the filter must not perturb clock-dependent memory
/// timing, and the batched path must stamp `set_now` exactly like the
/// scalar loop.
#[test]
fn dram_backend_scalar_and_batched_agree_with_unfiltered() {
    let mut b = HierarchyConfig::builder(4);
    b.l1i(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l1d(CacheConfig::new(1 << 10, 2, 64).unwrap());
    b.l2(CacheConfig::new(8 << 10, 4, 64).unwrap());
    b.memory(MemoryConfig::BankedDram(DramConfig::default()));
    let cfg = b.build().unwrap();

    // Generate one stream with per-reference timestamps.
    let mut rng = SimRng::seed_from_u64(0xD3A);
    let mut refs = Vec::new();
    let mut now = 0u64;
    let mut stamps = Vec::new();
    for _ in 0..30_000 {
        let (cpu, kind, addr) = next_ref(&mut rng, 4);
        refs.push(BatchRef {
            cpu: cpu as u32,
            kind,
            addr,
        });
        stamps.push(now);
        now += (rng.next_u64() % 40) + 1;
    }

    let run_scalar = |sys: &mut MemorySystem| -> Vec<AccessOutcome> {
        let mut out = Vec::with_capacity(refs.len());
        for (r, &t) in refs.iter().zip(&stamps) {
            sys.set_now(t);
            out.push(sys.access(r.cpu as usize, r.kind, r.addr));
        }
        out
    };

    let mut filtered = MemorySystem::new(cfg);
    let mut unfiltered = MemorySystem::new_unfiltered(cfg);
    filtered.enable_latency_hist(COSTS);
    unfiltered.enable_latency_hist(COSTS);
    assert!(filtered.needs_clock());
    let a = run_scalar(&mut filtered);
    let b = run_scalar(&mut unfiltered);
    assert_eq!(a, b, "DRAM-backed outcomes diverged");
    assert_eq!(filtered.stats(), unfiltered.stats());
    assert_eq!(
        filtered.latency_hist().unwrap(),
        unfiltered.latency_hist().unwrap()
    );
    assert_eq!(
        filtered.dram_stats().unwrap(),
        unfiltered.dram_stats().unwrap(),
        "row-hit/conflict pattern diverged"
    );

    // Batched replay of the same stream: each(i) stamps the clock for
    // reference i+1; reference 0's clock is set by the caller.
    let mut batched = MemorySystem::new(cfg);
    batched.enable_latency_hist(COSTS);
    let mut out = Vec::with_capacity(refs.len());
    batched.set_now(stamps[0]);
    batched.access_batch(&refs, |i, o| {
        out.push(*o);
        stamps.get(i + 1).copied()
    });
    assert_eq!(out, a, "batched outcomes diverged from scalar");
    assert_eq!(batched.stats(), filtered.stats());
    assert_eq!(
        batched.dram_stats().unwrap(),
        filtered.dram_stats().unwrap()
    );
    assert_eq!(
        batched.latency_hist().unwrap(),
        filtered.latency_hist().unwrap()
    );
}

/// Captured-trace replay across a window reset: the filtered replay's
/// statistics — and the bytes of a re-capture — must match the
/// unfiltered replay's exactly.
#[test]
fn trace_replay_and_recapture_bytes_are_identical() {
    let cfg = tiny(4, 1);
    let mut rng = SimRng::seed_from_u64(0x7C);
    let mut trace = SystemTrace::new();
    for i in 0..20_000u64 {
        let (cpu, kind, addr) = next_ref(&mut rng, 4);
        trace.record_ref(
            cpu,
            java_middleware_memsim::memsys::AccessSource::Workload,
            kind,
            addr,
        );
        if i == 9_999 {
            trace.record_window_reset();
        }
    }

    let mut filtered = MemorySystem::new(cfg);
    let mut unfiltered = MemorySystem::new_unfiltered(cfg);
    filtered.enable_latency_hist(COSTS);
    unfiltered.enable_latency_hist(COSTS);
    trace.replay_into(&mut filtered);
    trace.replay_into(&mut unfiltered);
    assert_eq!(filtered.stats(), unfiltered.stats());
    assert_eq!(filtered.bus_stats(), unfiltered.bus_stats());
    assert_eq!(
        filtered.latency_hist().unwrap(),
        unfiltered.latency_hist().unwrap()
    );

    // On-disk bytes of the capture survive a write/read/write loop
    // regardless of which system consumed it (the trace is input, not
    // output, but the round trip pins the whole byte path).
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).unwrap();
    let back = SystemTrace::read_from(&bytes[..]).unwrap();
    let mut bytes2 = Vec::new();
    back.write_to(&mut bytes2).unwrap();
    assert_eq!(bytes, bytes2);
}

/// A remote read downgrades the owner (M→O): the owner's *store* fast
/// path must die (the next store is a bus Upgrade, exactly as
/// unfiltered), while its load fast path survives (L1 copies outlive a
/// remote read).
#[test]
fn remote_read_downgrade_kills_the_store_fast_path() {
    let mut m = MemorySystem::e6000(2).unwrap();
    m.access(0, AccessKind::Store, Addr(0x1000)); // cpu0: M
    m.access(0, AccessKind::Store, Addr(0x1000)); // filter fast path (M hit)
    assert_eq!(m.bus_stats().upgrades, 0);
    m.access(1, AccessKind::Load, Addr(0x1000)); // remote read: M -> O
    let o = m.access(0, AccessKind::Store, Addr(0x1000));
    assert_eq!(
        o.level,
        HitLevel::Upgrade,
        "stale dirty entry must not swallow the upgrade"
    );
    assert_eq!(m.bus_stats().upgrades, 1);
    // cpu1's copy must miss again (invalidated by the upgrade) — the
    // filter must not have kept a stale load entry for it either.
    let o = m.access(1, AccessKind::Load, Addr(0x1000));
    assert!(o.c2c, "invalidated reader re-fetches from the dirty owner");
}

/// A remote write invalidates the line everywhere: both the load and
/// store fast paths of every prior holder must die.
#[test]
fn remote_write_invalidation_kills_both_fast_paths() {
    let mut m = MemorySystem::e6000(2).unwrap();
    m.access(0, AccessKind::Load, Addr(0x2000)); // cpu0 L1 + load entry
    m.access(0, AccessKind::Load, Addr(0x2000)); // fast path
    m.access(1, AccessKind::Store, Addr(0x2000)); // GetX invalidates cpu0
    let o = m.access(0, AccessKind::Load, Addr(0x2000));
    assert_ne!(o.level, HitLevel::L1, "stale load entry survived a GetX");
    assert!(o.c2c, "re-fetch must come from the new dirty owner");
}

/// An L2 eviction purges the inclusive L1s above it — and the filter
/// entries with them.
#[test]
fn l2_eviction_kills_the_fast_path() {
    let mut b = HierarchyConfig::builder(1);
    b.l2(CacheConfig::new(512, 2, 64).unwrap());
    b.l1i(CacheConfig::new(256, 2, 64).unwrap());
    b.l1d(CacheConfig::new(256, 2, 64).unwrap());
    let mut m = MemorySystem::new(b.build().unwrap());
    assert!(m.mru_filter_enabled());
    m.access(0, AccessKind::Load, Addr(0));
    m.access(0, AccessKind::Load, Addr(0)); // fast path
    let sets = 512 / (2 * 64);
    let stride = (sets * 64) as u64;
    for i in 1..=2u64 {
        m.access(0, AccessKind::Load, Addr(i * stride));
    }
    // Line 0 was evicted from L2 (and, by inclusion, from the L1): the
    // next access must walk and miss, not fast-path to an L1 hit.
    let o = m.access(0, AccessKind::Load, Addr(0));
    assert_ne!(
        o.level,
        HitLevel::L1,
        "inclusion violated through the filter"
    );
}

/// `reset_stats` (the measurement-window boundary) clears the filter:
/// the first post-reset access walks the full path, so its statistics
/// land in the new window exactly as on an unfiltered system.
#[test]
fn window_reset_clears_the_filter_and_matches_unfiltered() {
    let cfg = tiny(2, 1);
    let mut filtered = MemorySystem::new(cfg);
    let mut unfiltered = MemorySystem::new_unfiltered(cfg);
    let mut rng = SimRng::seed_from_u64(0x33);
    for _ in 0..5_000 {
        let (cpu, kind, addr) = next_ref(&mut rng, 2);
        filtered.access(cpu, kind, addr);
        unfiltered.access(cpu, kind, addr);
    }
    filtered.reset_stats();
    unfiltered.reset_stats();
    for _ in 0..5_000 {
        let (cpu, kind, addr) = next_ref(&mut rng, 2);
        let a = filtered.access(cpu, kind, addr);
        let b = unfiltered.access(cpu, kind, addr);
        assert_eq!(a, b);
    }
    assert_eq!(filtered.stats(), unfiltered.stats());
    assert_eq!(filtered.bus_stats(), unfiltered.bus_stats());
}

/// Batch/scalar equivalence on the plain flat backend across shapes —
/// the contract `access_batch` documents, without the DRAM clock in
/// play.
#[test]
fn batched_equals_scalar_on_flat_shapes() {
    for (cpus, per, seed) in [(1usize, 1usize, 0xB1u64), (4, 1, 0xB4), (16, 4, 0xB164)] {
        let cfg = tiny(cpus, per);
        let mut rng = SimRng::seed_from_u64(seed);
        let refs: Vec<BatchRef> = (0..25_000)
            .map(|_| {
                let (cpu, kind, addr) = next_ref(&mut rng, cpus);
                BatchRef {
                    cpu: cpu as u32,
                    kind,
                    addr,
                }
            })
            .collect();
        let mut scalar = MemorySystem::new(cfg);
        let mut outcomes = Vec::with_capacity(refs.len());
        for r in &refs {
            outcomes.push(scalar.access(r.cpu as usize, r.kind, r.addr));
        }
        let mut batched = MemorySystem::new(cfg);
        let mut i = 0;
        batched.access_batch(&refs, |idx, o| {
            assert_eq!(idx, i);
            assert_eq!(*o, outcomes[i], "{cpus}x{per}: outcome {i} diverged");
            i += 1;
            None
        });
        assert_eq!(i, refs.len());
        assert_eq!(scalar.stats(), batched.stats());
        assert_eq!(scalar.bus_stats(), batched.bus_stats());
    }
}
