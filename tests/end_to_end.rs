//! Cross-crate integration tests: the workloads driven through the full
//! machine (scheduler + coherent memory system + JVM substrate), checking
//! the paper's headline *relationships* end to end.

use middlesim::{ecperf_machine, jbb_machine, measure, Effort};
use workloads::model::Workload as _;

const E: Effort = Effort::Quick;

#[test]
fn simulation_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut m = jbb_machine(4, 8, seed, E);
        let r = measure(&mut m, E);
        (
            r.transactions,
            m.memory().stats().total_accesses(),
            m.memory().stats().total_c2c(),
        )
    };
    assert_eq!(run(7), run(7), "same seed, same universe");
    assert_ne!(run(7), run(8), "different seeds diverge");
}

#[test]
fn both_workloads_reach_steady_state_on_eight_processors() {
    let mut jbb = jbb_machine(8, 16, 1, E);
    let rj = measure(&mut jbb, E);
    assert!(rj.transactions > 1_000, "jbb txs: {}", rj.transactions);
    let mut ec = ecperf_machine(8, 1, E);
    let re = measure(&mut ec, E);
    assert!(re.transactions > 200, "ecperf BBops: {}", re.transactions);
    // Both mode breakdowns are complete.
    assert!((rj.modes.sum() - 1.0).abs() < 0.02);
    assert!((re.modes.sum() - 1.0).abs() < 0.02);
}

#[test]
fn ecperf_does_kernel_work_and_specjbb_does_not() {
    let mut jbb = jbb_machine(4, 8, 1, E);
    let rj = measure(&mut jbb, E);
    let mut ec = ecperf_machine(4, 1, E);
    let re = measure(&mut ec, E);
    assert!(
        re.modes.system > 3.0 * rj.modes.system,
        "ECperf system {:.3} must dwarf SPECjbb's {:.3} (paper Figure 5)",
        re.modes.system,
        rj.modes.system
    );
}

#[test]
fn ecperf_instruction_footprint_dwarfs_specjbb() {
    let jbb = jbb_machine(1, 2, 1, E);
    let ec = ecperf_machine(1, 1, E);
    assert!(
        ec.workload().code_footprint() > 3 * jbb.workload().code_footprint(),
        "paper Figure 12's cause"
    );
}

#[test]
fn garbage_collection_stops_the_world_exactly_once_at_a_time() {
    let mut m = jbb_machine(4, 8, 1, E);
    m.run_until(3 * E.window());
    let intervals = m.gc_intervals().to_vec();
    assert!(!intervals.is_empty(), "collections must happen");
    for w in intervals.windows(2) {
        assert!(
            w[1].0 >= w[0].1,
            "GC intervals overlap: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn coherence_traffic_requires_multiple_processors() {
    let mut single = jbb_machine(1, 2, 1, E);
    let r1 = measure(&mut single, E);
    let mut multi = jbb_machine(8, 16, 1, E);
    let r8 = measure(&mut multi, E);
    assert!(
        r8.c2c_ratio > r1.c2c_ratio,
        "c2c ratio must grow with processors: {:.3} -> {:.3}",
        r1.c2c_ratio,
        r8.c2c_ratio
    );
    // Even one benchmark processor sees some transfers (the OS runs on
    // all sixteen) — paper Figure 8.
    assert!(r1.c2c_ratio > 0.0);
}

#[test]
fn specjbb_heap_grows_with_warehouses_ecperf_does_not_grow_with_ir() {
    let live_of = |m: &mut middlesim::Machine<workloads::specjbb::SpecJbb>| {
        m.run_until(3 * E.window());
        m.workload().heap_after_last_gc().unwrap_or(0)
    };
    let mut small = jbb_machine(4, 4, 1, E);
    let mut large = jbb_machine(4, 16, 1, E);
    let (s, l) = (live_of(&mut small), live_of(&mut large));
    assert!(
        l > s + s / 2,
        "4x warehouses must grow the live heap: {s} -> {l}"
    );
}

#[test]
fn throughput_scales_then_saturates() {
    let tput = |p: usize| {
        let mut m = jbb_machine(p, 2 * p, 1, E);
        measure(&mut m, E).throughput()
    };
    let t1 = tput(1);
    let t4 = tput(4);
    let t12 = tput(12);
    assert!(t4 > 2.0 * t1, "4p should be >2x 1p: {t1:.0} -> {t4:.0}");
    assert!(t12 > t4, "12p should beat 4p");
    assert!(
        t12 < 12.0 * t1,
        "12p must be sub-linear (the paper's whole point)"
    );
}
