//! The chip-multiprocessor question (the paper's Figure 16): is a 1 MB
//! *shared* L2 better than private 1 MB L2s? The two middleware
//! benchmarks give opposite answers.
//!
//! Run with: `cargo run --release --example shared_cache_cmp`

use middlesim::figures::fig16;
use middlesim::Effort;

fn main() {
    let fig = fig16::run(Effort::Quick);
    println!("{}", fig.table());
    println!("ECperf's small, heavily shared working set wants the shared cache");
    println!("(coherence misses vanish); SPECjbb's warehouse data wants capacity.");
    let violations = fig.shape_violations();
    if violations.is_empty() {
        println!("\n[the paper's crossover reproduces]");
    } else {
        for v in violations {
            println!("\n[deviation] {v}");
        }
    }
}
