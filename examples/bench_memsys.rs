//! Offline raw-throughput benchmark for `MemorySystem::access`: streams a
//! seeded reference mix through 1/4/16-CPU systems (plus the shared-L2
//! Figure 16 shape) and writes refs/sec to `BENCH_memsys.json`.
//!
//! The mix is deliberately miss-heavy (per-CPU working sets 4x the L2)
//! with a small hot shared region, so both the bus paths and the
//! coherence paths are exercised; the stream is a pure function of the
//! seed, so pre/post-optimization numbers are directly comparable.
//!
//! The driver replays the stream the way a trace replayer does: each
//! reference is generated `LOOKAHEAD` records before it is issued and
//! announced to [`MemorySystem::warm`], so the simulator's long metadata
//! fetches (L2 set words, sharer-directory slots) overlap *across*
//! accesses instead of serializing inside each one. Warming is hint-only
//! — the reference stream, and therefore every statistic, is identical
//! to issuing the stream directly.
//!
//! Run with: `cargo run --release --example bench_memsys [quick|standard|full]`

use std::time::Instant;

use memsys::{AccessKind, Addr, HierarchyConfig, MemorySystem};
use prng::SimRng;

/// Per-CPU private heap: 4 MB (4x the 1 MB L2 -> miss-heavy).
const PRIVATE_LINES: u64 = (4 << 20) / 64;
/// Per-CPU code region: 64 KB (4x the 16 KB L1I).
const CODE_LINES: u64 = (64 << 10) / 64;
/// Hot shared region: 64 KB of lines every CPU loads and stores.
const SHARED_LINES: u64 = (64 << 10) / 64;

/// How many references ahead of the issue cursor the stream is warmed.
/// A reference costs on the order of 100 ns, a cold metadata fetch
/// likewise; a handful of records of lead time hides it with room to
/// spare, and the hints are free, so the exact depth is uncritical.
const LOOKAHEAD: usize = 8;

/// Generates one seeded pseudo-random reference; the stream is a pure
/// function of the seed, identical for every memory-system
/// implementation and every driver structure fed the same seed.
#[inline]
fn next_ref(rng: &mut SimRng, cpus: u64) -> (usize, AccessKind, Addr) {
    let r = rng.next_u64();
    let a = rng.next_u64();
    // All bench shapes have power-of-two CPU counts, so masking picks the
    // same CPU `r % cpus` would — without a hardware divide per record.
    debug_assert!(cpus.is_power_of_two());
    let cpu = (r & (cpus - 1)) as usize;
    let roll = (r >> 8) % 100;
    if roll < 40 {
        let addr = 0x0800_0000 + (cpu as u64) * 0x1_0000 + (a % CODE_LINES) * 64;
        (cpu, AccessKind::Ifetch, Addr(addr))
    } else {
        let kind = if roll < 80 {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        let shared = (r >> 40) % 100 < 10;
        let addr = if shared {
            0x0000_2000 + (a % SHARED_LINES) * 64
        } else {
            0x1000_0000 + (cpu as u64) * 0x40_0000 + (a % PRIVATE_LINES) * 64
        };
        (cpu, kind, Addr(addr))
    }
}

struct ShapeResult {
    name: String,
    cpus: usize,
    cpus_per_l2: usize,
    refs_per_sec: f64,
    snoop_filter_rate: f64,
}

fn bench_shape(cpus: usize, cpus_per_l2: usize, refs: u64, seed: u64) -> ShapeResult {
    let mut b = HierarchyConfig::builder(cpus);
    b.cpus_per_l2(cpus_per_l2);
    let mut sys = MemorySystem::new(b.build().expect("bench shape"));
    // Warm the caches with a prefix of the stream, then time a window.
    let mut rng = SimRng::seed_from_u64(seed);
    for _ in 0..refs / 4 {
        let (cpu, kind, addr) = next_ref(&mut rng, cpus as u64);
        sys.access(cpu, kind, addr);
    }
    sys.reset_stats();
    let t0 = Instant::now();
    // Lookahead replay: a small ring holds the next LOOKAHEAD references,
    // each warmed when generated and issued LOOKAHEAD records later.
    let mut ring = [(0usize, AccessKind::Load, Addr(0)); LOOKAHEAD];
    for slot in ring.iter_mut() {
        let r = next_ref(&mut rng, cpus as u64);
        sys.warm(r.0, r.1, r.2);
        *slot = r;
    }
    for i in 0..refs as usize {
        let (cpu, kind, addr) = ring[i % LOOKAHEAD];
        if (i as u64) < refs - LOOKAHEAD as u64 {
            let r = next_ref(&mut rng, cpus as u64);
            sys.warm(r.0, r.1, r.2);
            ring[i % LOOKAHEAD] = r;
        }
        sys.access(cpu, kind, addr);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(sys.stats().total_accesses(), refs);
    let refs_per_sec = refs as f64 / secs.max(1e-9);
    let snoop_filter_rate = sys.bus_stats().snoop_filter_rate();
    let name = if cpus_per_l2 == 1 {
        format!("{cpus}cpu")
    } else {
        format!("{cpus}cpu_shared{cpus_per_l2}")
    };
    println!(
        "{name:>16}: {refs_per_sec:>12.0} refs/s  ({secs:.2} s, {} L2 misses, {:.1}% snoops filtered)",
        sys.stats().total_l2_misses(),
        snoop_filter_rate * 100.0,
    );
    ShapeResult {
        name,
        cpus,
        cpus_per_l2,
        refs_per_sec,
        snoop_filter_rate,
    }
}

fn main() {
    let refs: u64 = match std::env::args().nth(1).as_deref() {
        Some("quick") => 2_000_000,
        Some("full") => 40_000_000,
        _ => 10_000_000,
    };
    println!("streaming {refs} seeded references per shape...");
    let shapes = [(1usize, 1usize), (4, 1), (16, 1), (16, 4)];
    let results: Vec<ShapeResult> = shapes
        .iter()
        .map(|&(cpus, per)| bench_shape(cpus, per, refs, 0xB5EED))
        .collect();

    let mut json = String::from("{\n  \"bench\": \"memsys_access\",\n");
    json.push_str(&format!(
        "  \"provenance\": {},\n",
        probes::Provenance::capture().to_json()
    ));
    json.push_str(&format!("  \"refs_per_shape\": {refs},\n  \"shapes\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"cpus\": {}, \"cpus_per_l2\": {}, ",
                "\"refs_per_sec\": {:.0}, \"snoop_filter_rate\": {:.4}}}{}\n"
            ),
            r.name,
            r.cpus,
            r.cpus_per_l2,
            r.refs_per_sec,
            r.snoop_filter_rate,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_memsys.json", &json).expect("write BENCH_memsys.json");
    println!("wrote BENCH_memsys.json");
}
