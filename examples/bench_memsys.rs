//! Offline raw-throughput benchmark for `MemorySystem::access`: streams a
//! seeded reference mix through 1/4/16-CPU systems (plus the shared-L2
//! Figure 16 shape) and writes refs/sec to `BENCH_memsys.json`.
//!
//! The mix is miss-heavy at line granularity (per-CPU working sets 4x
//! the L2, plus a small hot shared region) but bursty *within* lines,
//! like the middleware streams the simulator exists to replay:
//! instruction fetch walks each code line in four sequential fetches,
//! a load touches two or three fields of its object, and a store pair
//! dirties adjacent words. The repeated-touch runs are exactly what the
//! per-CPU MRU line filter short-circuits, so the benchmark exercises
//! both the filter's fast path and (on the burst leaders) the full
//! hierarchy walk. The stream is a pure function of the seed, so
//! pre/post-optimization numbers are directly comparable.
//!
//! Each shape is timed twice on the identical stream: once through
//! `MemorySystem::new` (MRU filter on) and once through
//! `MemorySystem::new_unfiltered` — the in-file ablation that separates
//! the filter's contribution from stream or driver changes. References
//! are issued in 4096-record batches via [`MemorySystem::access_batch`],
//! whose lookahead overlaps the simulator's long metadata fetches (L2
//! set words, sharer-directory slots) *across* accesses; batching and
//! warming are architecturally invisible, so every statistic matches a
//! scalar replay bit for bit.
//!
//! Run with: `cargo run --release --example bench_memsys [quick|standard|full]`

use std::time::Instant;

use memsys::{AccessKind, Addr, BatchRef, HierarchyConfig, MemorySystem};
use prng::SimRng;

/// Per-CPU private heap: 4 MB (4x the 1 MB L2 -> miss-heavy).
const PRIVATE_LINES: u64 = (4 << 20) / 64;
/// Per-CPU code region: 64 KB (4x the 16 KB L1I).
const CODE_LINES: u64 = (64 << 10) / 64;
/// Hot shared region: 64 KB of lines every CPU loads and stores.
const SHARED_LINES: u64 = (64 << 10) / 64;

/// References issued per `access_batch` call.
const BATCH: usize = 4096;

/// Generates the seeded reference stream: a pure function of the seed,
/// identical for every memory-system implementation and every driver
/// structure fed the same seed.
///
/// Each RNG draw produces a burst leader plus its within-line followers
/// (queued in `pending`, drained before the next draw): 4 sequential
/// ifetches through a code line, 2-3 load touches of an object's
/// fields, or a 2-store pair. Leaders walk the full hierarchy;
/// followers are the repeated-touch runs the MRU filter memoizes.
struct Stream {
    rng: SimRng,
    cpus: u64,
    pending: [(usize, AccessKind, u64); 3],
    npending: usize,
}

impl Stream {
    fn new(seed: u64, cpus: usize) -> Self {
        // All bench shapes have power-of-two CPU counts, so masking
        // picks the same CPU `r % cpus` would — without a hardware
        // divide per record.
        assert!(cpus.is_power_of_two());
        Stream {
            rng: SimRng::seed_from_u64(seed),
            cpus: cpus as u64,
            pending: [(0, AccessKind::Load, 0); 3],
            npending: 0,
        }
    }

    #[inline]
    fn next(&mut self) -> (usize, AccessKind, Addr) {
        if self.npending > 0 {
            self.npending -= 1;
            let (cpu, kind, addr) = self.pending[self.npending];
            return (cpu, kind, Addr(addr));
        }
        let r = self.rng.next_u64();
        let a = self.rng.next_u64();
        let cpu = (r & (self.cpus - 1)) as usize;
        let roll = (r >> 8) % 100;
        if roll < 40 {
            // Ifetch burst: fall through a code line in 16-byte steps.
            let base = 0x0800_0000 + (cpu as u64) * 0x1_0000 + (a % CODE_LINES) * 64;
            self.pending = [
                (cpu, AccessKind::Ifetch, base + 48),
                (cpu, AccessKind::Ifetch, base + 32),
                (cpu, AccessKind::Ifetch, base + 16),
            ];
            self.npending = 3;
            (cpu, AccessKind::Ifetch, Addr(base))
        } else {
            let shared = (r >> 40) % 100 < 10;
            let base = if shared {
                0x0000_2000 + (a % SHARED_LINES) * 64
            } else {
                0x1000_0000 + (cpu as u64) * 0x40_0000 + (a % PRIVATE_LINES) * 64
            };
            if roll < 80 {
                // Load burst: two or three fields of the same object.
                let touches = if r >> 60 & 1 == 0 { 2 } else { 1 };
                self.pending[0] = (cpu, AccessKind::Load, base + 16);
                self.pending[1] = (cpu, AccessKind::Load, base + 8);
                self.npending = touches;
                (cpu, AccessKind::Load, Addr(base))
            } else {
                // Store pair: adjacent words of a dirtied line.
                self.pending[0] = (cpu, AccessKind::Store, base + 8);
                self.npending = 1;
                (cpu, AccessKind::Store, Addr(base))
            }
        }
    }

    /// Fills `batch` with up to `budget` references.
    fn fill(&mut self, batch: &mut Vec<BatchRef>, budget: u64) {
        batch.clear();
        for _ in 0..(BATCH as u64).min(budget) {
            let (cpu, kind, addr) = self.next();
            batch.push(BatchRef {
                cpu: cpu as u32,
                kind,
                addr,
            });
        }
    }
}

struct ShapeResult {
    name: String,
    cpus: usize,
    cpus_per_l2: usize,
    refs_per_sec: f64,
    unfiltered_refs_per_sec: f64,
    mru_speedup: f64,
    snoop_filter_rate: f64,
}

/// Streams `refs` references (after a warming prefix of `refs / 4`)
/// through `sys` and returns the timed throughput.
fn run_stream(sys: &mut MemorySystem, cpus: usize, refs: u64, seed: u64) -> f64 {
    let mut stream = Stream::new(seed, cpus);
    let mut batch: Vec<BatchRef> = Vec::with_capacity(BATCH);
    let mut left = refs / 4;
    while left > 0 {
        stream.fill(&mut batch, left);
        sys.access_batch(&batch, |_, _| None);
        left -= batch.len() as u64;
    }
    sys.reset_stats();
    // Time only the `access_batch` calls: the generator's RNG cost is
    // driver overhead, identical for every implementation, and leaving
    // it inside the window would dilute real simulator differences. At
    // 4096 records per batch the timer calls amortize to well under a
    // nanosecond per reference.
    let mut busy = std::time::Duration::ZERO;
    let mut left = refs;
    while left > 0 {
        stream.fill(&mut batch, left);
        let t0 = Instant::now();
        sys.access_batch(&batch, |_, _| None);
        busy += t0.elapsed();
        left -= batch.len() as u64;
    }
    let secs = busy.as_secs_f64();
    assert_eq!(sys.stats().total_accesses(), refs);
    refs as f64 / secs.max(1e-9)
}

/// Timing passes per shape; the best pass is reported. The benchmark
/// often shares a core with the rest of the host, and a preemption can
/// only make a pass *slower*, so max-of-N is the noise-robust estimate
/// of what the simulator sustains. The stream is deterministic, so
/// every pass does identical work.
const PASSES: usize = 3;

fn bench_shape(cpus: usize, cpus_per_l2: usize, refs: u64, seed: u64) -> ShapeResult {
    let mut b = HierarchyConfig::builder(cpus);
    b.cpus_per_l2(cpus_per_l2);
    let cfg = b.build().expect("bench shape");
    let mut refs_per_sec = 0.0f64;
    let mut sys = MemorySystem::new(cfg);
    for pass in 0..PASSES {
        if pass > 0 {
            sys = MemorySystem::new(cfg);
        }
        assert!(sys.mru_filter_enabled());
        refs_per_sec = refs_per_sec.max(run_stream(&mut sys, cpus, refs, seed));
    }
    let snoop_filter_rate = sys.bus_stats().snoop_filter_rate();
    let stats = sys.stats().clone();

    // Ablation: the identical stream through the same system one knob
    // away (MRU filter off). Statistics must agree exactly — the filter
    // claims bit-identity, and this doubles as a coarse end-to-end
    // check of that claim at bench scale.
    let mut unfiltered_refs_per_sec = 0.0f64;
    let mut plain = MemorySystem::new_unfiltered(cfg);
    for pass in 0..PASSES {
        if pass > 0 {
            plain = MemorySystem::new_unfiltered(cfg);
        }
        unfiltered_refs_per_sec =
            unfiltered_refs_per_sec.max(run_stream(&mut plain, cpus, refs, seed));
    }
    assert_eq!(&stats, plain.stats(), "MRU filter diverged at bench scale");

    let mru_speedup = refs_per_sec / unfiltered_refs_per_sec.max(1e-9);
    let name = if cpus_per_l2 == 1 {
        format!("{cpus}cpu")
    } else {
        format!("{cpus}cpu_shared{cpus_per_l2}")
    };
    println!(
        "{name:>16}: {refs_per_sec:>12.0} refs/s  (unfiltered {unfiltered_refs_per_sec:.0}, \
         {mru_speedup:.2}x, {} L2 misses, {:.1}% snoops filtered)",
        stats.total_l2_misses(),
        snoop_filter_rate * 100.0,
    );
    ShapeResult {
        name,
        cpus,
        cpus_per_l2,
        refs_per_sec,
        unfiltered_refs_per_sec,
        mru_speedup,
        snoop_filter_rate,
    }
}

fn main() {
    let effort = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    let refs: u64 = match effort.as_str() {
        "quick" => 2_000_000,
        "full" => 40_000_000,
        _ => 10_000_000,
    };
    println!("streaming {refs} seeded references per shape (filtered + unfiltered)...");
    let shapes = [(1usize, 1usize), (4, 1), (16, 1), (16, 4)];
    let results: Vec<ShapeResult> = shapes
        .iter()
        .map(|&(cpus, per)| bench_shape(cpus, per, refs, 0xB5EED))
        .collect();

    let mut json = String::from("{\n  \"bench\": \"memsys_access\",\n");
    json.push_str(&format!(
        "  \"provenance\": {},\n",
        probes::Provenance::capture()
            .with_workers(1)
            .with_effort(effort)
            .to_json()
    ));
    json.push_str(&format!("  \"refs_per_shape\": {refs},\n  \"shapes\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"cpus\": {}, \"cpus_per_l2\": {}, ",
                "\"refs_per_sec\": {:.0}, \"unfiltered_refs_per_sec\": {:.0}, ",
                "\"mru_speedup\": {:.3}, \"snoop_filter_rate\": {:.4}}}{}\n"
            ),
            r.name,
            r.cpus,
            r.cpus_per_l2,
            r.refs_per_sec,
            r.unfiltered_refs_per_sec,
            r.mru_speedup,
            r.snoop_filter_rate,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_memsys.json", &json).expect("write BENCH_memsys.json");
    println!("wrote BENCH_memsys.json");
}
