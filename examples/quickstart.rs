//! Quickstart: simulate SPECjbb on a 4-processor slice of an E6000 and
//! print the headline measurements the paper is built from.
//!
//! Run with: `cargo run --release --example quickstart`

use middlesim::{jbb_machine, measure, Effort};

fn main() {
    let effort = Effort::Quick;
    println!("building SPECjbb (8 warehouses) on 4 of 16 processors...");
    let mut machine = jbb_machine(4, 8, 1, effort);
    let report = measure(&mut machine, effort);

    println!("\n== window report ==");
    println!("transactions      : {}", report.transactions);
    println!("throughput        : {:.0} tx/s", report.throughput());
    println!(
        "CPI               : {:.2} (instr stall {:.2}, data stall {:.2}, other {:.2})",
        report.cpi.cpi(),
        report.cpi.instr_stall_cpi(),
        report.cpi.data_stall_cpi(),
        report.cpi.other_cpi()
    );
    println!("modes             : {}", report.modes);
    println!(
        "c2c transfer ratio: {:.1}% of L2 misses",
        report.c2c_ratio * 100.0
    );
    println!(
        "garbage collection: {} collections, {:.1}% of the window",
        report.gc_count,
        report.gc_cycles as f64 * 100.0 / report.cycles.max(1) as f64
    );

    let stats = machine.memory().stats();
    println!("\n== memory system ==");
    println!(
        "refs: {} ({} ifetch, {} load, {} store)",
        stats.total_accesses(),
        stats.ifetch.accesses,
        stats.load.accesses,
        stats.store.accesses
    );
    println!(
        "L2 demand misses: {} ({} satisfied cache-to-cache)",
        stats.total_l2_misses(),
        stats.total_c2c()
    );
}
