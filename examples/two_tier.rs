//! Two-tier co-simulation: the ECperf application server plus the
//! database machine, with the middle tier isolated exactly as the paper
//! isolates it (Section 3.3).
//!
//! Run with: `cargo run --release --example two_tier`

use middlesim::{run_cluster, Effort};

fn main() {
    println!("co-simulating the application-server and database tiers...");
    let report = run_cluster(4, Effort::Quick);
    println!("\n{}", report.table());
    println!("The paper's observation holds: the middle tier is where the");
    println!("interesting memory behavior lives — the database \"is not overly");
    println!("stressed\" and its working set sits resident in the buffer pool.");
}
