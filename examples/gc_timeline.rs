//! The paper's Figure 10 as an ASCII timeline: cache-to-cache transfers
//! collapse while the single-threaded collector runs.
//!
//! The series comes from the generic `IntervalSampler` (every registered
//! counter, per interval); this view plots the `bus.snoop_cb` deltas,
//! normalized per million cycles since GC pauses stretch intervals past
//! their nominal width. The full sampled series is archived as
//! `RUNLOG_gc_timeline.jsonl` (with host/commit provenance) next to the
//! `BENCH_*.json` artifacts — render it with
//! `simreport --simstat RUNLOG_gc_timeline.jsonl`.
//!
//! Run with: `cargo run --release --example gc_timeline`

use middlesim::figures::fig10;
use middlesim::Effort;
use probes::runlog::{JobSpan, RunMeta};
use probes::{Provenance, RunLog};

fn main() {
    let started = std::time::Instant::now();
    let fig = fig10::run(Effort::Quick, 8);

    let rates: Vec<f64> = fig
        .intervals
        .iter()
        .map(|s| s.rate_per_mcycle("bus.snoop_cb"))
        .collect();
    let max = rates.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-12);
    println!("cache-to-cache transfers per interval (# = c2c/Mcycle, 'GC' = collector active)\n");
    for (s, rate) in fig.intervals.iter().zip(&rates) {
        let bar = "#".repeat((rate / max * 50.0).round() as usize);
        println!(
            "{:>4} |{:<50}| {}",
            s.seq,
            bar,
            if s.gc { "GC" } else { "" }
        );
    }
    println!(
        "\nmean c2c/Mcycle outside GC: {:.1}, during GC: {:.1} ({} collections)",
        fig.rate_outside_gc(),
        fig.rate_during_gc(),
        fig.gc_count
    );
    println!("The mutators' dirty lines were written back long before collection");
    println!("(eden >> cache), so the collector reads memory, not remote caches.");

    // Archive the sampled series as a schema-valid RunLog: provenance
    // line, one run, the figure's span, every interval record.
    let log = RunLog::new();
    let run = log.begin_run(RunMeta {
        tag: "gc_timeline".into(),
        effort: "Quick".into(),
        threads: 1,
        jobs: 1,
    });
    log.record_span(JobSpan {
        run,
        id: 0,
        label: Some("fig10".into()),
        worker: 0,
        claim: 0,
        cost_hint: None,
        wall_secs: started.elapsed().as_secs_f64(),
        counters: None,
    });
    log.record_intervals(fig.records(run, 0));
    let jsonl = log.to_jsonl(&Provenance::capture());
    probes::report::check(&jsonl).expect("archived series passes the schema check");
    std::fs::write("RUNLOG_gc_timeline.jsonl", &jsonl).expect("write RUNLOG_gc_timeline.jsonl");
    println!(
        "\nwrote RUNLOG_gc_timeline.jsonl ({} intervals; try `simreport --simstat` on it)",
        log.interval_count()
    );
}
