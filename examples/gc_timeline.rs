//! The paper's Figure 10 as an ASCII timeline: cache-to-cache transfers
//! collapse while the single-threaded collector runs.
//!
//! Run with: `cargo run --release --example gc_timeline`

use middlesim::figures::fig10;
use middlesim::Effort;

fn main() {
    let fig = fig10::run(Effort::Quick, 8);
    let max = fig.buckets.iter().map(|b| b.c2c).max().unwrap_or(1).max(1);
    println!("cache-to-cache transfers per bucket (# = traffic, 'GC' = collector active)\n");
    for (i, b) in fig.buckets.iter().enumerate() {
        let bar = "#".repeat((b.c2c * 50 / max) as usize);
        println!(
            "{:>4} |{:<50}| {}",
            i,
            bar,
            if b.gc_active { "GC" } else { "" }
        );
    }
    println!(
        "\nmean transfers/bucket outside GC: {:.0}, during GC: {:.0} ({} collections)",
        fig.rate_outside_gc(),
        fig.rate_during_gc(),
        fig.gc_count
    );
    println!("The mutators' dirty lines were written back long before collection");
    println!("(eden >> cache), so the collector reads memory, not remote caches.");
}
