//! The ECperf middle tier: drive the simulated application server and
//! show the paper's Section 4.4 effect — the object cache cuts database
//! round trips per BBop as processors (and thus concurrency) grow.
//!
//! Run with: `cargo run --release --example ecperf_cluster`

use middlesim::{ecperf_machine, measure, Effort};

fn main() {
    let effort = Effort::Quick;
    println!("  P     BBop/s   instr/BBop  DB-rt/BBop  hit-rate   sys%");
    for p in [1usize, 2, 4, 8] {
        let mut machine = ecperf_machine(p, 1, effort);
        let r = measure(&mut machine, effort);
        let wl = machine.workload();
        let bbops = wl.total_tx().max(1);
        println!(
            " {:>2} {:>9.0} {:>11.0} {:>11.2} {:>9.3} {:>6.1}",
            p,
            r.throughput(),
            r.cpi.instructions as f64 / r.transactions.max(1) as f64,
            wl.db_roundtrips() as f64 / bbops as f64,
            wl.cache().stats().hit_rate(),
            r.modes.system * 100.0
        );
    }
    println!("\nConstructive interference in the object cache (paper Section 4.4):");
    println!("more processors keep entities fresh within their TTL, so the hit");
    println!("rate rises and the per-BBop path length falls — the mechanism");
    println!("behind ECperf's super-linear speedup region.");
}
