//! The official SPECjbb2000 run protocol (paper Section 2.1): ramp the
//! warehouse count to the peak n, then score the average of n..2n.
//!
//! Run with: `cargo run --release --example official_score`

use middlesim::{official_run, Effort};

fn main() {
    println!("running the official SPECjbb protocol on 4 processors...");
    let score = official_run(4, 12, Effort::Quick);
    println!("\n{}", score.table());
    println!(
        "peak at n = {} warehouses; official-style score = {:.0} tx/s",
        score.peak_warehouses, score.score
    );
    println!("(The paper skipped this protocol in simulation — prohibitively");
    println!("many runs — and picked representative warehouse counts instead.)");
}
