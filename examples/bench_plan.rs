//! Offline smoke benchmark for the experiment-plan worker pool: one
//! Standard-effort batch of SPECjbb windows, timed serially and at the
//! machine's core count, written to `BENCH_plan.json`.
//!
//! The batch mixes system sizes so the size-aware (largest-first)
//! scheduler has something to do; the results are asserted identical
//! between the two runs before any timing is reported, so the speedup
//! number can never come from divergent work.
//!
//! Both passes run with a `RunLog` attached and counter snapshots taken
//! at job end (`run_probed`), so the bench also produces
//! `RUNLOG_plan.jsonl` — the input `simreport` renders and CI
//! schema-checks. `BENCH_plan.json` carries host/commit provenance.
//!
//! Run with: `cargo run --release --example bench_plan [quick|standard|full]`

use std::sync::Arc;
use std::time::Instant;

use middlesim::{jbb_machine, measure, Effort, ExperimentPlan};
use probes::{Provenance, RunLog};

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("quick") => Effort::Quick,
        Some("full") => Effort::Full,
        _ => Effort::Standard,
    };
    // pset × seed, mixed sizes: the 4-way points cost ~4× the 1-way.
    let jobs: Vec<(usize, u64)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&p| (1..=2u64).map(move |s| (p, s)))
        .collect();
    let labels: Vec<String> = jobs
        .iter()
        .map(|&(p, s)| format!("jbb-p{p}-s{s}"))
        .collect();
    let log = Arc::new(RunLog::new());
    let run = |plan: &ExperimentPlan| {
        plan.run_probed(
            &jobs,
            |&(p, _)| effort.cost_hint(p),
            |&(p, s)| {
                let mut m = jbb_machine(p, 2 * p, s, effort);
                let report = measure(&mut m, effort);
                (report.throughput(), Some(m.counters()))
            },
        )
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "timing a {:?}-effort batch of {} windows at 1 vs {workers} workers...",
        effort,
        jobs.len()
    );

    let t0 = Instant::now();
    let serial = run(&ExperimentPlan::serial(effort)
        .with_run_log(Arc::clone(&log), "serial")
        .with_job_labels(labels.clone()));
    let serial_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = run(&ExperimentPlan::serial(effort)
        .with_threads(workers)
        .with_run_log(Arc::clone(&log), "parallel")
        .with_job_labels(labels));
    let parallel_secs = t1.elapsed().as_secs_f64();

    let identical = serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "parallel results diverged from serial");

    let speedup = serial_secs / parallel_secs.max(1e-9);
    println!("serial:   {serial_secs:.2} s");
    println!("parallel: {parallel_secs:.2} s  ({speedup:.2}x, results bit-identical)");

    let prov = Provenance::capture()
        .with_workers(workers)
        .with_effort(format!("{effort:?}").to_lowercase());
    let runlog_file = std::fs::File::create("RUNLOG_plan.jsonl").expect("create RUNLOG_plan.jsonl");
    log.write_to(runlog_file, &prov)
        .expect("write RUNLOG_plan.jsonl");
    println!("wrote RUNLOG_plan.jsonl ({} job spans)", log.span_count());

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"experiment_plan\",\n",
            "  \"provenance\": {},\n",
            "  \"effort\": \"{:?}\",\n",
            "  \"jobs\": {},\n",
            "  \"workers\": {},\n",
            "  \"serial_secs\": {:.3},\n",
            "  \"parallel_secs\": {:.3},\n",
            "  \"speedup\": {:.3},\n",
            "  \"bit_identical\": {}\n",
            "}}\n"
        ),
        prov.to_json(),
        effort,
        jobs.len(),
        workers,
        serial_secs,
        parallel_secs,
        speedup,
        identical
    );
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    println!("wrote BENCH_plan.json");
}
