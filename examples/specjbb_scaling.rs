//! SPECjbb throughput scaling (the paper's Figure 4, SPECjbb curve):
//! sweep the processor set from 1 to 12 and print speedups, CPI and the
//! execution-mode breakdown.
//!
//! Run with: `cargo run --release --example specjbb_scaling`

use middlesim::{jbb_machine, measure, Effort};

fn main() {
    let effort = Effort::Quick;
    let mut base = None;
    println!("  P     tput  speedup   CPI   user   sys  idle  gc-idle  c2c%");
    for p in [1usize, 2, 4, 8, 12] {
        // "Optimal warehouses at each system size": 2 per processor.
        let mut machine = jbb_machine(p, 2 * p, 1, effort);
        let r = measure(&mut machine, effort);
        let tput = r.throughput();
        let base = *base.get_or_insert(tput);
        println!(
            " {:>2} {:>8.0} {:>8.2} {:>5.2} {:>6.2} {:>5.2} {:>5.2} {:>8.2} {:>5.1}",
            p,
            tput,
            tput / base,
            r.cpi.cpi(),
            r.modes.user,
            r.modes.system,
            r.modes.idle,
            r.modes.gc_idle,
            r.c2c_ratio * 100.0
        );
    }
    println!("\nThe paper's shape: speedup levels off around 7 from ~10 processors,");
    println!("CPI grows ~33% (all of it data stall), idle time appears at scale.");
}
