//! Trace capture and replay through the observer seam: the paper's
//! Simics → Sumo pipeline (Section 3.3) as a two-line workflow.
//!
//! Captures a live SPECjbb window, replays it into a fresh memory
//! system, and shows the replay reproducing the live statistics exactly;
//! then filters the capture down to half the processors — the same
//! reduction the paper applies to isolate the application-server tier —
//! and replays both halves as one batch on the experiment plan.
//!
//! Run with: `cargo run --release --example trace_replay [archive.mtrc]`
//!
//! With a path argument the capture is also archived in the compact
//! on-disk format (`SystemTrace::write_to`), reloaded, and the replay
//! runs from the reloaded copy — the paper's capture-once, simulate-many
//! workflow.

use memsys::{Addr, AddrRange, SystemTrace};
use middlesim::engine::TraceObserver;
use middlesim::{replay_trace, replay_traces, Effort, ExperimentPlan, Machine, MachineConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

fn main() {
    let pset = 4;
    println!("capturing a SPECjbb window on {pset} processors...");
    let cfg = SpecJbbConfig::scaled(2 * pset, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let mc = MachineConfig::e6000(pset);
    let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
    let handle = m.attach_observer(TraceObserver::new());
    m.run_until(4 * MCYCLES);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + 8 * MCYCLES);

    let mut trace = m.observer(handle).trace().clone();
    let live = m.memory().stats().clone();
    println!(
        "captured {} references / {} instructions ({} in-window)",
        trace.refs(),
        trace.instructions(),
        trace.window_instructions()
    );

    // Optional archive step: write the capture to disk, reload it, and
    // replay from the reloaded copy.
    if let Some(path) = std::env::args().nth(1) {
        let file = std::fs::File::create(&path).expect("create trace archive");
        trace.write_to(file).expect("write trace archive");
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let reloaded = SystemTrace::read_from(std::fs::File::open(&path).expect("open archive"))
            .expect("read trace archive");
        assert_eq!(reloaded, trace, "disk round-trip must be the identity");
        println!(
            "archived to {path}: {bytes} bytes ({:.1} bytes/event vs 16 in memory); reload is identical",
            bytes as f64 / trace.len().max(1) as f64
        );
        trace = reloaded;
    }

    println!("replaying into a fresh memory system...");
    let replay = replay_trace(&trace, m.memory().config());
    println!(
        "live   window: {:>9} L2 data misses, {:>7} upgrades, {:>7} c2c",
        live.data().l2_misses,
        live.data().upgrades,
        live.data().c2c
    );
    println!(
        "replay window: {:>9} L2 data misses, {:>7} upgrades, {:>7} c2c",
        replay.stats.data().l2_misses,
        replay.stats.data().upgrades,
        replay.stats.data().c2c
    );
    assert_eq!(replay.stats, live);
    println!(
        "replay snoops: {:>9} sent, {:>9} filtered by the sharer directory ({:.1}%)",
        replay.bus.snoops_sent,
        replay.bus.snoops_filtered,
        replay.bus.snoop_filter_rate() * 100.0
    );
    println!("replay reproduces the live window bit-for-bit.\n");

    // The paper's filter: keep only a processor subset, replay the
    // reduced trace — here both halves, batched through the plan.
    let lo = trace.filtered_cpus(|cpu| cpu < pset / 2);
    let hi = trace.filtered_cpus(|cpu| cpu >= pset / 2);
    println!(
        "filtering to processor halves: {} + {} references",
        lo.refs(),
        hi.refs()
    );
    let plan = ExperimentPlan::new(Effort::Quick);
    let halves = replay_traces(&plan, &[lo, hi], m.memory().config());
    for (name, r) in ["low half", "high half"].iter().zip(&halves) {
        println!(
            "{name}: {:.2} data misses / 1000 instructions",
            r.data_miss_per_kilo()
        );
    }
    println!("\nThis is how the paper isolates the middle tier: capture the");
    println!("cluster, filter to the application server's processors, and");
    println!("study the reduced trace in the memory-system simulator.");
}
