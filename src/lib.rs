//! # java-middleware-memsim
//!
//! A full reproduction, in Rust, of *"Memory System Behavior of
//! Java-Based Middleware"* (Karlsson, Moore, Hagersten, Wood — HPCA
//! 2003): a simulated 16-processor Sun E6000, a HotSpot-1.3.1-like JVM
//! substrate, mechanistic models of the SPECjbb2000 and ECperf
//! (SPECjAppServer2001) benchmarks, and one experiment per measured
//! figure of the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`memsys`] — caches, MOESI snooping coherence, shared-L2 topologies;
//! - [`simcpu`] — the UltraSPARC-II-like CPI/stall timing model;
//! - [`jvm`] — heap, TLABs, single-threaded generational GC, monitors,
//!   code cache;
//! - [`sysos`] — processor sets, mode accounting, the kernel network
//!   path, the TLB/ISM model;
//! - [`workloads`] — the SPECjbb and ECperf models;
//! - [`simstats`] — summaries, the multi-seed variability methodology,
//!   CDFs, table rendering;
//! - [`middlesim`] — the machine engine and the figure experiments.
//!
//! ## Quickstart
//!
//! ```
//! use middlesim::{jbb_machine, measure, Effort};
//!
//! let mut machine = jbb_machine(2, 4, 1, Effort::Quick);
//! let report = measure(&mut machine, Effort::Quick);
//! assert!(report.transactions > 0);
//! println!("throughput: {:.0} tx/s, CPI {:.2}", report.throughput(), report.cpi.cpi());
//! ```

pub use jvm;
pub use memsys;
pub use middlesim;
pub use simcpu;
pub use simstats;
pub use sysos;
pub use workloads;
