#!/usr/bin/env bash
# The offline CI gate: everything here must pass with no network access.
#
# Usage: scripts/ci.sh
#
# The bench package (crates/bench) is deliberately excluded — it needs
# criterion, which cannot be resolved offline; build it from its own
# directory when online.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test -q (tier-1, offline)"
cargo test -q --offline

echo "==> cargo test --workspace -q (all crates, offline)"
cargo test --workspace -q --offline

echo "CI gate passed."
