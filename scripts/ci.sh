#!/usr/bin/env bash
# The offline CI gate: everything here must pass with no network access.
#
# Usage: scripts/ci.sh
#
# crates/bench sits inside the workspace on a dependency-free timing
# harness, so its cargo-bench targets build and run offline like
# everything else; the gate exercises one at smoke size below.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test -q (tier-1, offline)"
cargo test -q --offline

echo "==> cargo test --workspace -q (all crates, offline)"
cargo test --workspace -q --offline

echo "==> cargo bench smoke: substrate kernels on the in-workspace harness"
MIDDLESIM_BENCH_SAMPLES=2 MIDDLESIM_BENCH_SAMPLE_MS=5 \
    cargo bench -q --offline -p bench --bench substrates

echo "==> bench smoke (quick) + simreport over its RunLog"
scripts/bench_smoke.sh quick

# bench_smoke already ran `simreport --check`; render the machine-readable
# artifact CI uploads next to the BENCH jsons and prove the mpstat-style
# table renders from a real RunLog.
./target/release/simreport --csv RUNLOG_plan.jsonl > SIMREPORT_plan.csv
./target/release/simreport RUNLOG_plan.jsonl | grep -q "worker   jobs" \
    || { echo "simreport text report is missing the worker table"; exit 1; }
echo "==> SIMREPORT_plan.csv ($(wc -l < SIMREPORT_plan.csv) rows)"

echo "==> bandwidth-latency curve figure (quick) + simreport over its RunLog"
cargo build --release --offline -p middlesim --bin figures
./target/release/figures quick memcurve
./target/release/simreport --check RUNLOG_figures.jsonl
test -s MEMCURVE.csv || { echo "figures memcurve did not write MEMCURVE.csv"; exit 1; }
head -1 MEMCURVE.csv | grep -q "write_pct,load_permille,mean_latency" \
    || { echo "MEMCURVE.csv is missing its header row"; exit 1; }
echo "==> MEMCURVE.csv ($(wc -l < MEMCURVE.csv) rows)"

# The figures binary rewrites RUNLOG_figures.jsonl on every invocation,
# so the curve's log is checked above before figure 10 regenerates it.
# Figure 10 and the cycle-attribution profile share one invocation: the
# combined RunLog is what rebaseline.sh aggregates, so the drift gate
# below covers the attrib counters too. `--check` cross-validates every
# attrib record stream against its span's `attrib.cycles` counter.
echo "==> figure 10 trace + cycle attribution + simreport over the combined RunLog"
./target/release/figures quick 10 attrib
./target/release/simreport --check RUNLOG_figures.jsonl
./target/release/simreport --simstat RUNLOG_figures.jsonl | grep -q "intervals x" \
    || { echo "simstat view is missing the interval table"; exit 1; }
./target/release/simreport --simstat-csv RUNLOG_figures.jsonl > SIMSTAT_figures.csv
echo "==> SIMSTAT_figures.csv ($(wc -l < SIMSTAT_figures.csv) rows)"

# The attribution artifacts CI uploads: the CPI-stack table must carry
# the paper's GC/mutator split, the CSV is the machine-readable
# companion, and the folded stacks feed inferno / flamegraph.pl /
# speedscope directly.
echo "==> cycle-attribution artifacts: CPI-stack CSV + folded stacks"
./target/release/simreport --attrib RUNLOG_figures.jsonl | grep -q "cycles attributed" \
    || { echo "attrib view is missing the CPI-stack table"; exit 1; }
./target/release/simreport --attrib-csv RUNLOG_figures.jsonl > ATTRIB_figures.csv
head -1 ATTRIB_figures.csv | grep -q "run,phase,component,cause,region,cycles,share_pct" \
    || { echo "ATTRIB_figures.csv is missing its header row"; exit 1; }
./target/release/simreport --folded RUNLOG_figures.jsonl > ATTRIB_figures.folded
grep -q "^gc;" ATTRIB_figures.folded || { echo "folded stacks lack the GC phase"; exit 1; }
grep -q "^mutator;" ATTRIB_figures.folded || { echo "folded stacks lack the mutator phase"; exit 1; }
echo "==> ATTRIB_figures.csv ($(wc -l < ATTRIB_figures.csv) rows), ATTRIB_figures.folded ($(wc -l < ATTRIB_figures.folded) stacks)"

# The run observatory: export the figure-10 RunLog as a Chrome-trace
# timeline (the artifact CI uploads for Perfetto), then gate its
# counters against the committed baseline. The drift gate is blocking:
# every counter is simulated and deterministic, so out-of-band drift
# means a code change silently shifted simulation results. Refresh the
# baseline deliberately with scripts/rebaseline.sh.
echo "==> run observatory: Chrome-trace export + drift gate vs committed baseline"
./target/release/simreport --trace TRACE_figures.json RUNLOG_figures.jsonl
test -s TRACE_figures.json || { echo "simreport --trace did not write TRACE_figures.json"; exit 1; }
./target/release/simdiff --baseline BASELINES.json RUNLOG_figures.jsonl | tee DRIFT_figures.txt
# The machine-readable twin for PR annotations (same verdict and rank).
./target/release/simdiff --json --baseline BASELINES.json RUNLOG_figures.jsonl > DRIFT_figures.json
grep -q '"ok": true' DRIFT_figures.json || { echo "DRIFT_figures.json verdict is not ok"; exit 1; }

# The sampled spine's correctness claim is measured, not assumed: the
# differential matrix runs each config every-cycle and sampled, and the
# binary exits non-zero if any metric breaks the error bound. The
# sampled unit schedules land in the RunLog, which must still pass the
# simreport schema check (sample_unit records included).
echo "==> sampled-vs-full differential validation (quick)"
./target/release/figures quick validate-sampled
test -s SAMPLED_VALIDATION.csv || { echo "figures validate-sampled did not write SAMPLED_VALIDATION.csv"; exit 1; }
head -1 SAMPLED_VALIDATION.csv | grep -q "config,metric,full,sampled" \
    || { echo "SAMPLED_VALIDATION.csv is missing its header row"; exit 1; }
./target/release/simreport --check RUNLOG_figures.jsonl
echo "==> SAMPLED_VALIDATION.csv ($(wc -l < SAMPLED_VALIDATION.csv) rows)"

echo "CI gate passed."
