#!/usr/bin/env bash
# Offline bench smoke: time one Standard-effort experiment-plan batch at
# 1 worker vs all cores (BENCH_plan.json + RUNLOG_plan.jsonl), then the
# raw MemorySystem::access throughput bench across CPU-count shapes
# (BENCH_memsys.json). Both BENCH jsons carry host/commit provenance;
# the RunLog is schema-checked and rendered with simreport.
#
# Usage: scripts/bench_smoke.sh [quick|standard|full] [--gate]
#
# Pass `quick` for a fast sanity run (CI-sized); the default Standard
# batch is the number the ROADMAP's bench item tracks.
#
# After the fresh run, both BENCH jsons are diffed against the versions
# committed at HEAD. The diff only engages when the provenance block says
# the baseline came from the same host class (hostname + cpu_count);
# numbers from a different machine are not comparable and are skipped
# with a note. A >20% regression (refs/sec down, or serial batch time
# up) prints a loud WARNING banner. By default that is advisory —
# benches on shared hosts are too noisy to hard-gate merges on — but
# with `--gate` the script exits non-zero on any warning, for the
# separate non-blocking CI perf job. Skipped diffs (no baseline, or a
# host-class mismatch) never trip the gate: they carry no signal.
set -euo pipefail
cd "$(dirname "$0")/.."

effort="standard"
gate=0
for arg in "$@"; do
    case "${arg}" in
    --gate) gate=1 ;;
    quick | standard | full) effort="${arg}" ;;
    *)
        echo "unknown argument: ${arg}" >&2
        echo "usage: scripts/bench_smoke.sh [quick|standard|full] [--gate]" >&2
        exit 2
        ;;
    esac
done

echo "==> building the bench examples and simreport (offline, release)"
cargo build --release --offline --example bench_plan --example bench_memsys
cargo build --release --offline -p middlesim --bin simreport

echo "==> running the plan bench at effort: ${effort}"
./target/release/examples/bench_plan "${effort}"

echo "==> BENCH_plan.json"
cat BENCH_plan.json

echo "==> simreport --check RUNLOG_plan.jsonl"
./target/release/simreport --check RUNLOG_plan.jsonl

echo "==> simreport RUNLOG_plan.jsonl"
./target/release/simreport RUNLOG_plan.jsonl

echo "==> running the memsys access bench at effort: ${effort}"
./target/release/examples/bench_memsys "${effort}"

echo "==> BENCH_memsys.json"
cat BENCH_memsys.json

echo "==> diffing fresh BENCH jsons against the baselines committed at HEAD"
mkdir -p target/bench-baseline
warn_log="target/bench-baseline/warnings.txt"
: > "${warn_log}"

# Pulls "hostname <space> cpu_count <space> effort" out of a BENCH
# json — the triple that decides whether two runs are comparable. The
# effort comes from the provenance line when recorded there (lowercase),
# falling back to a top-level "effort" field, else "unknown"; an
# unknown-effort baseline predates effort provenance and is skipped.
host_class() {
    awk '
        /"provenance"/ && !seen {
            seen = 1
            match($0, /"hostname":"[^"]*"/)
            h = substr($0, RSTART + 12, RLENGTH - 13)
            match($0, /"cpu_count":[0-9]+/)
            c = substr($0, RSTART + 12, RLENGTH - 12)
            if (match($0, /"effort":"[^"]*"/))
                e = tolower(substr($0, RSTART + 10, RLENGTH - 11))
        }
        !e && /^  "effort"/ && match($0, /: "[^"]*"/) {
            e = tolower(substr($0, RSTART + 3, RLENGTH - 4))
        }
        END { print h, c, (e ? e : "unknown") }
    ' "$1"
}

for f in BENCH_memsys.json BENCH_plan.json; do
    base="target/bench-baseline/${f}"
    if ! git show "HEAD:${f}" > "${base}" 2>/dev/null; then
        echo "    no committed baseline for ${f} — skipping its diff"
        continue
    fi
    if [ "$(host_class "${base}")" != "$(host_class "${f}")" ]; then
        echo "    ${f}: baseline class ($(host_class "${base}")) differs from" \
             "this run ($(host_class "${f}")) — numbers not comparable, skipping"
        continue
    fi
    case "${f}" in
    BENCH_memsys.json)
        # Per-shape throughput: each shape is one line carrying both the
        # name and its refs_per_sec, in both files.
        awk '
            FNR == 1 { file++ }
            /"refs_per_sec"/ {
                match($0, /"name": "[^"]*"/)
                name = substr($0, RSTART + 9, RLENGTH - 10)
                match($0, /"refs_per_sec": [0-9]+/)
                rps = substr($0, RSTART + 16, RLENGTH - 16) + 0
                if (file == 1) base[name] = rps
                else if (name in base && rps < 0.8 * base[name])
                    printf "memsys %s: %d refs/s vs baseline %d (-%.0f%%)\n",
                           name, rps, base[name], (1 - rps / base[name]) * 100
            }' "${base}" "${f}" >> "${warn_log}"
        ;;
    BENCH_plan.json)
        # Whole-batch serial wall time: lower is better, so a regression
        # is the fresh run taking >20% longer.
        awk '
            FNR == 1 { file++ }
            /"serial_secs"/ {
                match($0, /[0-9.]+/)
                v = substr($0, RSTART, RLENGTH) + 0
                if (file == 1) base = v
                else if (base > 0 && v > 1.2 * base)
                    printf "plan serial_secs: %.3fs vs baseline %.3fs (+%.0f%%)\n",
                           v, base, (v / base - 1) * 100
            }' "${base}" "${f}" >> "${warn_log}"
        ;;
    esac
done

if [ -s "${warn_log}" ]; then
    echo
    echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
    echo "!!! BENCH REGRESSION WARNING: >20% worse than the committed baseline"
    sed 's/^/!!!   /' "${warn_log}"
    echo "!!! Re-run scripts/bench_smoke.sh standard on a quiet host to"
    echo "!!! confirm, then recommit the BENCH jsons if the change is real"
    echo "!!! and intended."
    echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
    if [ "${gate}" = 1 ]; then
        echo "--gate: failing on the regression warnings above."
        exit 1
    fi
else
    echo "    fresh numbers are within 20% of the committed baselines."
fi
