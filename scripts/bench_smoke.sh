#!/usr/bin/env bash
# Offline bench smoke: time one Standard-effort experiment-plan batch at
# 1 worker vs all cores (BENCH_plan.json + RUNLOG_plan.jsonl), then the
# raw MemorySystem::access throughput bench across CPU-count shapes
# (BENCH_memsys.json). Both BENCH jsons carry host/commit provenance;
# the RunLog is schema-checked and rendered with simreport.
#
# Usage: scripts/bench_smoke.sh [quick|standard|full]
#
# Pass `quick` for a fast sanity run (CI-sized); the default Standard
# batch is the number the ROADMAP's bench item tracks.
set -euo pipefail
cd "$(dirname "$0")/.."

effort="${1:-standard}"

echo "==> building the bench examples and simreport (offline, release)"
cargo build --release --offline --example bench_plan --example bench_memsys
cargo build --release --offline -p middlesim --bin simreport

echo "==> running the plan bench at effort: ${effort}"
./target/release/examples/bench_plan "${effort}"

echo "==> BENCH_plan.json"
cat BENCH_plan.json

echo "==> simreport --check RUNLOG_plan.jsonl"
./target/release/simreport --check RUNLOG_plan.jsonl

echo "==> simreport RUNLOG_plan.jsonl"
./target/release/simreport RUNLOG_plan.jsonl

echo "==> running the memsys access bench at effort: ${effort}"
./target/release/examples/bench_memsys "${effort}"

echo "==> BENCH_memsys.json"
cat BENCH_memsys.json
