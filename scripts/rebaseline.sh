#!/usr/bin/env bash
# Refresh the committed drift-gate baseline.
#
# Usage: scripts/rebaseline.sh
#
# Regenerates the quick-effort figure-10 + cycle-attribution RunLog
# (the same combined run scripts/ci.sh gates) and aggregates it into
# BASELINES.json — attribution roll-up counters included. Run this
# deliberately — after a change that is *supposed* to shift simulation
# results — then review `git diff BASELINES.json` and commit the new
# numbers alongside the change that explains them.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p middlesim --bin figures --bin simdiff
./target/release/figures quick 10 attrib
./target/release/simdiff --write-baseline BASELINES.json RUNLOG_figures.jsonl
echo "BASELINES.json refreshed — review 'git diff BASELINES.json' before committing."
