#!/usr/bin/env bash
# Appends the latest standard-effort figure tables to EXPERIMENTS.md.
# Usage: scripts/append_tables.sh [figures_standard.txt]
set -euo pipefail
src="${1:-figures_standard.txt}"
out="EXPERIMENTS.md"
# Drop anything after the raw-output marker, then re-append.
marker="## Raw standard-effort output"
if grep -q "$marker" "$out"; then
  sed -i "/^$marker/,\$d" "$out"
fi
{
  echo "$marker"
  echo
  echo '```'
  cat "$src"
  echo '```'
} >> "$out"
echo "appended $(wc -l < "$src") lines from $src"
