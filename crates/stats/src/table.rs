//! ASCII table rendering for experiment output.
//!
//! Every figure-regeneration harness prints its series as a plain-text
//! table with the same rows the paper's figure plots, so the shapes can be
//! compared directly from terminal output (and pasted into
//! EXPERIMENTS.md).

use std::fmt;

/// A simple right-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_of(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float tersely (3 significant-ish decimals).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats bytes in natural units.
pub fn fbytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{} KB", b >> 10)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown_like_table() {
        let mut t = Table::new("Figure X", &["P", "speedup"]);
        t.row(&["1".into(), "1.00".into()]);
        t.row(&["16".into(), "9.75".into()]);
        let s = t.to_string();
        assert!(s.contains("## Figure X"));
        assert!(s.contains("|  P | speedup |"));
        assert!(s.contains("| 16 |    9.75 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234), "0.1234");
        assert_eq!(fnum(3.178), "3.18");
        assert_eq!(fnum(1234.5), "1234");
    }

    #[test]
    fn fbytes_uses_natural_units() {
        assert_eq!(fbytes(512), "512 B");
        assert_eq!(fbytes(2048), "2 KB");
        assert_eq!(fbytes(3 << 20), "3.0 MB");
        assert_eq!(fbytes(3 << 30), "3.00 GB");
    }
}
