//! # simstats — measurement methodology
//!
//! Statistics utilities shared by the experiment harness:
//!
//! - [`summary::Summary`] — streaming mean / standard deviation (the
//!   error bars on every figure);
//! - [`variability`] — the Alameldeen–Wood multi-run methodology the
//!   paper adopts for multithreaded-workload variability (Section 3.3);
//! - [`cdf::Cdf`] — cumulative distributions (Figures 14/15);
//! - [`table`] — plain-text series rendering for figure regeneration;
//! - [`extrapolate`] — stratified estimates with confidence intervals
//!   for sampled simulation.

pub mod cdf;
pub mod extrapolate;
pub mod summary;
pub mod table;
pub mod variability;

pub use cdf::Cdf;
pub use extrapolate::{stratified, weighted_mean, Estimate, Stratum};
pub use summary::Summary;
pub use table::{fbytes, fnum, Table};
pub use variability::{run_seeds, run_seeds_vec};
