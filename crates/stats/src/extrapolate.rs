//! Stratified extrapolation for sampled simulation.
//!
//! A sampled run partitions the measurement window into fixed-cycle
//! units, clusters the units by memory-access signature, and simulates
//! only a few representatives per cluster in detail. This module turns
//! those per-unit measurements back into whole-window estimates: each
//! cluster is a stratum weighted by its population, the measured units
//! are the within-stratum sample, and the estimate is the classic
//! stratified mean with a normal-approximation confidence interval.
//!
//! Everything here is deterministic: strata are processed in input
//! order, sums are accumulated in that order, and no randomness is
//! consumed — the same inputs produce bit-identical estimates on every
//! run, which the plan runner's determinism contract requires.

/// One stratum (signature cluster) of a sampled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Stratum {
    /// The stratum's share of the whole window (cluster population /
    /// total units). Weights need not sum to 1; they are normalized
    /// over the *measured* strata, which also imputes any unmeasured
    /// stratum with the measured-population mean.
    pub weight: f64,
    /// The per-unit measurements taken inside this stratum (empty if
    /// the cluster was never simulated in detail).
    pub values: Vec<f64>,
}

impl Stratum {
    /// A stratum with `weight` and sampled `values`.
    pub fn new(weight: f64, values: Vec<f64>) -> Self {
        Stratum { weight, values }
    }

    fn mean(&self) -> f64 {
        let n = self.values.len();
        if n == 0 {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / n as f64
    }

    /// Unbiased sample variance (0 when fewer than two samples).
    fn var(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64
    }
}

/// A point estimate with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The stratified point estimate.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (`mean ± ci_half`).
    pub ci_half: f64,
    /// Total measured samples behind the estimate.
    pub samples: usize,
    /// Strata that contributed at least one measurement.
    pub measured_strata: usize,
}

impl Estimate {
    /// Lower edge of the 95% interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci_half
    }

    /// Upper edge of the 95% interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci_half
    }

    /// CI half-width relative to the mean (0 when the mean is 0).
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci_half / self.mean.abs()
        }
    }
}

/// z-score of the two-sided 95% normal interval.
const Z95: f64 = 1.96;

/// Weighted mean of `(weight, value)` pairs, in input order. Returns 0
/// when the total weight is 0.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> f64 {
    let mut wsum = 0.0;
    let mut acc = 0.0;
    for &(w, v) in pairs {
        wsum += w;
        acc += w * v;
    }
    if wsum == 0.0 {
        0.0
    } else {
        acc / wsum
    }
}

/// The stratified estimator.
///
/// The point estimate is `Σ w'_c · mean_c` over measured strata, where
/// `w'_c` renormalizes the measured strata's weights to 1 — which is
/// exactly the estimator that imputes every *unmeasured* stratum with
/// the measured-population mean (unmeasured strata are expected to be
/// rare: unit selection measures every discovered cluster at least
/// once).
///
/// The variance is `Σ w'_c² · σ_c² / n_c`. Singleton strata
/// (`n_c == 1`) have no within-stratum variance estimate; they borrow
/// the weighted pooled variance of the multi-sample strata, or — when
/// every stratum is a singleton — the variance *across* the singleton
/// means, a conservative stand-in that keeps the interval honest
/// instead of collapsing it to zero.
pub fn stratified(strata: &[Stratum]) -> Estimate {
    let measured: Vec<&Stratum> = strata
        .iter()
        .filter(|s| !s.values.is_empty() && s.weight > 0.0)
        .collect();
    let samples: usize = measured.iter().map(|s| s.values.len()).sum();
    if measured.is_empty() {
        return Estimate {
            mean: 0.0,
            ci_half: 0.0,
            samples: 0,
            measured_strata: 0,
        };
    }

    let wsum: f64 = measured.iter().map(|s| s.weight).sum();
    let mean: f64 = measured.iter().map(|s| s.weight * s.mean()).sum::<f64>() / wsum;

    // Pooled variance over the strata that can estimate one.
    let mut pooled_w = 0.0;
    let mut pooled = 0.0;
    for s in &measured {
        if s.values.len() >= 2 {
            pooled_w += s.weight;
            pooled += s.weight * s.var();
        }
    }
    let fallback = if pooled_w > 0.0 {
        pooled / pooled_w
    } else {
        // All singletons: the spread of the singleton means.
        let vals: Vec<f64> = measured.iter().map(|s| s.mean()).collect();
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        if vals.len() < 2 {
            0.0
        } else {
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (vals.len() - 1) as f64
        }
    };

    let mut var = 0.0;
    for s in &measured {
        let w = s.weight / wsum;
        let n = s.values.len() as f64;
        let sv = if s.values.len() >= 2 {
            s.var()
        } else {
            fallback
        };
        var += w * w * sv / n;
    }

    Estimate {
        mean,
        ci_half: Z95 * var.sqrt(),
        samples,
        measured_strata: measured.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator so the tests are seeded without
    /// external dependencies (SplitMix64 step).
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A sample centered on `mid` with spread `half`.
        fn around(&mut self, mid: f64, half: f64) -> f64 {
            mid + (self.next() * 2.0 - 1.0) * half
        }
    }

    #[test]
    fn weighted_mean_matches_hand_computation() {
        let pairs = [(1.0, 10.0), (3.0, 20.0)];
        assert!((weighted_mean(&pairs) - 17.5).abs() < 1e-12);
        assert_eq!(weighted_mean(&[]), 0.0);
    }

    #[test]
    fn stratified_mean_weights_clusters_by_population() {
        // Two strata with exactly known means: 80% of the window at
        // 2.0, 20% at 10.0 -> 3.6.
        let strata = [
            Stratum::new(0.8, vec![2.0, 2.0, 2.0]),
            Stratum::new(0.2, vec![10.0, 10.0]),
        ];
        let e = stratified(&strata);
        assert!((e.mean - 3.6).abs() < 1e-12, "mean = {}", e.mean);
        assert_eq!(e.samples, 5);
        assert_eq!(e.measured_strata, 2);
        // Zero within-stratum variance -> zero-width interval.
        assert_eq!(e.ci_half, 0.0);
    }

    #[test]
    fn unmeasured_stratum_is_imputed_with_the_measured_mean() {
        // The unmeasured 50% stratum takes the measured strata's
        // weighted mean, so the estimate equals that mean.
        let strata = [
            Stratum::new(0.25, vec![4.0]),
            Stratum::new(0.25, vec![8.0]),
            Stratum::new(0.50, vec![]),
        ];
        let e = stratified(&strata);
        assert!((e.mean - 6.0).abs() < 1e-12);
        assert_eq!(e.measured_strata, 2);
    }

    #[test]
    fn ci_width_shrinks_with_sample_count() {
        // Seeded noise around a fixed center: quadrupling the sample
        // count should roughly halve the interval, and must strictly
        // shrink it at every step.
        let width = |n: usize, seed: u64| {
            let mut g = Gen(seed);
            let vals: Vec<f64> = (0..n).map(|_| g.around(100.0, 10.0)).collect();
            let e = stratified(&[Stratum::new(1.0, vals)]);
            assert!((e.mean - 100.0).abs() < 10.0);
            e.ci_half
        };
        let (w4, w16, w64) = (width(4, 7), width(16, 7), width(64, 7));
        assert!(w4 > w16 && w16 > w64, "widths {w4} {w16} {w64}");
        // ~1/sqrt(n): 16x the samples is ~4x narrower, allow slack for
        // the seeded draw.
        assert!(w4 / w64 > 2.0, "w4={w4} w64={w64}");
    }

    #[test]
    fn degenerate_one_cluster_reduces_to_the_simple_mean() {
        let mut g = Gen(42);
        let vals: Vec<f64> = (0..32).map(|_| g.around(5.0, 1.0)).collect();
        let plain = vals.iter().sum::<f64>() / vals.len() as f64;
        let e = stratified(&[Stratum::new(1.0, vals)]);
        assert!((e.mean - plain).abs() < 1e-12);
        assert!(e.ci_half > 0.0);
        assert!(e.relative_ci() < 0.25);
        assert!(e.lo() < plain && plain < e.hi());
    }

    #[test]
    fn single_sample_yields_a_point_not_a_lie() {
        // One unit, one cluster: no variance information at all — the
        // interval is honest about being unknown-width (0 here) rather
        // than invented.
        let e = stratified(&[Stratum::new(1.0, vec![7.0])]);
        assert_eq!(e.mean, 7.0);
        assert_eq!(e.ci_half, 0.0);
        assert_eq!(e.samples, 1);
    }

    #[test]
    fn all_singleton_strata_borrow_cross_stratum_spread() {
        // Three clusters measured once each: the interval must reflect
        // the spread across them instead of collapsing to zero.
        let strata = [
            Stratum::new(0.4, vec![10.0]),
            Stratum::new(0.3, vec![14.0]),
            Stratum::new(0.3, vec![6.0]),
        ];
        let e = stratified(&strata);
        assert!(e.ci_half > 0.0, "singleton strata must not claim certainty");
    }

    #[test]
    fn estimates_are_bit_deterministic() {
        let mut g = Gen(9);
        let strata: Vec<Stratum> = (0..4)
            .map(|i| {
                let vals = (0..8).map(|_| g.around(50.0 + i as f64, 3.0)).collect();
                Stratum::new(0.25, vals)
            })
            .collect();
        let a = stratified(&strata);
        let b = stratified(&strata);
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.ci_half.to_bits(), b.ci_half.to_bits());
    }
}
