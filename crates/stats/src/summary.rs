//! Streaming mean / standard deviation (Welford's algorithm).

use std::fmt;

/// A running summary of samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean(), self.stddev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.n(), 0);
    }

    #[test]
    fn known_mean_and_stddev() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev with n-1: sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn display_formats_mean_and_error() {
        let s: Summary = [1.0, 3.0].into_iter().collect();
        assert_eq!(s.to_string(), "2.000 ± 1.414");
    }

    #[test]
    fn extend_matches_push() {
        let mut a = Summary::new();
        a.extend([1.0, 2.0, 3.0]);
        let b: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.stddev() - b.stddev()).abs() < 1e-12);
    }
}
