//! Cumulative distributions for the communication-footprint figures.
//!
//! Figures 14 and 15 plot the cumulative share of cache-to-cache
//! transfers against, respectively, the percentage of touched cache lines
//! and the absolute number of lines (semi-log). [`Cdf`] builds that curve
//! from per-line transfer counts sorted hottest-first.

/// A cumulative distribution over hottest-first per-line counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    /// Cumulative share (0..=1] after including line `i`.
    cumulative: Vec<f64>,
    total: u64,
}

impl Cdf {
    /// Builds a CDF from per-line counts sorted descending.
    ///
    /// # Panics
    ///
    /// Panics if the counts are not sorted descending.
    pub fn from_counts_desc(counts: &[u64]) -> Self {
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "counts must be sorted descending"
        );
        let total: u64 = counts.iter().sum();
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for &c in counts {
            acc += c;
            cumulative.push(if total == 0 {
                0.0
            } else {
                acc as f64 / total as f64
            });
        }
        Cdf { cumulative, total }
    }

    /// Number of contributing lines.
    pub fn lines(&self) -> usize {
        self.cumulative.len()
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Share contributed by the hottest `n` lines.
    pub fn share_of_hottest(&self, n: usize) -> f64 {
        if n == 0 || self.cumulative.is_empty() {
            0.0
        } else {
            self.cumulative[n.min(self.cumulative.len()) - 1]
        }
    }

    /// Lines needed to reach a cumulative `share` (0..=1).
    pub fn lines_for_share(&self, share: f64) -> usize {
        self.cumulative.partition_point(|&c| c < share) + 1
    }

    /// Samples the curve at `points` log-spaced line counts — the
    /// Figure 15 series `(lines, share)`.
    pub fn log_spaced_series(&self, points: usize) -> Vec<(usize, f64)> {
        if self.cumulative.is_empty() || points == 0 {
            return Vec::new();
        }
        let max = self.cumulative.len() as f64;
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let f = (max.ln() * (i as f64 + 1.0) / points as f64).exp();
            let n = (f.round() as usize).clamp(1, self.cumulative.len());
            out.push((n, self.share_of_hottest(n)));
        }
        out.dedup_by_key(|p| p.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_accumulate_to_one() {
        let cdf = Cdf::from_counts_desc(&[50, 30, 20]);
        assert!((cdf.share_of_hottest(1) - 0.5).abs() < 1e-12);
        assert!((cdf.share_of_hottest(2) - 0.8).abs() < 1e-12);
        assert!((cdf.share_of_hottest(3) - 1.0).abs() < 1e-12);
        assert!((cdf.share_of_hottest(10) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.share_of_hottest(0), 0.0);
    }

    #[test]
    fn lines_for_share_inverts_share() {
        let cdf = Cdf::from_counts_desc(&[50, 30, 20]);
        assert_eq!(cdf.lines_for_share(0.5), 1);
        assert_eq!(cdf.lines_for_share(0.7), 2);
        assert_eq!(cdf.lines_for_share(0.95), 3);
    }

    #[test]
    fn empty_cdf_is_harmless() {
        let cdf = Cdf::from_counts_desc(&[]);
        assert_eq!(cdf.lines(), 0);
        assert_eq!(cdf.share_of_hottest(5), 0.0);
        assert!(cdf.log_spaced_series(10).is_empty());
    }

    #[test]
    fn log_series_is_monotonic() {
        let counts: Vec<u64> = (1..=1000u64).rev().collect();
        let cdf = Cdf::from_counts_desc(&counts);
        let series = cdf.log_spaced_series(20);
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn unsorted_counts_panic() {
        let _ = Cdf::from_counts_desc(&[1, 5]);
    }
}
