//! The Alameldeen–Wood variability methodology.
//!
//! The paper (Section 3.3) adopts the methodology of Alameldeen & Wood
//! [HPCA 2003] to account for the inherent run-to-run variability of
//! multithreaded commercial workloads: each configuration is simulated
//! several times with perturbed (here: differently seeded) runs, and
//! results are reported as means with error bars rather than single
//! samples.

use crate::summary::Summary;

/// Runs `measure` once per seed and summarizes the resulting metric.
///
/// # Examples
///
/// ```
/// use simstats::variability::run_seeds;
///
/// let s = run_seeds(5, |seed| (seed % 3) as f64);
/// assert_eq!(s.n(), 5);
/// ```
pub fn run_seeds(seeds: u64, mut measure: impl FnMut(u64) -> f64) -> Summary {
    let mut summary = Summary::new();
    for seed in 0..seeds {
        summary.push(measure(seed));
    }
    summary
}

/// Runs `measure` once per seed for a *vector* of metrics, summarizing
/// each position independently (one experiment producing a whole curve).
///
/// # Panics
///
/// Panics if `measure` returns vectors of differing lengths.
pub fn run_seeds_vec(seeds: u64, mut measure: impl FnMut(u64) -> Vec<f64>) -> Vec<Summary> {
    let mut summaries: Vec<Summary> = Vec::new();
    for seed in 0..seeds {
        let values = measure(seed);
        if summaries.is_empty() {
            summaries = vec![Summary::new(); values.len()];
        }
        assert_eq!(
            summaries.len(),
            values.len(),
            "metric vector length changed between seeds"
        );
        for (s, v) in summaries.iter_mut().zip(values) {
            s.push(v);
        }
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seeds_aggregates_all_runs() {
        let s = run_seeds(4, |seed| seed as f64);
        assert_eq!(s.n(), 4);
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn run_seeds_vec_summarizes_positionwise() {
        let out = run_seeds_vec(3, |seed| vec![seed as f64, 10.0]);
        assert_eq!(out.len(), 2);
        assert!((out[0].mean() - 1.0).abs() < 1e-12);
        assert!((out[1].mean() - 10.0).abs() < 1e-12);
        assert_eq!(out[1].stddev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length changed")]
    fn changing_vector_length_panics() {
        let _ = run_seeds_vec(2, |seed| vec![0.0; 1 + seed as usize]);
    }
}
