//! Property-based verification of the statistics utilities.

use proptest::prelude::*;
use simstats::{Cdf, Summary};

proptest! {
    /// Welford matches the naive two-pass mean and (n-1) stddev.
    #[test]
    fn summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.stddev() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()));
        }
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// CDFs are monotone, bounded by 1, and share/lines round-trip.
    #[test]
    fn cdf_is_monotone_and_invertible(mut counts in prop::collection::vec(1u64..1000, 1..100)) {
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let cdf = Cdf::from_counts_desc(&counts);
        let mut prev = 0.0;
        for i in 1..=counts.len() {
            let share = cdf.share_of_hottest(i);
            prop_assert!(share >= prev - 1e-12);
            prop_assert!(share <= 1.0 + 1e-12);
            prev = share;
        }
        prop_assert!((cdf.share_of_hottest(counts.len()) - 1.0).abs() < 1e-9);
        // Round trip: the lines needed for a share actually reach it.
        for &target in &[0.25, 0.5, 0.9] {
            let lines = cdf.lines_for_share(target);
            prop_assert!(cdf.share_of_hottest(lines) >= target - 1e-9);
        }
    }
}
