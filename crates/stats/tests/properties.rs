//! Randomized verification of the statistics utilities, driven by the
//! in-tree seeded PRNG so every run exercises the same cases.

use prng::SimRng;
use simstats::{Cdf, Summary};

/// Welford matches the naive two-pass mean and (n-1) stddev.
#[test]
fn summary_matches_naive() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n_items = rng.gen_range(1..200usize);
        let xs: Vec<f64> = (0..n_items).map(|_| (rng.gen_f64() - 0.5) * 2e6).collect();
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        assert!(
            (s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "seed {seed}: mean {} vs naive {mean}",
            s.mean()
        );
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            assert!(
                (s.stddev() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()),
                "seed {seed}: stddev {} vs naive {}",
                s.stddev(),
                var.sqrt()
            );
        }
        assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(
            s.max(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
    }
}

/// CDFs are monotone, bounded by 1, and share/lines round-trip.
#[test]
fn cdf_is_monotone_and_invertible() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n_counts = rng.gen_range(1..100usize);
        let mut counts: Vec<u64> = (0..n_counts).map(|_| rng.gen_range(1..1000u64)).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let cdf = Cdf::from_counts_desc(&counts);
        let mut prev = 0.0;
        for i in 1..=counts.len() {
            let share = cdf.share_of_hottest(i);
            assert!(share >= prev - 1e-12, "seed {seed}: share fell at {i}");
            assert!(share <= 1.0 + 1e-12, "seed {seed}: share above 1 at {i}");
            prev = share;
        }
        assert!((cdf.share_of_hottest(counts.len()) - 1.0).abs() < 1e-9);
        // Round trip: the lines needed for a share actually reach it.
        for &target in &[0.25, 0.5, 0.9] {
            let lines = cdf.lines_for_share(target);
            assert!(
                cdf.share_of_hottest(lines) >= target - 1e-9,
                "seed {seed}: {lines} lines miss share {target}"
            );
        }
    }
}
