//! Randomized verification of the heap and collector, driven by the
//! in-tree seeded PRNG so every run exercises the same cases.

use jvm::alloc::Tlab;
use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::{Lifetime, ObjectId};
use memsys::{Addr, AddrRange, CountingSink};
use prng::SimRng;

fn small_heap() -> Heap {
    Heap::new(
        HeapConfig {
            geometry: HeapGeometry {
                eden: 256 << 10,
                survivor: 64 << 10,
                old: 1 << 20,
            },
            tenure_age: 1,
            tlab_bytes: 8 << 10,
        },
        AddrRange::new(Addr(0x4000_0000), 8 << 20),
    )
}

/// One randomized heap operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    AllocEphemeral(u16),
    AllocSession(u16, u8),
    AllocPermanent(u16),
    FreeOldest,
    AdvanceEpoch(u8),
    MinorGc,
    MajorGc,
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0..7u32) {
        0 => Op::AllocEphemeral(rng.gen_range(32..2048u16)),
        1 => Op::AllocSession(rng.gen_range(32..1024u16), rng.gen_range(1..40u8)),
        2 => Op::AllocPermanent(rng.gen_range(32..1024u16)),
        3 => Op::FreeOldest,
        4 => Op::AdvanceEpoch(rng.gen_range(1..8u8)),
        5 => Op::MinorGc,
        _ => Op::MajorGc,
    }
}

/// Under arbitrary operation sequences: live permanent objects survive
/// every collection, their address ranges stay disjoint, and heap
/// occupancy never exceeds the configured spaces.
#[test]
fn gc_preserves_live_objects() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(1..120usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let mut heap = small_heap();
        let mut tlab = Tlab::new();
        let mut sink = CountingSink::new();
        let mut live_permanent: Vec<ObjectId> = Vec::new();

        for &op in &ops {
            match op {
                Op::AllocEphemeral(size) => {
                    if tlab
                        .alloc(&mut heap, size as u32, Lifetime::Ephemeral, &mut sink)
                        .ok()
                        .is_some()
                    {
                        // ephemeral: forgotten immediately
                    } else {
                        tlab.retire();
                        heap.minor_gc(&mut sink);
                    }
                }
                Op::AllocSession(size, epochs) => {
                    let lt = Lifetime::Session {
                        expires_epoch: heap.epoch() + epochs as u64,
                    };
                    if tlab
                        .alloc(&mut heap, size as u32, lt, &mut sink)
                        .ok()
                        .is_none()
                    {
                        tlab.retire();
                        heap.minor_gc(&mut sink);
                    }
                }
                Op::AllocPermanent(size) => {
                    match tlab
                        .alloc(&mut heap, size as u32, Lifetime::Permanent, &mut sink)
                        .ok()
                    {
                        Some(id) => live_permanent.push(id),
                        None => {
                            tlab.retire();
                            heap.minor_gc(&mut sink);
                        }
                    }
                }
                Op::FreeOldest => {
                    if !live_permanent.is_empty() {
                        let id = live_permanent.remove(0);
                        heap.free(id);
                    }
                }
                Op::AdvanceEpoch(n) => heap.advance_epoch(n as u64),
                Op::MinorGc => {
                    tlab.retire();
                    heap.minor_gc(&mut sink);
                }
                Op::MajorGc => {
                    heap.major_gc(&mut sink);
                }
            }

            // Invariant: all live permanents are still live.
            for &id in &live_permanent {
                assert!(heap.is_live(id), "seed {seed}: permanent {id:?} died");
            }
            // Invariant: live permanent ranges are pairwise disjoint.
            for i in 0..live_permanent.len() {
                for j in (i + 1)..live_permanent.len() {
                    let a = heap.range_of(live_permanent[i]);
                    let b = heap.range_of(live_permanent[j]);
                    assert!(!a.overlaps(&b), "seed {seed}: {a} overlaps {b}");
                }
            }
            // Invariant: occupancy bounded by the configured spaces.
            assert!(heap.occupied_bytes() <= (64 << 10) + (1 << 20));
        }

        // Final full collection: occupancy equals the live permanents
        // plus survivors of unexpired sessions.
        tlab.retire();
        heap.minor_gc(&mut sink);
        heap.major_gc(&mut sink);
        let live_bytes: u64 = live_permanent
            .iter()
            .map(|&id| heap.size_of(id) as u64)
            .sum();
        assert!(
            heap.occupied_bytes() >= live_bytes,
            "seed {seed}: occupancy {} below live permanent bytes {live_bytes}",
            heap.occupied_bytes()
        );
    }
}

/// Collection moves objects only between the configured spaces and
/// never loses allocated-byte accounting.
#[test]
fn statistics_are_monotone() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n_sizes = rng.gen_range(1..200usize);
        let sizes: Vec<u32> = (0..n_sizes).map(|_| rng.gen_range(32..4096u32)).collect();
        let mut heap = small_heap();
        let mut tlab = Tlab::new();
        let mut sink = CountingSink::new();
        let mut allocated = 0u64;
        for &size in &sizes {
            match tlab
                .alloc(&mut heap, size, Lifetime::Ephemeral, &mut sink)
                .ok()
            {
                Some(id) => allocated += heap.size_of(id) as u64,
                None => {
                    tlab.retire();
                    heap.minor_gc(&mut sink);
                }
            }
        }
        assert!(heap.stats().allocated_bytes >= allocated);
        assert!(heap.stats().allocated_objects <= sizes.len() as u64);
    }
}
