//! Property-based verification of the heap and collector.

use proptest::prelude::*;

use jvm::alloc::Tlab;
use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::{Lifetime, ObjectId};
use memsys::{Addr, AddrRange, CountingSink};

fn small_heap() -> Heap {
    Heap::new(
        HeapConfig {
            geometry: HeapGeometry {
                eden: 256 << 10,
                survivor: 64 << 10,
                old: 1 << 20,
            },
            tenure_age: 1,
            tlab_bytes: 8 << 10,
        },
        AddrRange::new(Addr(0x4000_0000), 8 << 20),
    )
}

/// One randomized heap operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    AllocEphemeral(u16),
    AllocSession(u16, u8),
    AllocPermanent(u16),
    FreeOldest,
    AdvanceEpoch(u8),
    MinorGc,
    MajorGc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (32u16..2048).prop_map(Op::AllocEphemeral),
        ((32u16..1024), (1u8..40)).prop_map(|(s, e)| Op::AllocSession(s, e)),
        (32u16..1024).prop_map(Op::AllocPermanent),
        Just(Op::FreeOldest),
        (1u8..8).prop_map(Op::AdvanceEpoch),
        Just(Op::MinorGc),
        Just(Op::MajorGc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary operation sequences: live permanent objects survive
    /// every collection, their address ranges stay disjoint, and heap
    /// occupancy never exceeds the configured spaces.
    #[test]
    fn gc_preserves_live_objects(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut heap = small_heap();
        let mut tlab = Tlab::new();
        let mut sink = CountingSink::new();
        let mut live_permanent: Vec<ObjectId> = Vec::new();

        for &op in &ops {
            match op {
                Op::AllocEphemeral(size) => {
                    if let Some(_id) =
                        tlab.alloc(&mut heap, size as u32, Lifetime::Ephemeral, &mut sink).ok()
                    {
                        // ephemeral: forgotten immediately
                    } else {
                        tlab.retire();
                        heap.minor_gc(&mut sink);
                    }
                }
                Op::AllocSession(size, epochs) => {
                    let lt = Lifetime::Session {
                        expires_epoch: heap.epoch() + epochs as u64,
                    };
                    if tlab.alloc(&mut heap, size as u32, lt, &mut sink).ok().is_none() {
                        tlab.retire();
                        heap.minor_gc(&mut sink);
                    }
                }
                Op::AllocPermanent(size) => {
                    match tlab.alloc(&mut heap, size as u32, Lifetime::Permanent, &mut sink).ok() {
                        Some(id) => live_permanent.push(id),
                        None => {
                            tlab.retire();
                            heap.minor_gc(&mut sink);
                        }
                    }
                }
                Op::FreeOldest => {
                    if !live_permanent.is_empty() {
                        let id = live_permanent.remove(0);
                        heap.free(id);
                    }
                }
                Op::AdvanceEpoch(n) => heap.advance_epoch(n as u64),
                Op::MinorGc => {
                    tlab.retire();
                    heap.minor_gc(&mut sink);
                }
                Op::MajorGc => {
                    heap.major_gc(&mut sink);
                }
            }

            // Invariant: all live permanents are still live.
            for &id in &live_permanent {
                prop_assert!(heap.is_live(id), "permanent {id:?} died");
            }
            // Invariant: live permanent ranges are pairwise disjoint.
            for i in 0..live_permanent.len() {
                for j in (i + 1)..live_permanent.len() {
                    let a = heap.range_of(live_permanent[i]);
                    let b = heap.range_of(live_permanent[j]);
                    prop_assert!(!a.overlaps(&b), "{a} overlaps {b}");
                }
            }
            // Invariant: occupancy bounded by the configured spaces.
            prop_assert!(heap.occupied_bytes() <= (64 << 10) + (1 << 20));
        }

        // Final full collection: occupancy equals the live permanents
        // plus survivors of unexpired sessions.
        tlab.retire();
        heap.minor_gc(&mut sink);
        heap.major_gc(&mut sink);
        let live_bytes: u64 = live_permanent.iter().map(|&id| heap.size_of(id) as u64).sum();
        prop_assert!(
            heap.occupied_bytes() >= live_bytes,
            "occupancy {} below live permanent bytes {live_bytes}",
            heap.occupied_bytes()
        );
    }

    /// Collection moves objects only between the configured spaces and
    /// never loses allocated-byte accounting.
    #[test]
    fn statistics_are_monotone(sizes in prop::collection::vec(32u32..4096, 1..200)) {
        let mut heap = small_heap();
        let mut tlab = Tlab::new();
        let mut sink = CountingSink::new();
        let mut allocated = 0u64;
        for &size in &sizes {
            match tlab.alloc(&mut heap, size, Lifetime::Ephemeral, &mut sink).ok() {
                Some(id) => allocated += heap.size_of(id) as u64,
                None => {
                    tlab.retire();
                    heap.minor_gc(&mut sink);
                }
            }
        }
        prop_assert!(heap.stats().allocated_bytes >= allocated);
        prop_assert!(heap.stats().allocated_objects <= sizes.len() as u64);
    }
}
