//! # jvm — a HotSpot-1.3.1-like JVM substrate
//!
//! The managed-runtime half of the workload models for the HPCA 2003 paper
//! *"Memory System Behavior of Java-Based Middleware"*: both SPECjbb and
//! ECperf are Java programs, and several of the paper's findings (GC idle
//! time, the collapse of cache-to-cache transfers during collection, the
//! live-memory scaling of Figure 11) are properties of the JVM rather than
//! of the benchmarks themselves.
//!
//! Components:
//!
//! - [`heap::Heap`] — the paper's tuned heap geometry (1424 MB, 400 MB new
//!   generation) with eden / survivor semi-spaces / old generation;
//! - [`alloc::Tlab`] — thread-local bump allocation;
//! - [`gc`] — single-threaded, stop-the-world generational collection
//!   (copying minor GC, mark-compact major GC) that emits its own memory
//!   traffic;
//! - [`lock::LockSet`] — inflated monitors, one lock word per cache line;
//! - [`codecache::CodeCache`] — compiled-method layout and ifetch streams;
//! - [`thread::JavaThread`] — stacks and TLABs per thread.
//!
//! ## Example
//!
//! ```
//! use jvm::alloc::Tlab;
//! use jvm::heap::{Heap, HeapConfig, HeapGeometry};
//! use jvm::object::Lifetime;
//! use memsys::{Addr, AddrRange, CountingSink};
//!
//! let cfg = HeapConfig {
//!     geometry: HeapGeometry::paper_scaled(64),
//!     ..HeapConfig::default()
//! };
//! let mut heap = Heap::new(cfg, AddrRange::new(Addr(0x2000_0000), 64 << 20));
//! let mut tlab = Tlab::new();
//! let mut sink = CountingSink::new();
//! let id = tlab
//!     .alloc(&mut heap, 128, Lifetime::Ephemeral, &mut sink)
//!     .ok()
//!     .expect("eden has room");
//! assert!(heap.range_of(id).len() >= 128);
//! ```

pub mod alloc;
pub mod codecache;
pub mod gc;
pub mod heap;
pub mod lock;
pub mod object;
pub mod thread;

pub use alloc::{AllocOutcome, Tlab};
pub use codecache::{CodeCache, MethodId, INSTRUCTIONS_PER_LINE};
pub use gc::{GcKind, GcOutcome, MAJOR_GC_THRESHOLD};
pub use heap::{Heap, HeapConfig, HeapGeometry, HeapStats};
pub use lock::{LockId, LockSet};
pub use object::{Lifetime, ObjectId, ObjectRecord, ObjectTable, Space};
pub use thread::{carve_stacks, JavaThread};
