//! The garbage collector: single-threaded, stop-the-world, generational.
//!
//! Models HotSpot 1.3.1's collector as described in the paper (Sections 3.2
//! and 4.5): a copying collector for the new generation (eden + two
//! survivor semi-spaces, promotion by age), and a mark-compact collector
//! for the old generation. Collection is *single-threaded*: the simulation
//! harness runs all collector references on one processor while every other
//! processor idles — the mechanism behind the paper's GC-idle time
//! (Figure 5) and the collapse of cache-to-cache transfers during
//! collection (Figure 10).
//!
//! Collector memory traffic is emitted through a [`MemSink`]: live objects
//! are read from from-space and written to to-space line by line. Because
//! eden is far larger than any L2 cache, the mutators' dirty lines have
//! long been written back by collection time, so those reads find memory,
//! not remote caches — reproducing Figure 10's near-zero snoop-copyback
//! rate during GC *mechanistically*.

use memsys::{AccessKind, AddrRange, MemSink};

use crate::heap::Heap;
use crate::object::{ObjectId, Space};

/// Which collection ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// New-generation copying collection.
    Minor,
    /// Old-generation mark-compact collection.
    Major,
}

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Minor or major.
    pub kind: GcKind,
    /// Objects examined.
    pub scanned_objects: u64,
    /// Bytes copied (survivor copies + promotions + compaction slides).
    pub copied_bytes: u64,
    /// Bytes promoted to the old generation (minor only).
    pub promoted_bytes: u64,
    /// Garbage bytes reclaimed.
    pub freed_bytes: u64,
    /// Heap occupancy immediately after the collection — the quantity the
    /// paper plots in Figure 11.
    pub heap_after: u64,
}

/// Old-generation occupancy above which a major collection is triggered.
pub const MAJOR_GC_THRESHOLD: f64 = 0.85;

/// Collector instruction costs (charged through the sink).
const GC_SETUP_INSTRUCTIONS: u64 = 20_000;
const SCAN_INSTRUCTIONS_PER_OBJECT: u64 = 12;
const COPY_INSTRUCTIONS_PER_8_BYTES: u64 = 1;

impl Heap {
    /// Heap occupancy (survivor + old usage): what `-verbose:gc` reports
    /// after a collection.
    pub fn occupied_bytes(&self) -> u64 {
        self.survivor_used + self.old_used
    }

    /// Whether the old generation has crossed the major-collection
    /// threshold.
    pub fn needs_major_gc(&self) -> bool {
        self.old_occupancy() > MAJOR_GC_THRESHOLD
    }

    /// Runs a minor (new-generation) collection, emitting collector
    /// references through `sink`. Live young objects are copied to the
    /// to-survivor space; objects that have survived
    /// [`tenure_age`](crate::heap::HeapConfig::tenure_age) collections, or
    /// that overflow the survivor space, are promoted to the old
    /// generation. If promotion would overflow the old generation a major
    /// collection is run inline first.
    ///
    /// # Panics
    ///
    /// Panics if the old generation cannot hold the promoted bytes even
    /// after a major collection ("OutOfMemoryError").
    pub fn minor_gc(&mut self, sink: &mut (impl MemSink + ?Sized)) -> GcOutcome {
        sink.instructions(GC_SETUP_INSTRUCTIONS);
        let to_space = 1 - self.from_space;
        let mut to_top: u64 = 0;
        let mut out = GcOutcome {
            kind: GcKind::Minor,
            scanned_objects: 0,
            copied_bytes: 0,
            promoted_bytes: 0,
            freed_bytes: 0,
            heap_after: 0,
        };

        // Survivors first (they are oldest), then eden.
        let candidates: Vec<ObjectId> = self
            .survivor_objs
            .drain(..)
            .chain(self.young.drain(..))
            .collect();
        let mut new_survivors = Vec::new();

        for id in candidates {
            out.scanned_objects += 1;
            sink.instructions(SCAN_INSTRUCTIONS_PER_OBJECT);
            let rec = *self.table.get(id);
            if !rec.is_live(self.epoch) {
                out.freed_bytes += rec.size as u64;
                self.table.remove(id);
                continue;
            }
            let size = rec.size as u64;
            let promote =
                rec.age >= self.cfg.tenure_age || to_top + size > self.survivors[to_space].len();
            let dest = if promote {
                if self.old_used + size > self.old.len() {
                    let major = self.major_gc(sink);
                    out.freed_bytes += major.freed_bytes;
                    out.copied_bytes += major.copied_bytes;
                    assert!(
                        self.old_used + size <= self.old.len(),
                        "OutOfMemoryError: old generation exhausted"
                    );
                }
                let a = memsys::Addr(self.old.start().0 + self.old_used);
                self.old_used += size;
                self.old_live_bytes += size;
                out.promoted_bytes += size;
                a
            } else {
                let a = memsys::Addr(self.survivors[to_space].start().0 + to_top);
                to_top += size;
                a
            };
            // The copy: read the from-space lines, write the to-space lines.
            sink.instructions(size.div_ceil(8) * COPY_INSTRUCTIONS_PER_8_BYTES);
            sink.sweep(AccessKind::Load, AddrRange::new(rec.addr, size));
            sink.sweep(AccessKind::Store, AddrRange::new(dest, size));
            out.copied_bytes += size;

            let rec = self.table.get_mut(id);
            rec.addr = dest;
            rec.age = rec.age.saturating_add(1);
            if promote {
                rec.space = Space::Old;
                self.old_objs.push(id);
            } else {
                rec.space = Space::Survivor;
                new_survivors.push(id);
            }
        }

        self.survivor_objs = new_survivors;
        self.from_space = to_space;
        self.survivor_used = to_top;
        self.eden_used = 0;
        self.stats.minor_gcs += 1;
        self.stats.copied_bytes += out.copied_bytes;
        self.stats.promoted_bytes += out.promoted_bytes;
        out.heap_after = self.occupied_bytes();
        self.stats.live_after_last_gc = out.heap_after;
        out
    }

    /// Runs a major (old-generation) mark-compact collection.
    ///
    /// Live objects are slid toward the bottom of the old generation;
    /// the mark phase reads every live object, and objects that move are
    /// written at their new location.
    pub fn major_gc(&mut self, sink: &mut (impl MemSink + ?Sized)) -> GcOutcome {
        sink.instructions(GC_SETUP_INSTRUCTIONS);
        let mut out = GcOutcome {
            kind: GcKind::Major,
            scanned_objects: 0,
            copied_bytes: 0,
            promoted_bytes: 0,
            freed_bytes: 0,
            heap_after: 0,
        };
        let mut new_top: u64 = 0;
        let mut live_bytes: u64 = 0;
        let old_objs = std::mem::take(&mut self.old_objs);
        let mut kept = Vec::with_capacity(old_objs.len());

        for id in old_objs {
            out.scanned_objects += 1;
            sink.instructions(SCAN_INSTRUCTIONS_PER_OBJECT);
            let rec = *self.table.get(id);
            if !rec.is_live(self.epoch) {
                out.freed_bytes += rec.size as u64;
                self.table.remove(id);
                continue;
            }
            let size = rec.size as u64;
            let dest = memsys::Addr(self.old.start().0 + new_top);
            new_top += size;
            live_bytes += size;
            // Mark: read the object. Compact: write it if it moves.
            sink.sweep(AccessKind::Load, AddrRange::new(rec.addr, size));
            if dest != rec.addr {
                sink.instructions(size.div_ceil(8) * COPY_INSTRUCTIONS_PER_8_BYTES);
                sink.sweep(AccessKind::Store, AddrRange::new(dest, size));
                out.copied_bytes += size;
                self.table.get_mut(id).addr = dest;
            }
            kept.push(id);
        }

        self.old_objs = kept;
        self.old_used = new_top;
        self.old_live_bytes = live_bytes;
        self.stats.major_gcs += 1;
        self.stats.copied_bytes += out.copied_bytes;
        out.heap_after = self.occupied_bytes();
        self.stats.live_after_last_gc = out.heap_after;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Tlab;
    use crate::heap::{HeapConfig, HeapGeometry};
    use crate::object::Lifetime;
    use memsys::{Addr, CountingSink};

    fn heap() -> Heap {
        Heap::new(
            HeapConfig {
                geometry: HeapGeometry {
                    eden: 1 << 20,
                    survivor: 256 << 10,
                    old: 2 << 20,
                },
                tenure_age: 1,
                tlab_bytes: 8 << 10,
            },
            AddrRange::new(Addr(0x4000_0000), 16 << 20),
        )
    }

    fn fill_eden(
        h: &mut Heap,
        t: &mut Tlab,
        size: u32,
        lifetime: Lifetime,
    ) -> Vec<crate::object::ObjectId> {
        let mut sink = CountingSink::new();
        let mut ids = Vec::new();
        while let Some(id) = t.alloc(h, size, lifetime, &mut sink).ok() {
            ids.push(id);
        }
        t.retire();
        ids
    }

    #[test]
    fn ephemeral_garbage_is_fully_reclaimed() {
        let mut h = heap();
        let mut t = Tlab::new();
        fill_eden(&mut h, &mut t, 512, Lifetime::Ephemeral);
        let mut sink = CountingSink::new();
        let out = h.minor_gc(&mut sink);
        assert_eq!(out.copied_bytes, 0, "nothing live to copy");
        assert!(out.freed_bytes > (900 << 10), "almost all of eden freed");
        assert_eq!(h.eden_used(), 0);
        assert_eq!(h.occupied_bytes(), 0);
    }

    #[test]
    fn live_session_objects_are_copied_to_survivor() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let id = t
            .alloc(
                &mut h,
                1024,
                Lifetime::Session { expires_epoch: 100 },
                &mut sink,
            )
            .ok()
            .unwrap();
        let before = h.addr_of(id);
        let out = h.minor_gc(&mut sink);
        assert_eq!(out.copied_bytes, 1024);
        assert_ne!(h.addr_of(id), before, "copying GC moves objects");
        assert!(h.is_live(id));
        assert_eq!(h.occupied_bytes(), 1024);
    }

    #[test]
    fn expired_sessions_die_at_collection() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        t.alloc(
            &mut h,
            1024,
            Lifetime::Session { expires_epoch: 5 },
            &mut sink,
        );
        h.advance_epoch(10);
        let out = h.minor_gc(&mut sink);
        assert_eq!(out.copied_bytes, 0);
        assert!(out.freed_bytes >= 1024);
    }

    #[test]
    fn objects_promote_after_tenure_age() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let _id = t
            .alloc(&mut h, 512, Lifetime::Permanent, &mut sink)
            .ok()
            .unwrap();
        let o1 = h.minor_gc(&mut sink);
        assert_eq!(o1.promoted_bytes, 0, "first survival stays in survivor");
        let o2 = h.minor_gc(&mut sink);
        assert_eq!(o2.promoted_bytes, 512, "second collection promotes");
        assert!(h.old_occupancy() > 0.0);
    }

    #[test]
    fn gc_emits_copy_traffic_through_sink() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        t.alloc(&mut h, 4096, Lifetime::Permanent, &mut sink);
        let before = (sink.loads, sink.stores);
        h.minor_gc(&mut sink);
        assert!(sink.loads > before.0, "from-space reads");
        assert!(sink.stores > before.1, "to-space writes");
        assert!(sink.instructions > GC_SETUP_INSTRUCTIONS);
    }

    #[test]
    fn survivor_overflow_promotes_early() {
        let mut h = heap();
        let mut t = Tlab::new();
        // 400 KB of session data > 256 KB survivor space.
        let mut sink = CountingSink::new();
        for _ in 0..100 {
            t.alloc(
                &mut h,
                4096,
                Lifetime::Session {
                    expires_epoch: u64::MAX,
                },
                &mut sink,
            );
        }
        let out = h.minor_gc(&mut sink);
        assert!(out.promoted_bytes > 0, "overflow must promote early");
    }

    #[test]
    fn major_gc_compacts_freed_permanents() {
        let mut h = heap();
        let ids: Vec<_> = (0..100).map(|_| h.alloc_permanent_old(4096)).collect();
        let occupied = h.occupied_bytes();
        for id in ids.iter().take(50) {
            h.free(*id);
        }
        assert_eq!(h.occupied_bytes(), occupied, "free alone reclaims nothing");
        let mut sink = CountingSink::new();
        let out = h.major_gc(&mut sink);
        assert_eq!(out.freed_bytes, 50 * 4096);
        assert_eq!(h.occupied_bytes(), occupied - 50 * 4096);
        // Remaining objects compacted to the bottom: all addresses inside
        // the first half of the old generation.
        for id in ids.iter().skip(50) {
            assert!(h.addr_of(*id).0 < h.occupied_bytes() + 0x4000_0000 + (16 << 20));
        }
    }

    #[test]
    fn major_gc_threshold_detection() {
        let mut h = heap();
        assert!(!h.needs_major_gc());
        // Fill old gen past 85%.
        while h.old_occupancy() < 0.9 {
            h.alloc_permanent_old(64 << 10);
        }
        assert!(h.needs_major_gc());
    }

    #[test]
    fn full_allocation_gc_cycle_reaches_steady_state() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let mut gcs = 0;
        for i in 0..200_000u64 {
            h.advance_epoch(1);
            // Short-lived session objects: each lives 50 epochs.
            let lifetime = Lifetime::Session {
                expires_epoch: h.epoch() + 50,
            };
            loop {
                match t.alloc(&mut h, 256, lifetime, &mut sink) {
                    crate::alloc::AllocOutcome::Ok(_) => break,
                    crate::alloc::AllocOutcome::NeedsGc => {
                        t.retire();
                        h.minor_gc(&mut sink);
                        gcs += 1;
                    }
                }
            }
            let _ = i;
        }
        assert!(gcs >= 3, "several collections must have run, got {gcs}");
        // Steady state: occupied stays bounded well below the old gen size.
        assert!(h.occupied_bytes() < (2 << 20));
    }
}
