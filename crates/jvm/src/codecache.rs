//! The JIT code cache: compiled-method layout and instruction fetch.
//!
//! The paper's key instruction-side finding (Figure 12) is that ECperf —
//! running inside a commercial application server and EJB container — has a
//! much larger instruction working set than SPECjbb, producing markedly
//! higher miss rates for intermediate (e.g. 256 KB) instruction caches.
//! That difference is purely a matter of how much hot compiled code each
//! workload executes, so the model is direct: workloads install their
//! methods into a [`CodeCache`] region and *execute* them, emitting one
//! instruction fetch per 64-byte line (16 SPARC instructions).

use memsys::{Addr, AddrRange, MemSink, LINE_BYTES};

/// Identifies an installed compiled method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// SPARC V9 instructions per 64-byte line.
pub const INSTRUCTIONS_PER_LINE: u64 = LINE_BYTES / 4;

/// A region of compiled code.
#[derive(Debug, Clone)]
pub struct CodeCache {
    region: AddrRange,
    used: u64,
    methods: Vec<AddrRange>,
}

impl CodeCache {
    /// Creates a code cache allocating from `region`.
    pub fn new(region: AddrRange) -> Self {
        CodeCache {
            region,
            used: 0,
            methods: Vec::new(),
        }
    }

    /// Installs (JIT-compiles) a method of `bytes` code bytes, rounded up
    /// to whole lines.
    ///
    /// # Panics
    ///
    /// Panics if the code region is exhausted.
    pub fn install(&mut self, bytes: u64) -> MethodId {
        let len = bytes.max(LINE_BYTES).div_ceil(LINE_BYTES) * LINE_BYTES;
        assert!(
            self.used + len <= self.region.len(),
            "code cache exhausted installing {bytes}-byte method"
        );
        let range = AddrRange::new(Addr(self.region.start().0 + self.used), len);
        self.used += len;
        let id = MethodId(u32::try_from(self.methods.len()).expect("method count fits u32"));
        self.methods.push(range);
        id
    }

    /// The whole code region (region classification).
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Number of installed methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether no methods are installed.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Total installed code bytes.
    pub fn footprint(&self) -> u64 {
        self.used
    }

    /// The method's code range.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn range(&self, id: MethodId) -> AddrRange {
        self.methods[id.0 as usize]
    }

    /// Executes the whole method body: one ifetch per line, sixteen
    /// instructions retired per line.
    pub fn execute(&self, id: MethodId, sink: &mut (impl MemSink + ?Sized)) {
        self.execute_lines(id, u32::MAX, sink);
    }

    /// Executes up to `lines` lines of the method (short calls / early
    /// returns execute a prefix of the body).
    pub fn execute_lines(&self, id: MethodId, lines: u32, sink: &mut (impl MemSink + ?Sized)) {
        let range = self.range(id);
        let total = range.line_count().min(lines as u64);
        let mut line = range.start().line();
        for _ in 0..total {
            sink.ifetch(line.base());
            sink.instructions(INSTRUCTIONS_PER_LINE);
            line = line.step(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{AccessKind, CountingSink, RecordingSink};

    fn cache() -> CodeCache {
        CodeCache::new(AddrRange::new(Addr(0x10_0000), 1 << 20))
    }

    #[test]
    fn methods_are_laid_out_contiguously_without_overlap() {
        let mut c = cache();
        let a = c.install(100);
        let b = c.install(1000);
        assert!(!c.range(a).overlaps(&c.range(b)));
        assert_eq!(c.range(a).len(), 128, "rounded to lines");
        assert_eq!(c.footprint(), 128 + 1024);
    }

    #[test]
    fn execute_fetches_every_line_and_retires_instructions() {
        let mut c = cache();
        let m = c.install(640); // 10 lines
        let mut sink = CountingSink::new();
        c.execute(m, &mut sink);
        assert_eq!(sink.ifetches, 10);
        assert_eq!(sink.instructions, 10 * INSTRUCTIONS_PER_LINE);
    }

    #[test]
    fn execute_lines_truncates() {
        let mut c = cache();
        let m = c.install(640);
        let mut sink = CountingSink::new();
        c.execute_lines(m, 3, &mut sink);
        assert_eq!(sink.ifetches, 3);
    }

    #[test]
    fn fetches_are_sequential_ifetches() {
        let mut c = cache();
        let m = c.install(192); // 3 lines
        let mut sink = RecordingSink::new();
        c.execute(m, &mut sink);
        assert_eq!(sink.refs.len(), 3);
        for (i, (kind, addr)) in sink.refs.iter().enumerate() {
            assert_eq!(*kind, AccessKind::Ifetch);
            assert_eq!(addr.0, c.range(m).start().0 + i as u64 * LINE_BYTES);
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflowing_region_panics() {
        let mut c = CodeCache::new(AddrRange::new(Addr(0), 128));
        let _ = c.install(256);
    }
}
