//! Java object monitors (inflated locks).
//!
//! Contended Java monitors inflate to heavyweight locks whose lock word is
//! written by every acquiring thread — making each hot lock a dedicated,
//! heavily written cache line that ping-pongs between processors. The
//! paper attributes a large share of both workloads' communication to "a
//! few highly contended locks": the hottest single line carries 20% of all
//! SPECjbb cache-to-cache transfers and 14% of ECperf's (Section 5.2).
//!
//! [`LockSet`] places each lock word on its own line and emits the
//! CAS-style acquire/release traffic. *Blocking* (who waits for whom, and
//! for how long) is scheduling policy and lives in the simulation harness;
//! this module only owns the lock words' memory behavior.

use memsys::{Addr, AddrRange, MemSink};

/// Identifies a monitor in a [`LockSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// Instruction cost of an uncontended monitor enter/exit pair half.
const LOCK_PATH_INSTRUCTIONS: u64 = 25;

/// A region of inflated monitor lock words, one cache line apiece.
#[derive(Debug, Clone)]
pub struct LockSet {
    region: AddrRange,
    count: u32,
}

impl LockSet {
    /// Creates a lock set allocating lock words from `region`.
    pub fn new(region: AddrRange) -> Self {
        LockSet { region, count: 0 }
    }

    /// Creates (inflates) a new monitor.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of lines.
    pub fn create(&mut self) -> LockId {
        let offset = self.count as u64 * memsys::LINE_BYTES;
        assert!(
            offset + memsys::LINE_BYTES <= self.region.len(),
            "lock region exhausted after {} locks",
            self.count
        );
        let id = LockId(self.count);
        self.count += 1;
        id
    }

    /// The region lock words are carved from (region classification).
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Number of monitors created.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether no monitors exist yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The lock word's address.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this set.
    pub fn addr(&self, id: LockId) -> Addr {
        assert!(id.0 < self.count, "unknown lock {id:?}");
        Addr(self.region.start().0 + id.0 as u64 * memsys::LINE_BYTES)
    }

    /// Emits the memory traffic of acquiring the monitor (CAS on the lock
    /// word: a load and a store to the same line).
    pub fn emit_acquire(&self, id: LockId, sink: &mut (impl MemSink + ?Sized)) {
        let a = self.addr(id);
        sink.instructions(LOCK_PATH_INSTRUCTIONS);
        sink.load(a);
        sink.store(a);
    }

    /// Emits the memory traffic of releasing the monitor.
    pub fn emit_release(&self, id: LockId, sink: &mut (impl MemSink + ?Sized)) {
        let a = self.addr(id);
        sink.instructions(LOCK_PATH_INSTRUCTIONS);
        sink.store(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{AccessKind, CountingSink, MemorySystem, RecordingSink};

    fn set() -> LockSet {
        LockSet::new(AddrRange::new(Addr(0x1_0000), 64 * 100))
    }

    #[test]
    fn each_lock_gets_its_own_line() {
        let mut s = set();
        let a = s.create();
        let b = s.create();
        assert_ne!(s.addr(a).line(), s.addr(b).line());
    }

    #[test]
    fn acquire_is_a_read_modify_write() {
        let mut s = set();
        let l = s.create();
        let mut sink = RecordingSink::new();
        s.emit_acquire(l, &mut sink);
        assert_eq!(sink.refs.len(), 2);
        assert_eq!(sink.refs[0].0, AccessKind::Load);
        assert_eq!(sink.refs[1].0, AccessKind::Store);
        assert_eq!(sink.refs[0].1.line(), sink.refs[1].1.line());
    }

    #[test]
    fn contended_lock_ping_pongs_between_caches() {
        let mut s = set();
        let l = s.create();
        let mut sys = MemorySystem::e6000(2).unwrap();
        // Warm both caches, then alternate acquires: every ownership change
        // after the first is a cache-to-cache transfer.
        struct SysSink<'a>(&'a mut MemorySystem, usize);
        impl memsys::MemSink for SysSink<'_> {
            fn instructions(&mut self, _n: u64) {}
            fn access(&mut self, kind: AccessKind, addr: Addr) {
                self.0.access(self.1, kind, addr);
            }
        }
        for round in 0..10 {
            let cpu = round % 2;
            let mut sink = SysSink(&mut sys, cpu);
            s.emit_acquire(l, &mut sink);
            s.emit_release(l, &mut sink);
        }
        assert!(
            sys.stats().total_c2c() >= 8,
            "alternating acquires must bounce the line: {}",
            sys.stats().total_c2c()
        );
    }

    #[test]
    fn release_charges_instructions() {
        let mut s = set();
        let l = s.create();
        let mut sink = CountingSink::new();
        s.emit_release(l, &mut sink);
        assert!(sink.instructions > 0);
        assert_eq!(sink.stores, 1);
    }

    #[test]
    #[should_panic(expected = "unknown lock")]
    fn foreign_lock_id_panics() {
        let s = set();
        let _ = s.addr(LockId(3));
    }
}
