//! The simulated Java object model.
//!
//! The simulator never stores object *contents* — only identity, placement
//! and lifetime, which is all the memory-system characterization needs.
//! Liveness is modeled by declared lifetime class instead of reachability
//! tracing: transaction scratch is [`Lifetime::Ephemeral`] (dead by the
//! next collection), session state is [`Lifetime::Session`] (dies when its
//! epoch passes), and database/cache structure is [`Lifetime::Permanent`]
//! (lives until explicitly freed). This reproduces the generational
//! behavior the paper measures (Figures 9–11) without the cost of a full
//! heap trace.

use memsys::Addr;

/// Identifies a simulated heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Declared lifetime of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifetime {
    /// Garbage by the next minor collection (transaction temporaries).
    Ephemeral,
    /// Live until the heap's epoch counter passes `expires_epoch`.
    Session {
        /// Epoch at which the object becomes garbage.
        expires_epoch: u64,
    },
    /// Live until [`freed`](crate::heap::Heap::free) (database records,
    /// caches, code-level singletons).
    Permanent,
}

/// Which space an object currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Eden (newly allocated).
    Eden,
    /// A survivor semi-space, with its copy-survival count.
    Survivor,
    /// The old (tenured) generation.
    Old,
}

/// One object's record.
#[derive(Debug, Clone, Copy)]
pub struct ObjectRecord {
    /// Current placement (moves under copying collection).
    pub addr: Addr,
    /// Size in bytes (header included).
    pub size: u32,
    /// Lifetime class.
    pub lifetime: Lifetime,
    /// Current space.
    pub space: Space,
    /// Minor collections survived.
    pub age: u8,
    /// Whether the object has been explicitly freed (Permanent only).
    pub freed: bool,
}

impl ObjectRecord {
    /// Whether the object is live at `epoch`.
    pub fn is_live(&self, epoch: u64) -> bool {
        if self.freed {
            return false;
        }
        match self.lifetime {
            Lifetime::Ephemeral => false,
            Lifetime::Session { expires_epoch } => expires_epoch > epoch,
            Lifetime::Permanent => true,
        }
    }
}

/// The table of all live (and recyclable) object records.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    records: Vec<ObjectRecord>,
    free: Vec<u32>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Number of records in use.
    pub fn len(&self) -> usize {
        self.records.len() - self.free.len()
    }

    /// Whether no records are in use.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a record, recycling a free slot when available.
    pub fn insert(&mut self, rec: ObjectRecord) -> ObjectId {
        if let Some(slot) = self.free.pop() {
            self.records[slot as usize] = rec;
            ObjectId(slot)
        } else {
            let slot = u32::try_from(self.records.len()).expect("object table overflow");
            self.records.push(rec);
            ObjectId(slot)
        }
    }

    /// Immutable access to a record.
    ///
    /// # Panics
    ///
    /// Panics if `id` was removed (its slot recycled state is not checked;
    /// callers own id validity).
    pub fn get(&self, id: ObjectId) -> &ObjectRecord {
        &self.records[id.0 as usize]
    }

    /// Mutable access to a record.
    pub fn get_mut(&mut self, id: ObjectId) -> &mut ObjectRecord {
        &mut self.records[id.0 as usize]
    }

    /// Removes a record, making its slot recyclable.
    pub fn remove(&mut self, id: ObjectId) {
        self.free.push(id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(lifetime: Lifetime) -> ObjectRecord {
        ObjectRecord {
            addr: Addr(0),
            size: 64,
            lifetime,
            space: Space::Eden,
            age: 0,
            freed: false,
        }
    }

    #[test]
    fn ephemeral_is_never_live() {
        assert!(!rec(Lifetime::Ephemeral).is_live(0));
    }

    #[test]
    fn session_lives_until_epoch() {
        let r = rec(Lifetime::Session { expires_epoch: 5 });
        assert!(r.is_live(0));
        assert!(r.is_live(4));
        assert!(!r.is_live(5));
        assert!(!r.is_live(100));
    }

    #[test]
    fn permanent_lives_until_freed() {
        let mut r = rec(Lifetime::Permanent);
        assert!(r.is_live(u64::MAX));
        r.freed = true;
        assert!(!r.is_live(0));
    }

    #[test]
    fn table_recycles_slots() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(Lifetime::Permanent));
        let b = t.insert(rec(Lifetime::Permanent));
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        t.remove(a);
        assert_eq!(t.len(), 1);
        let c = t.insert(rec(Lifetime::Ephemeral));
        assert_eq!(c, a, "freed slot is recycled");
        assert_eq!(t.len(), 2);
    }
}
