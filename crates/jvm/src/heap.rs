//! Generational heap geometry and allocation spaces.
//!
//! Mirrors the paper's tuned HotSpot 1.3.1 configuration (Section 3.2): a
//! 1424 MB heap with a 400 MB new generation (eden plus two survivor
//! semi-spaces) in front of a tenured old generation. The geometry is
//! configurable so that reference-driven multiprocessor experiments can run
//! with a proportionally scaled heap while analytic experiments (Figure 11)
//! use the paper's real sizes.

use memsys::{Addr, AddrRange, MemSink};

use crate::object::{Lifetime, ObjectId, ObjectRecord, ObjectTable, Space};

/// Sizes of the heap spaces in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapGeometry {
    /// Eden size.
    pub eden: u64,
    /// Size of *each* survivor semi-space.
    pub survivor: u64,
    /// Old-generation size.
    pub old: u64,
}

impl HeapGeometry {
    /// The paper's configuration: 1424 MB heap, 400 MB new generation
    /// (320 MB eden + 2 x 40 MB survivors), 1024 MB old generation.
    pub fn paper() -> Self {
        HeapGeometry {
            eden: 320 << 20,
            survivor: 40 << 20,
            old: 1024 << 20,
        }
    }

    /// The paper geometry scaled down by `divisor` (for reference-driven
    /// runs where simulating 320 MB of allocation per collection would be
    /// wasteful). Ratios between the spaces — which set collection
    /// frequency and cost — are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn paper_scaled(divisor: u64) -> Self {
        assert!(divisor > 0, "scale divisor must be positive");
        let p = HeapGeometry::paper();
        HeapGeometry {
            eden: p.eden / divisor,
            survivor: p.survivor / divisor,
            old: p.old / divisor,
        }
    }

    /// Total heap bytes.
    pub fn total(&self) -> u64 {
        self.eden + 2 * self.survivor + self.old
    }
}

/// Heap tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapConfig {
    /// Space sizes.
    pub geometry: HeapGeometry,
    /// Minor collections an object must survive before promotion.
    pub tenure_age: u8,
    /// TLAB chunk size carved from eden per refill.
    pub tlab_bytes: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            geometry: HeapGeometry::paper(),
            tenure_age: 1,
            tlab_bytes: 64 << 10,
        }
    }
}

/// Cumulative heap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes ever allocated.
    pub allocated_bytes: u64,
    /// Objects ever allocated.
    pub allocated_objects: u64,
    /// Minor (new-generation) collections.
    pub minor_gcs: u64,
    /// Major (old-generation) collections.
    pub major_gcs: u64,
    /// Bytes copied by collectors.
    pub copied_bytes: u64,
    /// Bytes promoted to the old generation.
    pub promoted_bytes: u64,
    /// Live bytes measured immediately after the last collection —
    /// the paper's Figure 11 metric.
    pub live_after_last_gc: u64,
}

/// The generational heap.
#[derive(Debug, Clone)]
pub struct Heap {
    pub(crate) cfg: HeapConfig,
    pub(crate) eden: AddrRange,
    pub(crate) survivors: [AddrRange; 2],
    pub(crate) old: AddrRange,
    /// Bump offsets within each space.
    pub(crate) eden_used: u64,
    pub(crate) survivor_used: u64,
    pub(crate) old_used: u64,
    /// Index of the *from* survivor semi-space.
    pub(crate) from_space: usize,
    pub(crate) table: ObjectTable,
    /// Objects allocated in eden since the last minor collection.
    pub(crate) young: Vec<ObjectId>,
    /// Objects currently in the from-survivor space.
    pub(crate) survivor_objs: Vec<ObjectId>,
    /// Objects in the old generation.
    pub(crate) old_objs: Vec<ObjectId>,
    /// Live bytes currently in the old generation (maintained on promote /
    /// free / major collection).
    pub(crate) old_live_bytes: u64,
    pub(crate) epoch: u64,
    pub(crate) stats: HeapStats,
}

impl Heap {
    /// Lays a heap with configuration `cfg` out inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is smaller than the configured geometry.
    pub fn new(cfg: HeapConfig, mut region: AddrRange) -> Self {
        let g = cfg.geometry;
        assert!(
            region.len() >= g.total(),
            "heap region {} too small for geometry total {}",
            region.len(),
            g.total()
        );
        let eden = region.take(g.eden).expect("sized above");
        let s0 = region.take(g.survivor).expect("sized above");
        let s1 = region.take(g.survivor).expect("sized above");
        let old = region.take(g.old).expect("sized above");
        Heap {
            cfg,
            eden,
            survivors: [s0, s1],
            old,
            eden_used: 0,
            survivor_used: 0,
            old_used: 0,
            from_space: 0,
            table: ObjectTable::new(),
            young: Vec::new(),
            survivor_objs: Vec::new(),
            old_objs: Vec::new(),
            old_live_bytes: 0,
            epoch: 0,
            stats: HeapStats::default(),
        }
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Eden's address range (region classification).
    pub fn eden_range(&self) -> AddrRange {
        self.eden
    }

    /// The two survivor semi-spaces' address ranges.
    pub fn survivor_ranges(&self) -> [AddrRange; 2] {
        self.survivors
    }

    /// The old generation's address range.
    pub fn old_range(&self) -> AddrRange {
        self.old
    }

    /// Current logical epoch (advanced by the workload, e.g. per
    /// transaction; session lifetimes are expressed in epochs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch counter by `n`.
    pub fn advance_epoch(&mut self, n: u64) {
        self.epoch += n;
    }

    /// Carves a TLAB chunk out of eden; `None` when eden is exhausted
    /// (time for a minor collection).
    pub(crate) fn take_eden_chunk(&mut self, bytes: u64) -> Option<AddrRange> {
        if self.eden_used + bytes > self.eden.len() {
            return None;
        }
        let start = Addr(self.eden.start().0 + self.eden_used);
        self.eden_used += bytes;
        Some(AddrRange::new(start, bytes))
    }

    /// Registers an allocation performed by a TLAB.
    pub(crate) fn register_young(&mut self, addr: Addr, size: u32, lifetime: Lifetime) -> ObjectId {
        self.stats.allocated_bytes += size as u64;
        self.stats.allocated_objects += 1;
        let id = self.table.insert(ObjectRecord {
            addr,
            size,
            lifetime,
            space: Space::Eden,
            age: 0,
            freed: false,
        });
        self.young.push(id);
        id
    }

    /// Allocates a permanent object directly in the old generation
    /// (bulk database/cache construction before measurement). Emits no
    /// references — setup is outside the measurement window.
    ///
    /// # Panics
    ///
    /// Panics if the old generation cannot hold the object even after the
    /// caller has had a chance to collect (callers building oversized
    /// databases should scale the geometry instead).
    pub fn alloc_permanent_old(&mut self, size: u32) -> ObjectId {
        assert!(
            self.old_used + size as u64 <= self.old.len(),
            "old generation exhausted during setup (old={} used={} size={})",
            self.old.len(),
            self.old_used,
            size
        );
        let addr = Addr(self.old.start().0 + self.old_used);
        self.old_used += size as u64;
        self.old_live_bytes += size as u64;
        self.stats.allocated_bytes += size as u64;
        self.stats.allocated_objects += 1;
        let id = self.table.insert(ObjectRecord {
            addr,
            size,
            lifetime: Lifetime::Permanent,
            space: Space::Old,
            age: 0,
            freed: false,
        });
        self.old_objs.push(id);
        id
    }

    /// Current address of an object (moves across collections).
    pub fn addr_of(&self, id: ObjectId) -> Addr {
        self.table.get(id).addr
    }

    /// Size of an object in bytes.
    pub fn size_of(&self, id: ObjectId) -> u32 {
        self.table.get(id).size
    }

    /// The object's full address range.
    pub fn range_of(&self, id: ObjectId) -> AddrRange {
        let r = self.table.get(id);
        AddrRange::new(r.addr, r.size as u64)
    }

    /// Whether `id` is live at the current epoch.
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.table.get(id).is_live(self.epoch)
    }

    /// Marks a permanent object as garbage (severed from the object graph).
    pub fn free(&mut self, id: ObjectId) {
        let rec = self.table.get_mut(id);
        debug_assert!(!rec.freed, "double free of {id:?}");
        rec.freed = true;
        if rec.space == Space::Old {
            self.old_live_bytes = self.old_live_bytes.saturating_sub(rec.size as u64);
        }
    }

    /// Reads the whole object through `sink` (field scan).
    pub fn read_object(&self, id: ObjectId, sink: &mut (impl MemSink + ?Sized)) {
        sink.sweep(memsys::AccessKind::Load, self.range_of(id));
    }

    /// Reads the first `lines` cache lines of an object (field access:
    /// header plus a few fields, not a full scan).
    pub fn read_object_prefix(&self, id: ObjectId, lines: u64, sink: &mut (impl MemSink + ?Sized)) {
        let r = self.range_of(id);
        let len = r.len().min(lines * memsys::LINE_BYTES);
        sink.sweep(
            memsys::AccessKind::Load,
            memsys::AddrRange::new(r.start(), len),
        );
    }

    /// Writes the whole object through `sink`.
    pub fn write_object(&self, id: ObjectId, sink: &mut (impl MemSink + ?Sized)) {
        sink.sweep(memsys::AccessKind::Store, self.range_of(id));
    }

    /// Bytes currently consumed in eden.
    pub fn eden_used(&self) -> u64 {
        self.eden_used
    }

    /// Fraction of eden consumed.
    pub fn eden_occupancy(&self) -> f64 {
        self.eden_used as f64 / self.eden.len() as f64
    }

    /// Live bytes: survivor occupancy plus live old-generation bytes.
    /// Immediately after a collection this equals the paper's
    /// "heap size after collection" (Figure 11).
    pub fn live_bytes(&self) -> u64 {
        self.survivor_used + self.old_live_bytes
    }

    /// Old-generation occupancy fraction (used and not yet compacted).
    pub fn old_occupancy(&self) -> f64 {
        self.old_used as f64 / self.old.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> AddrRange {
        AddrRange::new(Addr(0x2000_0000), 64 << 20)
    }

    fn small_cfg() -> HeapConfig {
        HeapConfig {
            geometry: HeapGeometry {
                eden: 8 << 20,
                survivor: 1 << 20,
                old: 32 << 20,
            },
            tenure_age: 1,
            tlab_bytes: 64 << 10,
        }
    }

    #[test]
    fn paper_geometry_matches_section_3_2() {
        let g = HeapGeometry::paper();
        assert_eq!(g.eden + 2 * g.survivor, 400 << 20, "400 MB new generation");
        assert_eq!(g.total(), 1424 << 20, "1424 MB heap");
    }

    #[test]
    fn scaled_geometry_preserves_ratios() {
        let p = HeapGeometry::paper();
        let s = HeapGeometry::paper_scaled(16);
        assert_eq!(s.eden * 16, p.eden);
        assert_eq!(s.old * 16, p.old);
    }

    #[test]
    fn spaces_do_not_overlap() {
        let h = Heap::new(small_cfg(), region());
        assert!(!h.eden.overlaps(&h.survivors[0]));
        assert!(!h.eden.overlaps(&h.survivors[1]));
        assert!(!h.survivors[0].overlaps(&h.survivors[1]));
        assert!(!h.old.overlaps(&h.eden));
        assert!(!h.old.overlaps(&h.survivors[0]));
    }

    #[test]
    fn eden_chunks_are_disjoint_and_exhaust() {
        let mut h = Heap::new(small_cfg(), region());
        let a = h.take_eden_chunk(4 << 20).unwrap();
        let b = h.take_eden_chunk(4 << 20).unwrap();
        assert!(!a.overlaps(&b));
        assert!(h.take_eden_chunk(1).is_none(), "eden exhausted");
    }

    #[test]
    fn permanent_old_allocation_counts_live_bytes() {
        let mut h = Heap::new(small_cfg(), region());
        let id = h.alloc_permanent_old(1024);
        assert_eq!(h.live_bytes(), 1024);
        assert!(h.is_live(id));
        h.free(id);
        assert_eq!(h.live_bytes(), 0);
        assert!(!h.is_live(id));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn oversized_geometry_panics() {
        let _ = Heap::new(HeapConfig::default(), region());
    }

    #[test]
    fn epoch_advances() {
        let mut h = Heap::new(small_cfg(), region());
        h.advance_epoch(3);
        assert_eq!(h.epoch(), 3);
    }
}
