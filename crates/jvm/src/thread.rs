//! Java thread contexts: stacks and their reference behavior.
//!
//! Each thread owns a stack region and a [`Tlab`]. Per-transaction scratch
//! work (operand stacks, call frames, local temporaries) is modeled as
//! load/store traffic over a window of the stack that is *reused* across
//! transactions — so it hits in the L1 once warm, exactly like real frame
//! reuse, and its footprint is what pressures small L1 data caches.

use memsys::{Addr, AddrRange, MemSink, LINE_BYTES};

use crate::alloc::Tlab;

/// A simulated Java thread's memory context.
#[derive(Debug, Clone)]
pub struct JavaThread {
    /// Thread index within its machine.
    pub id: usize,
    /// The thread's stack region.
    pub stack: AddrRange,
    /// The thread's allocation buffer.
    pub tlab: Tlab,
    /// Rotation cursor so successive frame walks overlap realistically.
    depth: u64,
}

impl JavaThread {
    /// Creates a thread with the given stack region.
    pub fn new(id: usize, stack: AddrRange) -> Self {
        JavaThread {
            id,
            stack,
            tlab: Tlab::new(),
            depth: 0,
        }
    }

    /// Emits one call frame's worth of stack traffic: `frame_bytes` of
    /// pushes (stores) followed by reads of the same lines, at the current
    /// stack depth. Frames beyond the stack size wrap (deep recursion is
    /// not modeled).
    pub fn push_frame(&mut self, frame_bytes: u64, sink: &mut (impl MemSink + ?Sized)) {
        let lines = frame_bytes.div_ceil(LINE_BYTES).max(1);
        let stack_lines = self.stack.line_count();
        sink.instructions(8 + frame_bytes / 8);
        for i in 0..lines {
            let line_idx = (self.depth + i) % stack_lines;
            let addr = Addr(self.stack.start().line().step(line_idx).base().0);
            sink.store(addr);
            sink.load(addr);
        }
        self.depth = (self.depth + lines) % stack_lines;
    }

    /// Pops a frame: reads the frame's lines back (restores), retreating
    /// the depth cursor.
    pub fn pop_frame(&mut self, frame_bytes: u64, sink: &mut (impl MemSink + ?Sized)) {
        let lines = frame_bytes.div_ceil(LINE_BYTES).max(1);
        let stack_lines = self.stack.line_count();
        sink.instructions(8);
        self.depth = (self.depth + stack_lines - (lines % stack_lines)) % stack_lines;
        for i in 0..lines {
            let line_idx = (self.depth + i) % stack_lines;
            let addr = Addr(self.stack.start().line().step(line_idx).base().0);
            sink.load(addr);
        }
    }

    /// Resets the stack cursor to the base (end of a transaction: frames
    /// unwound, the next transaction reuses the same lines).
    pub fn unwind(&mut self) {
        self.depth = 0;
    }
}

/// Carves per-thread stack regions out of a stacks area.
///
/// # Panics
///
/// Panics if the region cannot hold `threads` stacks of `stack_bytes`.
pub fn carve_stacks(mut region: AddrRange, threads: usize, stack_bytes: u64) -> Vec<JavaThread> {
    (0..threads)
        .map(|id| {
            let stack = region
                .take(stack_bytes)
                .expect("stack region exhausted; size the stacks area to threads * stack_bytes");
            JavaThread::new(id, stack)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{CountingSink, RecordingSink};

    fn thread() -> JavaThread {
        JavaThread::new(0, AddrRange::new(Addr(0x8000_0000), 32 << 10))
    }

    #[test]
    fn frame_push_stores_then_loads_same_lines() {
        let mut t = thread();
        let mut sink = RecordingSink::new();
        t.push_frame(128, &mut sink);
        assert_eq!(sink.refs.len(), 4, "2 lines x (store+load)");
        assert_eq!(sink.refs[0].1, sink.refs[1].1);
    }

    #[test]
    fn pop_returns_cursor_to_prior_depth() {
        let mut t = thread();
        let mut sink = CountingSink::new();
        t.push_frame(256, &mut sink);
        let d = t.depth;
        t.push_frame(256, &mut sink);
        t.pop_frame(256, &mut sink);
        assert_eq!(t.depth, d);
    }

    #[test]
    fn unwound_transactions_reuse_the_same_lines() {
        let mut t = thread();
        let mut first = RecordingSink::new();
        t.push_frame(512, &mut first);
        t.unwind();
        let mut second = RecordingSink::new();
        t.push_frame(512, &mut second);
        assert_eq!(first.refs, second.refs, "stack reuse is exact");
    }

    #[test]
    fn deep_frames_wrap_within_stack() {
        let mut t = JavaThread::new(0, AddrRange::new(Addr(0), 1024)); // 16 lines
        let mut sink = RecordingSink::new();
        for _ in 0..10 {
            t.push_frame(256, &mut sink); // 4 lines each
        }
        for (_, addr) in &sink.refs {
            assert!(addr.0 < 1024, "stays inside the stack region");
        }
    }

    #[test]
    fn carve_stacks_produces_disjoint_regions() {
        let ts = carve_stacks(AddrRange::new(Addr(0), 1 << 20), 8, 64 << 10);
        assert_eq!(ts.len(), 8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(!ts[i].stack.overlaps(&ts[j].stack));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn oversubscribed_stack_region_panics() {
        let _ = carve_stacks(AddrRange::new(Addr(0), 1 << 10), 4, 1 << 10);
    }
}
