//! Thread-local allocation buffers (TLABs).
//!
//! Each Java thread bump-allocates from a private chunk of eden, exactly as
//! HotSpot does. TLABs give the reference stream its real spatial
//! properties: a thread's consecutive allocations are contiguous (good
//! locality, one compulsory miss per line), and different threads allocate
//! in *different* chunks (no allocation-time false sharing).

use memsys::{AccessKind, Addr, AddrRange, MemSink};

use crate::heap::Heap;
use crate::object::{Lifetime, ObjectId};

/// A thread's private allocation buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tlab {
    cur: u64,
    end: u64,
}

/// Result of an allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// The object was allocated.
    Ok(ObjectId),
    /// Eden is exhausted: the caller must trigger a minor collection and
    /// retry.
    NeedsGc,
}

impl AllocOutcome {
    /// The id, if allocation succeeded.
    pub fn ok(self) -> Option<ObjectId> {
        match self {
            AllocOutcome::Ok(id) => Some(id),
            AllocOutcome::NeedsGc => None,
        }
    }
}

impl Tlab {
    /// Creates an empty (unfilled) TLAB.
    pub fn new() -> Self {
        Tlab::default()
    }

    /// Bytes remaining in the current chunk.
    pub fn remaining(&self) -> u64 {
        self.end - self.cur
    }

    /// Invalidates the TLAB (must be done when a collection empties eden).
    pub fn retire(&mut self) {
        self.cur = 0;
        self.end = 0;
    }

    /// Ensures at least `bytes` can be allocated without touching eden
    /// again, refilling the TLAB if needed. Returns `false` when eden is
    /// exhausted (the caller should request a collection *before* starting
    /// a transaction, so collections only happen at clean boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the configured TLAB chunk size.
    pub fn ensure(&mut self, heap: &mut Heap, bytes: u64) -> bool {
        let chunk = heap.config().tlab_bytes;
        assert!(
            bytes <= chunk,
            "cannot reserve {bytes} B in a {chunk}-B TLAB chunk"
        );
        if self.remaining() >= bytes {
            return true;
        }
        match heap.take_eden_chunk(chunk) {
            Some(r) => {
                self.cur = r.start().0;
                self.end = r.end().0;
                true
            }
            None => false,
        }
    }

    /// Allocates `size` bytes for an object with the given `lifetime`,
    /// writing the object's initialization stores through `sink` (header +
    /// zeroing: one store per line — the allocation stream's compulsory
    /// misses).
    ///
    /// Objects larger than the TLAB chunk are carved directly from eden.
    pub fn alloc(
        &mut self,
        heap: &mut Heap,
        size: u32,
        lifetime: Lifetime,
        sink: &mut (impl MemSink + ?Sized),
    ) -> AllocOutcome {
        let aligned = u64::from(size.max(16)).div_ceil(8) * 8;
        let chunk_size = heap.config().tlab_bytes;
        let addr = if aligned > chunk_size {
            // Humongous allocation straight from eden.
            match heap.take_eden_chunk(aligned) {
                Some(r) => r.start(),
                None => return AllocOutcome::NeedsGc,
            }
        } else {
            if self.remaining() < aligned {
                match heap.take_eden_chunk(chunk_size) {
                    Some(r) => {
                        self.cur = r.start().0;
                        self.end = r.end().0;
                    }
                    None => return AllocOutcome::NeedsGc,
                }
            }
            let a = Addr(self.cur);
            self.cur += aligned;
            a
        };
        // ~4 instructions of allocation path per 32 bytes initialized.
        sink.instructions(4 + aligned / 8);
        sink.sweep(AccessKind::Store, AddrRange::new(addr, aligned));
        let size32 = u32::try_from(aligned).expect("object size fits u32");
        AllocOutcome::Ok(heap.register_young(addr, size32, lifetime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{HeapConfig, HeapGeometry};
    use memsys::CountingSink;

    fn heap() -> Heap {
        Heap::new(
            HeapConfig {
                geometry: HeapGeometry {
                    eden: 1 << 20,
                    survivor: 256 << 10,
                    old: 4 << 20,
                },
                tenure_age: 1,
                tlab_bytes: 4096,
            },
            AddrRange::new(Addr(0x4000_0000), 16 << 20),
        )
    }

    #[test]
    fn consecutive_allocations_are_contiguous() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let a = t
            .alloc(&mut h, 64, Lifetime::Ephemeral, &mut sink)
            .ok()
            .unwrap();
        let b = t
            .alloc(&mut h, 64, Lifetime::Ephemeral, &mut sink)
            .ok()
            .unwrap();
        assert_eq!(h.addr_of(b).0, h.addr_of(a).0 + 64);
    }

    #[test]
    fn two_threads_allocate_in_disjoint_chunks() {
        let mut h = heap();
        let mut t1 = Tlab::new();
        let mut t2 = Tlab::new();
        let mut sink = CountingSink::new();
        let a = t1
            .alloc(&mut h, 64, Lifetime::Ephemeral, &mut sink)
            .ok()
            .unwrap();
        let b = t2
            .alloc(&mut h, 64, Lifetime::Ephemeral, &mut sink)
            .ok()
            .unwrap();
        let dist = h.addr_of(b).0.abs_diff(h.addr_of(a).0);
        assert!(dist >= 4096, "different TLAB chunks, no false sharing");
    }

    #[test]
    fn init_stores_cover_object_lines() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        t.alloc(&mut h, 256, Lifetime::Ephemeral, &mut sink);
        assert!(sink.stores >= 256 / 64, "one init store per line at least");
        assert!(sink.instructions > 0);
    }

    #[test]
    fn humongous_allocation_bypasses_tlab() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let big = t
            .alloc(&mut h, 32 << 10, Lifetime::Ephemeral, &mut sink)
            .ok()
            .unwrap();
        assert!(h.size_of(big) >= 32 << 10);
        assert_eq!(t.remaining(), 0, "TLAB untouched by humongous path");
    }

    #[test]
    fn exhausted_eden_requests_gc() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let mut needs_gc = false;
        for _ in 0..100_000 {
            if t.alloc(&mut h, 1024, Lifetime::Ephemeral, &mut sink) == AllocOutcome::NeedsGc {
                needs_gc = true;
                break;
            }
        }
        assert!(needs_gc, "1 MB eden must exhaust");
        assert!(h.eden_occupancy() > 0.95);
    }

    #[test]
    fn minimum_object_size_is_applied() {
        let mut h = heap();
        let mut t = Tlab::new();
        let mut sink = CountingSink::new();
        let id = t
            .alloc(&mut h, 1, Lifetime::Ephemeral, &mut sink)
            .ok()
            .unwrap();
        assert!(h.size_of(id) >= 16, "Java object header minimum");
    }
}
