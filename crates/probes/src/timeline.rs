//! Chrome trace-event export: the RunLog as a scrubbable timeline.
//!
//! The paper's methodology lives on *time-correlated* views — GC
//! pauses, miss phases and bus traffic lined up on one axis — so the
//! RunLog's sim-time [`EventEntry`] records, interval counter series
//! and wall-clock job spans render into the Chrome trace-event JSON
//! format that Perfetto and `chrome://tracing` load directly
//! (`simreport --trace TRACE.json`).
//!
//! Layout:
//! - one *process* per run (`pid = run + 1`) holds the sim-time
//!   tracks, cycles as the time axis: per job a lane for GC activity
//!   (`gc.pause` spans, `window.reset` instants), a lane for
//!   sampled-mode unit strata (`unit.detailed` / `unit.fast` /
//!   `unit.recovery`), and a lane for DRAM queue-stall episodes —
//!   spans emit as `X` complete events (stall episodes may overlap, so
//!   `B`/`E` nesting is not assumed), instants as `i`;
//! - interval counter snapshots emit as `C` counter tracks (the
//!   preferred `simstat` columns) on a per-job lane;
//! - `pid = 0` holds one wall-clock track per worker, each job an `X`
//!   span at its cumulative claim-order offset, microseconds axis.
//!
//! [`validate_chrome_trace`] is the in-tree checker wired into
//! `simreport --check`: the document must parse, every track's
//! timestamps must be monotone non-decreasing, and `B`/`E` pairs must
//! balance.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::report::{EventEntry, ParsedLog, SIMSTAT_COLS};

/// Sim-time lanes per job inside a run's process. Lane indices are
/// stable so thread ids (`tid = job * LANES + lane`) stay comparable
/// across exports.
const LANES: u64 = 5;
const LANE_GC: u64 = 0;
const LANE_UNITS: u64 = 1;
const LANE_DRAM: u64 = 2;
const LANE_OTHER: u64 = 3;
const LANE_COUNTERS: u64 = 4;

fn lane_of(name: &str) -> u64 {
    match name.split('.').next().unwrap_or("") {
        "gc" | "window" => LANE_GC,
        "unit" => LANE_UNITS,
        "dram" => LANE_DRAM,
        _ => LANE_OTHER,
    }
}

fn lane_label(lane: u64) -> &'static str {
    match lane {
        LANE_GC => "gc",
        LANE_UNITS => "sample units",
        LANE_DRAM => "dram stalls",
        _ => "events",
    }
}

/// Renders a parsed RunLog as a Chrome trace-event JSON document.
pub fn render_chrome_trace(log: &ParsedLog) -> String {
    let mut events: Vec<String> = Vec::new();

    // Process metadata: pid 0 is the wall-clock worker view, pid run+1
    // each run's sim-time view.
    events.push(meta_process(0, "workers (wall time, us)"));
    for (run, meta) in log.runs.iter().enumerate() {
        events.push(meta_process(
            run as u64 + 1,
            &format!("run {run} [{}] sim time (cycles)", meta.tag),
        ));
    }

    // Sim-time event lanes, one thread per (job, lane) that has events.
    let mut named_lanes: Vec<(u64, u64)> = Vec::new();
    for e in &log.events {
        let pid = e.run + 1;
        let tid = e.id * LANES + lane_of(&e.name);
        if !named_lanes.contains(&(pid, tid)) {
            named_lanes.push((pid, tid));
            events.push(meta_thread(
                pid,
                tid,
                &format!("job {} {}", e.id, lane_label(lane_of(&e.name))),
            ));
        }
        events.push(sim_event(e, pid, tid));
    }

    // Interval counter tracks: the preferred simstat columns that
    // actually appear, one `C` event per interval on the job's counter
    // lane. Chrome keys counter tracks on (pid, name), so the job id
    // is also folded into the name.
    for iv in &log.intervals {
        let pid = iv.run + 1;
        let tid = iv.id * LANES + LANE_COUNTERS;
        if !named_lanes.contains(&(pid, tid)) {
            named_lanes.push((pid, tid));
            events.push(meta_thread(pid, tid, &format!("job {} counters", iv.id)));
        }
        for col in SIMSTAT_COLS {
            if let Some((_, v)) = iv.counters.iter().find(|(n, _)| n == col) {
                events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":{},\"args\":{{\"value\":{v}}}}}",
                    iv.start,
                    json::quote(&format!("{col} (job {})", iv.id)),
                ));
            }
        }
    }

    // Wall-clock worker tracks: jobs land at their worker's cumulative
    // busy offset in claim order (the serializer already sorts spans by
    // (run, claim)), so each track reconstructs that worker's timeline.
    let mut seen_workers: Vec<u64> = Vec::new();
    let mut cursor_us: HashMap<u64, u64> = HashMap::new();
    for j in &log.jobs {
        if !seen_workers.contains(&j.worker) {
            seen_workers.push(j.worker);
            events.push(meta_thread(0, j.worker, &format!("worker {}", j.worker)));
        }
        let start = *cursor_us.get(&j.worker).unwrap_or(&0);
        let dur = (j.wall_secs * 1e6).round().max(0.0) as u64;
        let label = j
            .label
            .clone()
            .unwrap_or_else(|| format!("run {} job {}", j.run, j.id));
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{start},\"dur\":{dur},\"name\":{}}}",
            j.worker,
            json::quote(&label),
        ));
        cursor_us.insert(j.worker, start + dur);
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

fn sim_event(e: &EventEntry, pid: u64, tid: u64) -> String {
    if e.end == e.start {
        // Instant, thread-scoped.
        format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":{}}}",
            e.start,
            json::quote(&e.name),
        )
    } else {
        format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":{}}}",
            e.start,
            e.end - e.start,
            json::quote(&e.name),
        )
    }
}

fn meta_process(pid: u64, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
        json::quote(name),
    )
}

fn meta_thread(pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
        json::quote(name),
    )
}

/// What the validator counted in a well-formed trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events, metadata included.
    pub events: usize,
    /// Duration events (`X` completes plus balanced `B`/`E` pairs).
    pub spans: usize,
    /// `C` counter samples.
    pub counters: usize,
    /// `i` instant events.
    pub instants: usize,
}

/// Validates a Chrome trace-event JSON document: it must parse, carry a
/// `traceEvents` array, keep every `(pid, tid)` track's timestamps
/// monotone non-decreasing, and balance every `B` with a matching `E`.
pub fn validate_chrome_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(src).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("trace has no \"traceEvents\" array".into()),
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Per-track validation state: last timestamp and the open B stack.
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut open: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let pid = ev
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing \"pid\""))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing \"tid\""))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing \"ts\""))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative timestamp {ts}"));
        }
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(format!(
                    "event {i}: track ({pid},{tid}) timestamp {ts} goes backwards (after {prev})"
                ));
            }
        }
        last_ts.insert(track, ts);
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: X event missing \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative duration {dur}"));
                }
                summary.spans += 1;
            }
            "B" => {
                open.entry(track).or_default().push(name.to_string());
            }
            "E" => {
                let stack = open.entry(track).or_default();
                match stack.pop() {
                    Some(opened) if name.is_empty() || opened == name => summary.spans += 1,
                    Some(opened) => {
                        return Err(format!(
                            "event {i}: E {name:?} closes B {opened:?} on track ({pid},{tid})"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E {name:?} with no open B on track ({pid},{tid})"
                        ));
                    }
                }
            }
            "C" => summary.counters += 1,
            "i" | "I" => summary.instants += 1,
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for ((pid, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "track ({pid},{tid}): B {name:?} never closed ({} open)",
                stack.len()
            ));
        }
    }
    Ok(summary)
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        let _ = write!(
            s,
            "{} trace events ({} spans, {} counter samples, {} instants)",
            self.events, self.spans, self.counters, self.instants
        );
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::report::check;
    use crate::runlog::{EventRecord, IntervalRecord, JobSpan, RunLog, RunMeta};

    fn timeline_log() -> ParsedLog {
        use crate::registry::{CounterDesc, CounterKind, CounterSet, Snapshot};
        struct Cb(u64);
        impl CounterSet for Cb {
            fn descriptors(&self) -> &'static [CounterDesc] {
                const D: [CounterDesc; 1] = [CounterDesc::new("bus.snoop_cb", CounterKind::Count)];
                &D
            }
            fn values(&self, out: &mut Vec<u64>) {
                let Cb(v) = self;
                out.push(*v);
            }
        }

        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "figures".into(),
            effort: "quick".into(),
            threads: 2,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: Some("fig10".into()),
            worker: 1,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.25,
            counters: None,
        });
        log.record_intervals((0..2).map(|seq| IntervalRecord {
            run,
            id: 0,
            seq,
            start: seq as u64 * 1000,
            end: (seq as u64 + 1) * 1000,
            gc: false,
            counters: Snapshot::of(&Cb(seq as u64 + 5)),
        }));
        log.record_events([
            EventRecord {
                run,
                id: 0,
                name: "window.reset".into(),
                start: 0,
                end: 0,
            },
            EventRecord {
                run,
                id: 0,
                name: "gc.pause".into(),
                start: 300,
                end: 700,
            },
            EventRecord {
                run,
                id: 0,
                name: "unit.detailed".into(),
                start: 0,
                end: 1000,
            },
            EventRecord {
                run,
                id: 0,
                name: "unit.fast".into(),
                start: 1000,
                end: 2000,
            },
            EventRecord {
                run,
                id: 0,
                name: "dram.stall".into(),
                start: 450,
                end: 520,
            },
        ]);
        let jsonl = log.to_jsonl(&Provenance {
            git_rev: "abc".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
            workers: None,
            effort: None,
            sim_mode: None,
        });
        check(&jsonl).unwrap()
    }

    #[test]
    fn trace_round_trips_through_the_validator() {
        let trace = render_chrome_trace(&timeline_log());
        let summary = validate_chrome_trace(&trace).unwrap();
        // 4 sim spans + 1 worker span; 2 counter samples; 1 instant.
        assert_eq!(summary.spans, 5);
        assert_eq!(summary.counters, 2);
        assert_eq!(summary.instants, 1);
        // The three sim-time lanes all materialized.
        assert!(trace.contains("\"job 0 gc\""));
        assert!(trace.contains("\"job 0 sample units\""));
        assert!(trace.contains("\"job 0 dram stalls\""));
        assert!(trace.contains("\"worker 1\""));
        assert!(trace.contains("bus.snoop_cb (job 0)"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        // Backwards timestamps on one track.
        let bad = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":0,"ts":100,"dur":5,"name":"a"},
            {"ph":"X","pid":1,"tid":0,"ts":50,"dur":5,"name":"b"}
        ]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("goes backwards"));
        // Unbalanced B.
        let bad = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":1,"name":"a"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("never closed"));
        // E without B.
        let bad = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":1,"name":"a"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no open B"));
        // Mismatched E name.
        let bad = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1,"name":"a"},
            {"ph":"E","pid":1,"tid":0,"ts":2,"name":"b"}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("closes"));
        // Balanced pairs pass and count as spans.
        let ok = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1,"name":"a"},
            {"ph":"E","pid":1,"tid":0,"ts":2,"name":"a"}
        ]}"#;
        assert_eq!(validate_chrome_trace(ok).unwrap().spans, 1);
    }

    #[test]
    fn distinct_tracks_may_interleave_timestamps() {
        // Monotonicity is per (pid, tid), not global.
        let ok = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":0,"ts":100,"dur":5,"name":"a"},
            {"ph":"X","pid":1,"tid":1,"ts":10,"dur":5,"name":"b"},
            {"ph":"X","pid":1,"tid":0,"ts":200,"dur":5,"name":"c"}
        ]}"#;
        assert_eq!(validate_chrome_trace(ok).unwrap().spans, 3);
    }
}
