//! The run event log: structured spans from the experiment-plan runner.
//!
//! The plan runner (core's `ExperimentPlan`) is the machine that
//! produces every figure, and before this crate it was a black box: you
//! could see merged outputs but not which worker ran which job, in what
//! order jobs were claimed, or how the largest-first cost hints compared
//! to measured wall time. A [`RunLog`] is the shared sink the runner
//! reports into — one [`RunMeta`] per `run_*` call, one [`JobSpan`] per
//! job — serialized as JSONL for `simreport` and CI artifacts.
//!
//! Determinism contract: workers record spans *as jobs finish*, through
//! a mutex that is never held while a job computes, and nothing in this
//! module touches the output slots the runner merges in input order.
//! Attaching a log must leave experiment outputs bit-identical
//! (`tests/determinism.rs` enforces this).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::Mutex;

use crate::json;
use crate::provenance::Provenance;
use crate::registry::Snapshot;

/// Metadata for one `run_*` invocation on a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Caller-chosen label, e.g. `"serial"` / `"parallel"`.
    pub tag: String,
    /// The plan's effort preset name.
    pub effort: String,
    /// Worker threads the plan was configured with.
    pub threads: usize,
    /// Number of jobs in the batch.
    pub jobs: usize,
}

/// One job execution inside a run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpan {
    /// Which run (as returned by [`RunLog::begin_run`]) this span
    /// belongs to.
    pub run: usize,
    /// Input-order index of the job.
    pub id: usize,
    /// Human label for the job, when the caller supplied one.
    pub label: Option<String>,
    /// Worker thread that executed the job (0 for the serial path).
    pub worker: usize,
    /// Position in the claim order: 0 was claimed first.
    pub claim: usize,
    /// The scheduling cost hint, if the run was hinted.
    pub cost_hint: Option<u64>,
    /// Measured wall time of the job body, in seconds.
    pub wall_secs: f64,
    /// End-of-job counter snapshot, when the job captured one.
    pub counters: Option<Snapshot>,
}

/// A thread-safe sink for run metadata and job spans.
///
/// One log may span several plan runs (bench_plan logs its serial and
/// parallel passes into the same file). Interior mutability keeps the
/// runner's signature simple: workers share `&RunLog`.
#[derive(Debug, Default)]
pub struct RunLog {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    runs: Vec<RunMeta>,
    spans: Vec<JobSpan>,
}

impl RunLog {
    /// An empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Registers a new run and returns its id for subsequent spans.
    pub fn begin_run(&self, meta: RunMeta) -> usize {
        let mut inner = self.inner.lock().expect("run log poisoned");
        inner.runs.push(meta);
        inner.runs.len() - 1
    }

    /// Records one finished job. Called from worker threads; the lock
    /// is held only for the push, never while a job computes.
    pub fn record_span(&self, span: JobSpan) {
        self.inner
            .lock()
            .expect("run log poisoned")
            .spans
            .push(span);
    }

    /// Number of runs begun so far.
    pub fn run_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").runs.len()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").spans.len()
    }

    /// Serializes the log as JSONL: one `provenance` line, one `run`
    /// line per run, one `job` line per span. Spans are ordered by
    /// `(run, claim)` so the file is stable across thread timing —
    /// parallel runs race only in *completion* order, which is the one
    /// order we deliberately do not record.
    pub fn write_to<W: Write>(&self, mut w: W, prov: &Provenance) -> io::Result<()> {
        let inner = self.inner.lock().expect("run log poisoned");
        writeln!(w, "{}", prov.to_json_line())?;
        for (run, meta) in inner.runs.iter().enumerate() {
            writeln!(
                w,
                "{{\"ev\":\"run\",\"run\":{run},\"tag\":{},\"effort\":{},\"threads\":{},\"jobs\":{}}}",
                json::quote(&meta.tag),
                json::quote(&meta.effort),
                meta.threads,
                meta.jobs,
            )?;
        }
        let mut spans: Vec<&JobSpan> = inner.spans.iter().collect();
        spans.sort_by_key(|s| (s.run, s.claim, s.id));
        for s in spans {
            writeln!(w, "{}", span_json(s))?;
        }
        Ok(())
    }

    /// The serialized JSONL as a string (testing / small logs).
    pub fn to_jsonl(&self, prov: &Provenance) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf, prov)
            .expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("JSONL is UTF-8")
    }
}

fn span_json(s: &JobSpan) -> String {
    let mut line = String::new();
    write!(
        line,
        "{{\"ev\":\"job\",\"run\":{},\"id\":{},\"worker\":{},\"claim\":{}",
        s.run, s.id, s.worker, s.claim
    )
    .expect("writing to String cannot fail");
    if let Some(label) = &s.label {
        write!(line, ",\"label\":{}", json::quote(label)).unwrap();
    }
    if let Some(hint) = s.cost_hint {
        write!(line, ",\"cost_hint\":{hint}").unwrap();
    }
    write!(line, ",\"wall_secs\":{:.6}", s.wall_secs).unwrap();
    if let Some(counters) = &s.counters {
        write!(line, ",\"counters\":{}", counters.to_json()).unwrap();
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::registry::{CounterDesc, CounterKind, CounterSet};

    struct One(u64);
    impl CounterSet for One {
        fn descriptors(&self) -> &'static [CounterDesc] {
            const D: [CounterDesc; 1] = [CounterDesc::new("one.v", CounterKind::Count)];
            &D
        }
        fn values(&self, out: &mut Vec<u64>) {
            let One(v) = self;
            out.push(*v);
        }
    }

    fn test_prov() -> Provenance {
        Provenance {
            git_rev: "deadbeef".into(),
            hostname: "testhost".into(),
            cpu_count: 4,
            timestamp: 1_700_000_000,
        }
    }

    #[test]
    fn serializes_runs_and_spans_as_jsonl() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "parallel".into(),
            effort: "quick".into(),
            threads: 2,
            jobs: 2,
        });
        log.record_span(JobSpan {
            run,
            id: 1,
            label: Some("seed-1".into()),
            worker: 1,
            claim: 1,
            cost_hint: Some(10),
            wall_secs: 0.25,
            counters: Some(Snapshot::of(&One(7))),
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: None,
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.5,
            counters: None,
        });

        let text = log.to_jsonl(&test_prov());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);

        let prov = parse(lines[0]).unwrap();
        assert_eq!(prov.get("ev").and_then(Json::as_str), Some("provenance"));
        assert_eq!(prov.get("git_rev").and_then(Json::as_str), Some("deadbeef"));

        let meta = parse(lines[1]).unwrap();
        assert_eq!(meta.get("ev").and_then(Json::as_str), Some("run"));
        assert_eq!(meta.get("tag").and_then(Json::as_str), Some("parallel"));
        assert_eq!(meta.get("jobs").and_then(Json::as_u64), Some(2));

        // Spans come out claim-ordered regardless of recording order.
        let first = parse(lines[2]).unwrap();
        assert_eq!(first.get("claim").and_then(Json::as_u64), Some(0));
        assert_eq!(first.get("id").and_then(Json::as_u64), Some(0));
        assert_eq!(first.get("label"), None);
        assert_eq!(first.get("counters"), None);

        let second = parse(lines[3]).unwrap();
        assert_eq!(second.get("label").and_then(Json::as_str), Some("seed-1"));
        assert_eq!(second.get("cost_hint").and_then(Json::as_u64), Some(10));
        assert_eq!(
            second
                .get("counters")
                .and_then(|c| c.get("one.v"))
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    use crate::json::Json;

    #[test]
    fn log_is_shareable_across_threads() {
        let log = std::sync::Arc::new(RunLog::new());
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 4,
            jobs: 8,
        });
        std::thread::scope(|scope| {
            for w in 0..4 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for j in 0..2 {
                        log.record_span(JobSpan {
                            run,
                            id: w * 2 + j,
                            label: None,
                            worker: w,
                            claim: w * 2 + j,
                            cost_hint: None,
                            wall_secs: 0.0,
                            counters: None,
                        });
                    }
                });
            }
        });
        assert_eq!(log.span_count(), 8);
    }
}
