//! The run event log: structured spans from the experiment-plan runner.
//!
//! The plan runner (core's `ExperimentPlan`) is the machine that
//! produces every figure, and before this crate it was a black box: you
//! could see merged outputs but not which worker ran which job, in what
//! order jobs were claimed, or how the largest-first cost hints compared
//! to measured wall time. A [`RunLog`] is the shared sink the runner
//! reports into — one [`RunMeta`] per `run_*` call, one [`JobSpan`] per
//! job — serialized as JSONL for `simreport` and CI artifacts.
//!
//! Determinism contract: workers record spans *as jobs finish*, through
//! a mutex that is never held while a job computes, and nothing in this
//! module touches the output slots the runner merges in input order.
//! Attaching a log must leave experiment outputs bit-identical
//! (`tests/determinism.rs` enforces this).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::Mutex;

use crate::hist::Histogram;
use crate::json;
use crate::provenance::Provenance;
use crate::registry::Snapshot;

/// Metadata for one `run_*` invocation on a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Caller-chosen label, e.g. `"serial"` / `"parallel"`.
    pub tag: String,
    /// The plan's effort preset name.
    pub effort: String,
    /// Worker threads the plan was configured with.
    pub threads: usize,
    /// Number of jobs in the batch.
    pub jobs: usize,
}

/// One job execution inside a run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpan {
    /// Which run (as returned by [`RunLog::begin_run`]) this span
    /// belongs to.
    pub run: usize,
    /// Input-order index of the job.
    pub id: usize,
    /// Human label for the job, when the caller supplied one.
    pub label: Option<String>,
    /// Worker thread that executed the job (0 for the serial path).
    pub worker: usize,
    /// Position in the claim order: 0 was claimed first.
    pub claim: usize,
    /// The scheduling cost hint, if the run was hinted.
    pub cost_hint: Option<u64>,
    /// Measured wall time of the job body, in seconds.
    pub wall_secs: f64,
    /// End-of-job counter snapshot, when the job captured one.
    pub counters: Option<Snapshot>,
}

/// One interval sample from a job's `IntervalSampler`: the counter
/// deltas over `[start, end)` simulated cycles, with a GC-activity
/// flag. The `simstat` time-series record.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Which run this interval belongs to.
    pub run: usize,
    /// Input-order index of the job that sampled it.
    pub id: usize,
    /// Interval sequence number within the job (0 first).
    pub seq: usize,
    /// Simulated cycle the interval starts at.
    pub start: u64,
    /// Simulated cycle the interval ends at (exclusive).
    pub end: u64,
    /// Whether a GC pause overlapped the interval.
    pub gc: bool,
    /// Counter deltas over the interval (`Ratio` counters carry the
    /// end-of-interval value; see `Snapshot::delta`).
    pub counters: Snapshot,
}

/// One named latency histogram captured by a job (memory-access
/// latency, store-buffer drain, transaction response time, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct HistRecord {
    /// Which run this histogram belongs to.
    pub run: usize,
    /// Input-order index of the job that captured it.
    pub id: usize,
    /// Dot-separated histogram name, e.g. `mem.latency`.
    pub name: String,
    /// The bucket data.
    pub hist: Histogram,
}

/// One sample unit of a sampled-mode job: a fixed-cycle segment of the
/// measurement window, tagged with the signature cluster it was
/// assigned to, whether it was simulated in detail, and the
/// extrapolation weight of its cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleUnitRecord {
    /// Which run this unit belongs to.
    pub run: usize,
    /// Input-order index of the job that ran it.
    pub id: usize,
    /// Unit sequence number within the job's window (0 first).
    pub unit: usize,
    /// Signature cluster the unit was assigned to.
    pub cluster: usize,
    /// Simulated cycle the unit starts at.
    pub start: u64,
    /// Simulated cycle the unit ends at (exclusive).
    pub end: u64,
    /// Whether the unit was simulated in detail (vs fast-forwarded).
    pub detailed: bool,
    /// The unit's cluster population share of the window, in ppm.
    pub weight_ppm: u64,
}

/// One sim-time event on a job's timeline: a named span (or instant,
/// when `end == start`) stamped in simulated cycles. GC pauses, window
/// resets, sampled-mode unit strata and DRAM queue-stall episodes all
/// land here; `probes::timeline` turns them into Chrome trace tracks.
///
/// Like every other record kind, events are collected on worker threads
/// *after* a job finishes and never touch the runner's merge path, so
/// recording them preserves worker-count bit-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Which run this event belongs to.
    pub run: usize,
    /// Input-order index of the job whose timeline it is.
    pub id: usize,
    /// Dot-separated event name, e.g. `gc.pause` / `unit.detailed`.
    pub name: String,
    /// Simulated cycle the event begins at.
    pub start: u64,
    /// Simulated cycle the event ends at (inclusive of zero width:
    /// `end == start` marks an instant event).
    pub end: u64,
}

/// One weighted folded stack from a job's cycle-attribution profiler:
/// a semicolon-separated frame path (`phase;component;cause;region`)
/// with the stall cycles attributed to it. The flamegraph record —
/// `simreport --folded` renders these in the format inferno and
/// speedscope consume.
///
/// Like every other record kind, attribution stacks are collected on
/// worker threads after a job finishes and never touch the runner's
/// merge path, so recording them preserves worker-count bit-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttribRecord {
    /// Which run this stack belongs to.
    pub run: usize,
    /// Input-order index of the job that profiled it.
    pub id: usize,
    /// Semicolon-separated frames, e.g. `mutator;data_stall;c2c;old_gen`.
    pub stack: String,
    /// Cycles attributed to this stack.
    pub cycles: u64,
}

/// A thread-safe sink for run metadata and job spans.
///
/// One log may span several plan runs (bench_plan logs its serial and
/// parallel passes into the same file). Interior mutability keeps the
/// runner's signature simple: workers share `&RunLog`.
#[derive(Debug, Default)]
pub struct RunLog {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    runs: Vec<RunMeta>,
    spans: Vec<JobSpan>,
    intervals: Vec<IntervalRecord>,
    hists: Vec<HistRecord>,
    sample_units: Vec<SampleUnitRecord>,
    events: Vec<EventRecord>,
    attribs: Vec<AttribRecord>,
}

impl RunLog {
    /// An empty log.
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Registers a new run and returns its id for subsequent spans.
    pub fn begin_run(&self, meta: RunMeta) -> usize {
        let mut inner = self.inner.lock().expect("run log poisoned");
        inner.runs.push(meta);
        inner.runs.len() - 1
    }

    /// Records one finished job. Called from worker threads; the lock
    /// is held only for the push, never while a job computes.
    pub fn record_span(&self, span: JobSpan) {
        self.inner
            .lock()
            .expect("run log poisoned")
            .spans
            .push(span);
    }

    /// Records one job's interval series. Like spans, this happens on
    /// worker threads as jobs finish, never inside the merge.
    pub fn record_intervals(&self, intervals: impl IntoIterator<Item = IntervalRecord>) {
        self.inner
            .lock()
            .expect("run log poisoned")
            .intervals
            .extend(intervals);
    }

    /// Records one named histogram for a job.
    pub fn record_hist(&self, rec: HistRecord) {
        self.inner.lock().expect("run log poisoned").hists.push(rec);
    }

    /// Records a sampled job's unit schedule (one record per sample
    /// unit). Worker-thread path, same locking discipline as spans.
    pub fn record_sample_units(&self, units: impl IntoIterator<Item = SampleUnitRecord>) {
        self.inner
            .lock()
            .expect("run log poisoned")
            .sample_units
            .extend(units);
    }

    /// Records a job's sim-time events (GC pauses, window resets, unit
    /// strata, DRAM stalls). Worker-thread path, same locking
    /// discipline as spans.
    pub fn record_events(&self, events: impl IntoIterator<Item = EventRecord>) {
        self.inner
            .lock()
            .expect("run log poisoned")
            .events
            .extend(events);
    }

    /// Records a job's attribution stacks. Worker-thread path, same
    /// locking discipline as spans.
    pub fn record_attribs(&self, attribs: impl IntoIterator<Item = AttribRecord>) {
        self.inner
            .lock()
            .expect("run log poisoned")
            .attribs
            .extend(attribs);
    }

    /// Number of runs begun so far.
    pub fn run_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").runs.len()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").spans.len()
    }

    /// Number of interval records captured so far.
    pub fn interval_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").intervals.len()
    }

    /// Number of histogram records captured so far.
    pub fn hist_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").hists.len()
    }

    /// Number of sample-unit records captured so far.
    pub fn sample_unit_count(&self) -> usize {
        self.inner
            .lock()
            .expect("run log poisoned")
            .sample_units
            .len()
    }

    /// Number of event records captured so far.
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").events.len()
    }

    /// Number of attribution records captured so far.
    pub fn attrib_count(&self) -> usize {
        self.inner.lock().expect("run log poisoned").attribs.len()
    }

    /// Serializes the log as JSONL: one `provenance` line, one `run`
    /// line per run, one `job` line per span, then `interval`, `hist`,
    /// `sample_unit`, `event` and `attrib` lines. Spans are ordered by
    /// `(run, claim)`, intervals by `(run, id, seq)`, histograms by
    /// `(run, id, name)`, sample units by `(run, id, unit)`, events by
    /// `(run, id, start, end, name)`, attribution stacks by
    /// `(run, id, stack)`, so the file
    /// is stable across thread timing — parallel runs race only in
    /// *completion* order, which is the one order we deliberately do
    /// not record.
    pub fn write_to<W: Write>(&self, mut w: W, prov: &Provenance) -> io::Result<()> {
        let inner = self.inner.lock().expect("run log poisoned");
        writeln!(w, "{}", prov.to_json_line())?;
        for (run, meta) in inner.runs.iter().enumerate() {
            writeln!(
                w,
                "{{\"ev\":\"run\",\"run\":{run},\"tag\":{},\"effort\":{},\"threads\":{},\"jobs\":{}}}",
                json::quote(&meta.tag),
                json::quote(&meta.effort),
                meta.threads,
                meta.jobs,
            )?;
        }
        let mut spans: Vec<&JobSpan> = inner.spans.iter().collect();
        spans.sort_by_key(|s| (s.run, s.claim, s.id));
        for s in spans {
            writeln!(w, "{}", span_json(s))?;
        }
        let mut intervals: Vec<&IntervalRecord> = inner.intervals.iter().collect();
        intervals.sort_by_key(|i| (i.run, i.id, i.seq));
        for i in intervals {
            writeln!(
                w,
                "{{\"ev\":\"interval\",\"run\":{},\"id\":{},\"seq\":{},\"start\":{},\"end\":{},\"gc\":{},\"counters\":{}}}",
                i.run,
                i.id,
                i.seq,
                i.start,
                i.end,
                i.gc,
                i.counters.to_json(),
            )?;
        }
        let mut hists: Vec<&HistRecord> = inner.hists.iter().collect();
        hists.sort_by(|a, b| (a.run, a.id, &a.name).cmp(&(b.run, b.id, &b.name)));
        for h in hists {
            writeln!(
                w,
                "{{\"ev\":\"hist\",\"run\":{},\"id\":{},\"name\":{},\"count\":{},\"sum\":{},\"buckets\":{}}}",
                h.run,
                h.id,
                json::quote(&h.name),
                h.hist.count(),
                h.hist.sum(),
                buckets_json(&h.hist),
            )?;
        }
        let mut units: Vec<&SampleUnitRecord> = inner.sample_units.iter().collect();
        units.sort_by_key(|u| (u.run, u.id, u.unit));
        for u in units {
            writeln!(
                w,
                "{{\"ev\":\"sample_unit\",\"run\":{},\"id\":{},\"unit\":{},\"cluster\":{},\"start\":{},\"end\":{},\"detailed\":{},\"weight_ppm\":{}}}",
                u.run, u.id, u.unit, u.cluster, u.start, u.end, u.detailed, u.weight_ppm,
            )?;
        }
        let mut events: Vec<&EventRecord> = inner.events.iter().collect();
        events.sort_by(|a, b| {
            (a.run, a.id, a.start, a.end, &a.name).cmp(&(b.run, b.id, b.start, b.end, &b.name))
        });
        for e in events {
            writeln!(
                w,
                "{{\"ev\":\"event\",\"run\":{},\"id\":{},\"name\":{},\"start\":{},\"end\":{}}}",
                e.run,
                e.id,
                json::quote(&e.name),
                e.start,
                e.end,
            )?;
        }
        let mut attribs: Vec<&AttribRecord> = inner.attribs.iter().collect();
        attribs.sort_by(|a, b| (a.run, a.id, &a.stack).cmp(&(b.run, b.id, &b.stack)));
        for a in attribs {
            writeln!(
                w,
                "{{\"ev\":\"attrib\",\"run\":{},\"id\":{},\"stack\":{},\"cycles\":{}}}",
                a.run,
                a.id,
                json::quote(&a.stack),
                a.cycles,
            )?;
        }
        Ok(())
    }

    /// The serialized JSONL as a string (testing / small logs).
    pub fn to_jsonl(&self, prov: &Provenance) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf, prov)
            .expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("JSONL is UTF-8")
    }
}

fn buckets_json(h: &Histogram) -> String {
    let mut s = String::from("[");
    for (i, b) in h.buckets().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&b.to_string());
    }
    s.push(']');
    s
}

fn span_json(s: &JobSpan) -> String {
    let mut line = String::new();
    write!(
        line,
        "{{\"ev\":\"job\",\"run\":{},\"id\":{},\"worker\":{},\"claim\":{}",
        s.run, s.id, s.worker, s.claim
    )
    .expect("writing to String cannot fail");
    if let Some(label) = &s.label {
        write!(line, ",\"label\":{}", json::quote(label)).unwrap();
    }
    if let Some(hint) = s.cost_hint {
        write!(line, ",\"cost_hint\":{hint}").unwrap();
    }
    write!(line, ",\"wall_secs\":{:.6}", s.wall_secs).unwrap();
    if let Some(counters) = &s.counters {
        write!(line, ",\"counters\":{}", counters.to_json()).unwrap();
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::registry::{CounterDesc, CounterKind, CounterSet};

    struct One(u64);
    impl CounterSet for One {
        fn descriptors(&self) -> &'static [CounterDesc] {
            const D: [CounterDesc; 1] = [CounterDesc::new("one.v", CounterKind::Count)];
            &D
        }
        fn values(&self, out: &mut Vec<u64>) {
            let One(v) = self;
            out.push(*v);
        }
    }

    fn test_prov() -> Provenance {
        Provenance {
            git_rev: "deadbeef".into(),
            hostname: "testhost".into(),
            cpu_count: 4,
            timestamp: 1_700_000_000,
            workers: None,
            effort: None,
            sim_mode: None,
        }
    }

    #[test]
    fn serializes_runs_and_spans_as_jsonl() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "parallel".into(),
            effort: "quick".into(),
            threads: 2,
            jobs: 2,
        });
        log.record_span(JobSpan {
            run,
            id: 1,
            label: Some("seed-1".into()),
            worker: 1,
            claim: 1,
            cost_hint: Some(10),
            wall_secs: 0.25,
            counters: Some(Snapshot::of(&One(7))),
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: None,
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.5,
            counters: None,
        });

        let text = log.to_jsonl(&test_prov());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);

        let prov = parse(lines[0]).unwrap();
        assert_eq!(prov.get("ev").and_then(Json::as_str), Some("provenance"));
        assert_eq!(prov.get("git_rev").and_then(Json::as_str), Some("deadbeef"));

        let meta = parse(lines[1]).unwrap();
        assert_eq!(meta.get("ev").and_then(Json::as_str), Some("run"));
        assert_eq!(meta.get("tag").and_then(Json::as_str), Some("parallel"));
        assert_eq!(meta.get("jobs").and_then(Json::as_u64), Some(2));

        // Spans come out claim-ordered regardless of recording order.
        let first = parse(lines[2]).unwrap();
        assert_eq!(first.get("claim").and_then(Json::as_u64), Some(0));
        assert_eq!(first.get("id").and_then(Json::as_u64), Some(0));
        assert_eq!(first.get("label"), None);
        assert_eq!(first.get("counters"), None);

        let second = parse(lines[3]).unwrap();
        assert_eq!(second.get("label").and_then(Json::as_str), Some("seed-1"));
        assert_eq!(second.get("cost_hint").and_then(Json::as_u64), Some(10));
        assert_eq!(
            second
                .get("counters")
                .and_then(|c| c.get("one.v"))
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    use crate::json::Json;

    #[test]
    fn intervals_and_hists_serialize_sorted_after_spans() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 2,
        });
        for id in 0..2usize {
            log.record_span(JobSpan {
                run,
                id,
                label: None,
                worker: 0,
                claim: id,
                cost_hint: None,
                wall_secs: 0.0,
                counters: None,
            });
        }
        // Record job 1's series before job 0's: the file must still
        // come out (run, id, seq)-ordered.
        log.record_intervals((0..2).map(|seq| IntervalRecord {
            run,
            id: 1,
            seq,
            start: seq as u64 * 100,
            end: (seq as u64 + 1) * 100,
            gc: seq == 1,
            counters: Snapshot::of(&One(seq as u64)),
        }));
        log.record_intervals(std::iter::once(IntervalRecord {
            run,
            id: 0,
            seq: 0,
            start: 0,
            end: 100,
            gc: false,
            counters: Snapshot::of(&One(9)),
        }));
        let mut h = Histogram::new();
        h.record(7);
        log.record_hist(HistRecord {
            run,
            id: 0,
            name: "mem.latency".into(),
            hist: h,
        });
        assert_eq!(log.interval_count(), 3);
        assert_eq!(log.hist_count(), 1);

        let text = log.to_jsonl(&test_prov());
        let lines: Vec<&str> = text.lines().collect();
        // prov + run + 2 spans + 3 intervals + 1 hist.
        assert_eq!(lines.len(), 8);
        let iv = parse(lines[4]).unwrap();
        assert_eq!(iv.get("ev").and_then(Json::as_str), Some("interval"));
        assert_eq!(iv.get("id").and_then(Json::as_u64), Some(0));
        assert_eq!(iv.get("gc"), Some(&Json::Bool(false)));
        let iv2 = parse(lines[6]).unwrap();
        assert_eq!(iv2.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(iv2.get("seq").and_then(Json::as_u64), Some(1));
        assert_eq!(iv2.get("gc"), Some(&Json::Bool(true)));
        assert_eq!(
            iv2.get("counters")
                .and_then(|c| c.get("one.v"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let hist = parse(lines[7]).unwrap();
        assert_eq!(hist.get("ev").and_then(Json::as_str), Some("hist"));
        assert_eq!(hist.get("name").and_then(Json::as_str), Some("mem.latency"));
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        match hist.get("buckets").unwrap() {
            Json::Arr(items) => assert_eq!(items.len(), Histogram::BUCKETS),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn events_serialize_sorted_last() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: None,
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.0,
            counters: None,
        });
        // Recorded out of order; the file must come out
        // (run, id, start, end, name)-ordered.
        log.record_events([
            EventRecord {
                run,
                id: 0,
                name: "gc.pause".into(),
                start: 500,
                end: 900,
            },
            EventRecord {
                run,
                id: 0,
                name: "window.reset".into(),
                start: 100,
                end: 100,
            },
        ]);
        assert_eq!(log.event_count(), 2);

        let text = log.to_jsonl(&test_prov());
        let lines: Vec<&str> = text.lines().collect();
        // prov + run + span + 2 events.
        assert_eq!(lines.len(), 5);
        let instant = parse(lines[3]).unwrap();
        assert_eq!(instant.get("ev").and_then(Json::as_str), Some("event"));
        assert_eq!(
            instant.get("name").and_then(Json::as_str),
            Some("window.reset")
        );
        assert_eq!(instant.get("start").and_then(Json::as_u64), Some(100));
        assert_eq!(instant.get("end").and_then(Json::as_u64), Some(100));
        let span = parse(lines[4]).unwrap();
        assert_eq!(span.get("name").and_then(Json::as_str), Some("gc.pause"));
        assert_eq!(span.get("end").and_then(Json::as_u64), Some(900));
    }

    #[test]
    fn attribs_serialize_sorted_after_events() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: None,
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.0,
            counters: None,
        });
        // Recorded out of order; the file must come out
        // (run, id, stack)-ordered.
        log.record_attribs([
            AttribRecord {
                run,
                id: 0,
                stack: "mutator;data_stall;memory;eden".into(),
                cycles: 75,
            },
            AttribRecord {
                run,
                id: 0,
                stack: "gc;data_stall;c2c;old_gen".into(),
                cycles: 105,
            },
        ]);
        assert_eq!(log.attrib_count(), 2);

        let text = log.to_jsonl(&test_prov());
        let lines: Vec<&str> = text.lines().collect();
        // prov + run + span + 2 attribs.
        assert_eq!(lines.len(), 5);
        let first = parse(lines[3]).unwrap();
        assert_eq!(first.get("ev").and_then(Json::as_str), Some("attrib"));
        assert_eq!(
            first.get("stack").and_then(Json::as_str),
            Some("gc;data_stall;c2c;old_gen")
        );
        assert_eq!(first.get("cycles").and_then(Json::as_u64), Some(105));
        let second = parse(lines[4]).unwrap();
        assert_eq!(
            second.get("stack").and_then(Json::as_str),
            Some("mutator;data_stall;memory;eden")
        );
    }

    #[test]
    fn log_is_shareable_across_threads() {
        let log = std::sync::Arc::new(RunLog::new());
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 4,
            jobs: 8,
        });
        std::thread::scope(|scope| {
            for w in 0..4 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for j in 0..2 {
                        log.record_span(JobSpan {
                            run,
                            id: w * 2 + j,
                            label: None,
                            worker: w,
                            claim: w * 2 + j,
                            cost_hint: None,
                            wall_secs: 0.0,
                            counters: None,
                        });
                    }
                });
            }
        });
        assert_eq!(log.span_count(), 8);
    }
}
