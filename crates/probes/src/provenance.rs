//! Host/commit provenance stamped into RunLogs and `BENCH_*.json`.
//!
//! Archived benchmark numbers are only comparable if they say where
//! they came from; before this module `bench_smoke.sh` silently
//! overwrote `BENCH_memsys.json` with no record of host or commit.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Where and when a result was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Short git revision of the working tree, or `"unknown"`.
    pub git_rev: String,
    /// Host the run executed on, or `"unknown"`.
    pub hostname: String,
    /// Hardware parallelism available to the run.
    pub cpu_count: usize,
    /// UNIX timestamp (seconds) when the provenance was captured.
    pub timestamp: u64,
    /// Worker threads the run actually used (`None` when the producer
    /// has no worker pool). Distinct from `cpu_count`: a 16-cpu
    /// *simulated* shape benchmarked by a single-threaded driver
    /// records `cpu_count` = host parallelism, `workers` = 1.
    pub workers: Option<usize>,
    /// Effort level the run was sized at (e.g. `"quick"`), when the
    /// producer has one.
    pub effort: Option<String>,
    /// Simulation mode the run executed under (`"full"` or
    /// `"sampled"`), when the producer has one. Sampled-mode counters
    /// are extrapolated estimates, so comparing them against full-mode
    /// numbers is a category error — `simdiff` refuses the comparison.
    pub sim_mode: Option<String>,
}

impl Provenance {
    /// Captures provenance from the current environment. Every probe
    /// degrades to a placeholder rather than failing: provenance must
    /// never abort a benchmark.
    pub fn capture() -> Self {
        Provenance {
            git_rev: git_rev().unwrap_or_else(|| "unknown".into()),
            hostname: hostname().unwrap_or_else(|| "unknown".into()),
            cpu_count: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            timestamp: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            workers: None,
            effort: None,
            sim_mode: None,
        }
    }

    /// Records the worker-thread count the run used.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Records the effort level the run was sized at.
    pub fn with_effort(mut self, effort: impl Into<String>) -> Self {
        self.effort = Some(effort.into());
        self
    }

    /// Records the simulation mode the run executed under.
    pub fn with_sim_mode(mut self, sim_mode: impl Into<String>) -> Self {
        self.sim_mode = Some(sim_mode.into());
        self
    }

    /// The optional fields as a `,"k":v` JSON suffix (empty when unset).
    fn json_suffix(&self) -> String {
        let mut s = String::new();
        if let Some(w) = self.workers {
            s.push_str(&format!(",\"workers\":{w}"));
        }
        if let Some(e) = &self.effort {
            s.push_str(&format!(",\"effort\":{}", crate::json::quote(e)));
        }
        if let Some(m) = &self.sim_mode {
            s.push_str(&format!(",\"sim_mode\":{}", crate::json::quote(m)));
        }
        s
    }

    /// The provenance as a bare JSON object (for embedding in a
    /// `BENCH_*.json` document).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"git_rev\":{},\"hostname\":{},\"cpu_count\":{},\"timestamp\":{}{}}}",
            crate::json::quote(&self.git_rev),
            crate::json::quote(&self.hostname),
            self.cpu_count,
            self.timestamp,
            self.json_suffix(),
        )
    }

    /// The provenance as a RunLog JSONL event line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"ev\":\"provenance\",\"git_rev\":{},\"hostname\":{},\"cpu_count\":{},\"timestamp\":{}{}}}",
            crate::json::quote(&self.git_rev),
            crate::json::quote(&self.hostname),
            self.cpu_count,
            self.timestamp,
            self.json_suffix(),
        )
    }
}

fn git_rev() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if rev.is_empty() {
        None
    } else {
        Some(rev)
    }
}

fn hostname() -> Option<String> {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return Some(h);
        }
    }
    if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let h = h.trim().to_string();
        if !h.is_empty() {
            return Some(h);
        }
    }
    let out = Command::new("hostname").output().ok()?;
    let h = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if h.is_empty() {
        None
    } else {
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn capture_never_fails_and_serializes() {
        let p = Provenance::capture();
        assert!(p.cpu_count >= 1);

        let obj = parse(&p.to_json()).unwrap();
        assert!(obj.get("git_rev").and_then(Json::as_str).is_some());
        assert_eq!(
            obj.get("cpu_count").and_then(Json::as_u64),
            Some(p.cpu_count as u64)
        );

        let line = parse(&p.to_json_line()).unwrap();
        assert_eq!(line.get("ev").and_then(Json::as_str), Some("provenance"));
        assert_eq!(
            line.get("timestamp").and_then(Json::as_u64),
            Some(p.timestamp)
        );
        // Optional fields are absent until set.
        assert!(line.get("workers").is_none());
        assert!(line.get("effort").is_none());
        assert!(line.get("sim_mode").is_none());
    }

    #[test]
    fn workers_and_effort_serialize_when_set() {
        let p = Provenance::capture()
            .with_workers(3)
            .with_effort("quick")
            .with_sim_mode("full");
        for doc in [p.to_json(), p.to_json_line()] {
            let obj = parse(&doc).unwrap();
            assert_eq!(obj.get("workers").and_then(Json::as_u64), Some(3));
            assert_eq!(obj.get("effort").and_then(Json::as_str), Some("quick"));
            assert_eq!(obj.get("sim_mode").and_then(Json::as_str), Some("full"));
        }
    }
}
