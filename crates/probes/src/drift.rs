//! `simdiff`: counter-by-counter drift gating between RunLogs.
//!
//! A refactor that silently shifts `dram.stalled_cycles` by 4% is a
//! correctness bug in a simulator even though every test still passes.
//! This module turns the RunLog into a regression oracle: aggregate a
//! log's counters into a [`Baseline`], persist it (`BASELINES.json`)
//! with provenance, and [`diff`] a fresh run against it. Each counter
//! carries a [`DriftClass`] declared on its `CounterDesc` — `Exact`
//! counters (the deterministic majority: instruction counts, miss
//! counts, transaction totals) must match bit-for-bit, while
//! `Tolerance(ppm)` counters (DRAM timing, occupancy ratios) may move
//! within a declared band. Out-of-band drift ranks to the top of the
//! report and fails the CI gate.
//!
//! Comparability guard: a sampled-mode log's counters are extrapolated
//! estimates and an effort preset changes the workload size, so
//! comparing across `sim_mode` or `effort` is a category error —
//! mirrored from `bench_smoke.sh`'s host-class guard. Worker count is
//! stamped but *not* gating: worker-count bit-identity is an invariant
//! the determinism suite proves, so cross-worker diffs are legitimate.

use crate::json::{self, Json};
use crate::registry::{CounterDesc, DriftClass};
use crate::report::{ParsedLog, ProvEntry};

/// Resolves a counter name to its declared drift class by searching
/// the descriptor tables the caller registered.
pub struct DriftPolicy {
    tables: Vec<&'static [CounterDesc]>,
}

impl DriftPolicy {
    /// A policy over the given descriptor tables.
    pub fn new(tables: Vec<&'static [CounterDesc]>) -> Self {
        DriftPolicy { tables }
    }

    /// The drift class for `name`. Counters absent from every table
    /// (older logs, ad-hoc probes) fall back by convention: `_ppm`
    /// ratios get a 1% band, everything else is `Exact`.
    pub fn class_of(&self, name: &str) -> DriftClass {
        for table in &self.tables {
            if let Some(d) = table.iter().find(|d| d.name == name) {
                return d.drift;
            }
        }
        if name.ends_with("_ppm") {
            DriftClass::Tolerance(10_000)
        } else {
            DriftClass::Exact
        }
    }
}

/// A RunLog's counters aggregated across jobs, with the provenance
/// needed to refuse incomparable diffs.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Provenance of the log the baseline came from, when present.
    pub provenance: Option<ProvEntry>,
    /// `name → aggregated value`, sorted by name. Counts and cycles
    /// sum across jobs; `_ppm` ratios average.
    pub counters: Vec<(String, u64)>,
}

impl Baseline {
    /// Aggregates a parsed log's counters. Job-span end-of-run
    /// snapshots are preferred; logs whose spans carry no counters
    /// (e.g. interval-only captures) fall back to summing the interval
    /// series.
    pub fn from_log(log: &ParsedLog) -> Self {
        let mut sums: Vec<(String, u64, u64)> = Vec::new(); // name, sum, n
        let mut add = |name: &str, v: u64| {
            if let Some(slot) = sums.iter_mut().find(|(n, _, _)| n == name) {
                slot.1 += v;
                slot.2 += 1;
            } else {
                sums.push((name.to_string(), v, 1));
            }
        };
        let span_counters = log.jobs.iter().any(|j| !j.counters.is_empty());
        if span_counters {
            for j in &log.jobs {
                for (n, v) in &j.counters {
                    add(n, *v);
                }
            }
        } else {
            for iv in &log.intervals {
                for (n, v) in &iv.counters {
                    add(n, *v);
                }
            }
        }
        let mut counters: Vec<(String, u64)> = sums
            .into_iter()
            .map(|(n, sum, count)| {
                let v = if n.ends_with("_ppm") {
                    sum / count.max(1)
                } else {
                    sum
                };
                (n, v)
            })
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        Baseline {
            provenance: log.provenance.clone(),
            counters,
        }
    }

    /// Serializes the baseline as a `BASELINES.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"provenance\": ");
        match &self.provenance {
            Some(p) => {
                out.push_str(&format!(
                    "{{\"git_rev\":{},\"hostname\":{},\"cpu_count\":{},\"timestamp\":{}",
                    json::quote(&p.git_rev),
                    json::quote(&p.hostname),
                    p.cpu_count,
                    p.timestamp,
                ));
                if let Some(w) = p.workers {
                    out.push_str(&format!(",\"workers\":{w}"));
                }
                if let Some(e) = &p.effort {
                    out.push_str(&format!(",\"effort\":{}", json::quote(e)));
                }
                if let Some(m) = &p.sim_mode {
                    out.push_str(&format!(",\"sim_mode\":{}", json::quote(m)));
                }
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"counters\": {\n");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("    {}: {v}", json::quote(n)));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a `BASELINES.json` document.
    pub fn parse(src: &str) -> Result<Self, String> {
        let doc = json::parse(src).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let provenance = match doc.get("provenance") {
            None | Some(Json::Null) => None,
            Some(p) => Some(ProvEntry {
                git_rev: prov_str(p, "git_rev")?,
                hostname: prov_str(p, "hostname")?,
                cpu_count: p
                    .get("cpu_count")
                    .and_then(Json::as_u64)
                    .ok_or("baseline provenance: missing \"cpu_count\"")?,
                timestamp: p
                    .get("timestamp")
                    .and_then(Json::as_u64)
                    .ok_or("baseline provenance: missing \"timestamp\"")?,
                workers: p.get("workers").and_then(Json::as_u64),
                effort: p.get("effort").and_then(Json::as_str).map(String::from),
                sim_mode: p.get("sim_mode").and_then(Json::as_str).map(String::from),
            }),
        };
        let counters_obj = doc
            .get("counters")
            .ok_or("baseline has no \"counters\" object")?;
        let members = counters_obj
            .members()
            .ok_or("baseline \"counters\" is not an object")?;
        let mut counters = Vec::new();
        for (name, v) in members {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("baseline counter {name:?} is not a u64"))?;
            counters.push((name.clone(), v));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Baseline {
            provenance,
            counters,
        })
    }
}

fn prov_str(p: &Json, key: &str) -> Result<String, String> {
    p.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("baseline provenance: missing {key:?}"))
}

/// One counter's drift between baseline and current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftRow {
    /// Counter name.
    pub name: String,
    /// Baseline value.
    pub base: u64,
    /// Current value.
    pub current: u64,
    /// `|current - base| / max(base, 1)` in ppm.
    pub drift_ppm: u64,
    /// The class the policy resolved for this counter.
    pub class: DriftClass,
    /// Whether the drift exceeds the class's band.
    pub out_of_band: bool,
}

/// The full comparison: per-counter rows ranked worst-first, plus the
/// names each side had that the other lacked (both are failures — a
/// vanished counter is as suspicious as a drifted one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftReport {
    /// Per-counter drift, out-of-band rows first, then by drift.
    pub rows: Vec<DriftRow>,
    /// Counters in the baseline but not the current log.
    pub missing: Vec<String>,
    /// Counters in the current log but not the baseline.
    pub extra: Vec<String>,
}

impl DriftReport {
    /// Whether the comparison passes the gate.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.extra.is_empty() && !self.rows.iter().any(|r| r.out_of_band)
    }

    /// Renders the ranked drift table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>16} {:>16} {:>12}  {:<18} {}\n",
            "counter", "baseline", "current", "drift_ppm", "class", "verdict"
        ));
        for r in &self.rows {
            let class = match r.class {
                DriftClass::Exact => "exact".to_string(),
                DriftClass::Tolerance(ppm) => format!("tolerance({ppm})"),
            };
            out.push_str(&format!(
                "{:<28} {:>16} {:>16} {:>12}  {:<18} {}\n",
                r.name,
                r.base,
                r.current,
                r.drift_ppm,
                class,
                if r.out_of_band { "DRIFT" } else { "ok" }
            ));
        }
        for n in &self.missing {
            out.push_str(&format!("{n:<28} missing from current log: FAIL\n"));
        }
        for n in &self.extra {
            out.push_str(&format!("{n:<28} absent from baseline: FAIL\n"));
        }
        let bad = self.rows.iter().filter(|r| r.out_of_band).count();
        out.push_str(&format!(
            "{} counters compared, {} out of band, {} missing, {} extra: {}\n",
            self.rows.len(),
            bad,
            self.missing.len(),
            self.extra.len(),
            if self.ok() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Renders the comparison as a machine-readable JSON document (the
    /// `simdiff --json` output): the gate verdict, one row per compared
    /// counter in the same worst-first rank as [`render`](Self::render),
    /// and the missing/extra name lists. Tolerance rows carry their
    /// band as `band_ppm`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let class = match r.class {
                DriftClass::Exact => "\"exact\"".to_string(),
                DriftClass::Tolerance(band) => format!("\"tolerance\",\"band_ppm\":{band}"),
            };
            out.push_str(&format!(
                "{{\"counter\":{},\"baseline\":{},\"observed\":{},\"drift_ppm\":{},\"class\":{class},\"out_of_band\":{}}}",
                json::quote(&r.name),
                r.base,
                r.current,
                r.drift_ppm,
                r.out_of_band
            ));
        }
        out.push_str("\n  ],\n");
        let name_list = |names: &[String]| {
            names
                .iter()
                .map(|n| json::quote(n))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!("  \"missing\": [{}],\n", name_list(&self.missing)));
        out.push_str(&format!("  \"extra\": [{}]\n", name_list(&self.extra)));
        out.push_str("}\n");
        out
    }
}

/// Refuses comparisons whose provenance marks them incomparable:
/// mismatched effort preset or simulation mode. Returns a description
/// of the mismatch, or `None` when the diff is legitimate.
pub fn comparability_error(base: &Option<ProvEntry>, cur: &Option<ProvEntry>) -> Option<String> {
    let (b, c) = match (base, cur) {
        (Some(b), Some(c)) => (b, c),
        _ => return None, // no provenance on one side: nothing to refuse on
    };
    if b.effort != c.effort {
        return Some(format!(
            "effort mismatch: baseline {:?} vs current {:?} — different workload sizes are not comparable",
            b.effort, c.effort
        ));
    }
    if b.sim_mode != c.sim_mode {
        return Some(format!(
            "sim_mode mismatch: baseline {:?} vs current {:?} — sampled counters are extrapolated estimates, not comparable with full-mode counts",
            b.sim_mode, c.sim_mode
        ));
    }
    None
}

/// Compares two baselines counter-by-counter under `policy`.
pub fn diff(base: &Baseline, current: &Baseline, policy: &DriftPolicy) -> DriftReport {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, bv) in &base.counters {
        match current.counters.iter().find(|(n, _)| n == name) {
            Some((_, cv)) => {
                let delta = bv.abs_diff(*cv);
                let drift_ppm = delta.saturating_mul(1_000_000) / (*bv).max(1);
                let class = policy.class_of(name);
                let out_of_band = match class {
                    DriftClass::Exact => delta != 0,
                    DriftClass::Tolerance(band) => drift_ppm > band,
                };
                rows.push(DriftRow {
                    name: name.clone(),
                    base: *bv,
                    current: *cv,
                    drift_ppm,
                    class,
                    out_of_band,
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let extra: Vec<String> = current
        .counters
        .iter()
        .filter(|(n, _)| !base.counters.iter().any(|(bn, _)| bn == n))
        .map(|(n, _)| n.clone())
        .collect();
    rows.sort_by(|a, b| {
        b.out_of_band
            .cmp(&a.out_of_band)
            .then(b.drift_ppm.cmp(&a.drift_ppm))
            .then(a.name.cmp(&b.name))
    });
    DriftReport {
        rows,
        missing,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CounterKind;

    static TEST_DESCS: [CounterDesc; 3] = [
        CounterDesc::new("t.instr", CounterKind::Count),
        CounterDesc::new("t.stall_cycles", CounterKind::Cycles)
            .with_drift(DriftClass::Tolerance(50_000)),
        CounterDesc::new("t.rate_ppm", CounterKind::Ratio)
            .with_drift(DriftClass::Tolerance(20_000)),
    ];

    fn policy() -> DriftPolicy {
        DriftPolicy::new(vec![&TEST_DESCS])
    }

    fn base_with(counters: &[(&str, u64)]) -> Baseline {
        Baseline {
            provenance: None,
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn policy_resolves_declared_and_fallback_classes() {
        let p = policy();
        assert_eq!(p.class_of("t.instr"), DriftClass::Exact);
        assert_eq!(p.class_of("t.stall_cycles"), DriftClass::Tolerance(50_000));
        // Unknown names: ppm suffix gets the conventional band.
        assert_eq!(p.class_of("x.unknown"), DriftClass::Exact);
        assert_eq!(p.class_of("x.unknown_ppm"), DriftClass::Tolerance(10_000));
    }

    #[test]
    fn identical_baselines_pass() {
        let b = base_with(&[("t.instr", 1000), ("t.stall_cycles", 500)]);
        let report = diff(&b, &b.clone(), &policy());
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn exact_counter_rejects_any_drift_and_ranks_first() {
        let b = base_with(&[("t.instr", 1_000_000), ("t.stall_cycles", 1_000_000)]);
        let c = base_with(&[("t.instr", 1_000_001), ("t.stall_cycles", 1_010_000)]);
        let report = diff(&b, &c, &policy());
        assert!(!report.ok());
        // The exact 1-ppm drift is out of band; the 1% tolerant drift
        // is within its 5% band — and the failure ranks first.
        assert_eq!(report.rows[0].name, "t.instr");
        assert!(report.rows[0].out_of_band);
        assert!(!report.rows[1].out_of_band);
        assert!(report.render().contains("DRIFT"));
    }

    #[test]
    fn tolerance_counter_fails_outside_its_band() {
        let b = base_with(&[("t.stall_cycles", 1_000_000)]);
        let c = base_with(&[("t.stall_cycles", 1_060_000)]); // 6% > 5%
        let report = diff(&b, &c, &policy());
        assert!(!report.ok());
        assert_eq!(report.rows[0].drift_ppm, 60_000);
    }

    #[test]
    fn json_report_round_trips_and_ranks_like_the_table() {
        let b = base_with(&[
            ("t.instr", 1_000_000),
            ("t.stall_cycles", 1_000_000),
            ("t.gone", 5),
        ]);
        let c = base_with(&[
            ("t.instr", 1_000_001),
            ("t.stall_cycles", 1_010_000),
            ("t.new", 7),
        ]);
        let report = diff(&b, &c, &policy());
        let doc = json::parse(&report.render_json()).expect("render_json emits valid JSON");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let rows = doc.get("rows").and_then(Json::elements).unwrap();
        assert_eq!(rows.len(), 2);
        // Same worst-first rank as the text table: the exact failure
        // leads, with its full verdict fields.
        assert_eq!(
            rows[0].get("counter").and_then(Json::as_str),
            Some("t.instr")
        );
        assert_eq!(
            rows[0].get("baseline").and_then(Json::as_u64),
            Some(1_000_000)
        );
        assert_eq!(
            rows[0].get("observed").and_then(Json::as_u64),
            Some(1_000_001)
        );
        assert_eq!(rows[0].get("drift_ppm").and_then(Json::as_u64), Some(1));
        assert_eq!(rows[0].get("class").and_then(Json::as_str), Some("exact"));
        assert_eq!(
            rows[0].get("out_of_band").and_then(Json::as_bool),
            Some(true)
        );
        // Tolerance rows carry their band.
        assert_eq!(
            rows[1].get("class").and_then(Json::as_str),
            Some("tolerance")
        );
        assert_eq!(rows[1].get("band_ppm").and_then(Json::as_u64), Some(50_000));
        assert_eq!(
            rows[1].get("out_of_band").and_then(Json::as_bool),
            Some(false)
        );
        let missing = doc.get("missing").and_then(Json::elements).unwrap();
        assert_eq!(missing[0].as_str(), Some("t.gone"));
        let extra = doc.get("extra").and_then(Json::elements).unwrap();
        assert_eq!(extra[0].as_str(), Some("t.new"));

        // A clean diff renders ok=true with empty lists.
        let clean = diff(&b, &b.clone(), &policy());
        let doc = json::parse(&clean.render_json()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("missing").and_then(Json::elements).unwrap().len(),
            0
        );
    }

    #[test]
    fn missing_and_extra_counters_fail() {
        let b = base_with(&[("t.instr", 10), ("t.gone", 5)]);
        let c = base_with(&[("t.instr", 10), ("t.new", 7)]);
        let report = diff(&b, &c, &policy());
        assert!(!report.ok());
        assert_eq!(report.missing, vec!["t.gone".to_string()]);
        assert_eq!(report.extra, vec!["t.new".to_string()]);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let prov = ProvEntry {
            git_rev: "abc123".into(),
            hostname: "host".into(),
            cpu_count: 8,
            timestamp: 42,
            workers: Some(2),
            effort: Some("quick".into()),
            sim_mode: Some("full".into()),
        };
        let b = Baseline {
            provenance: Some(prov),
            counters: vec![("a.x".into(), 7), ("b.y_ppm".into(), 930_000)],
        };
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        // And without provenance.
        let bare = Baseline {
            provenance: None,
            counters: vec![("a".into(), 1)],
        };
        assert_eq!(Baseline::parse(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn comparability_guard_refuses_mode_and_effort_mismatch() {
        let mk = |effort: &str, mode: &str| {
            Some(ProvEntry {
                git_rev: "r".into(),
                hostname: "h".into(),
                cpu_count: 4,
                timestamp: 0,
                workers: Some(1),
                effort: Some(effort.into()),
                sim_mode: Some(mode.into()),
            })
        };
        assert!(comparability_error(&mk("quick", "full"), &mk("quick", "full")).is_none());
        let err = comparability_error(&mk("quick", "full"), &mk("paper", "full")).unwrap();
        assert!(err.contains("effort mismatch"));
        let err = comparability_error(&mk("quick", "full"), &mk("quick", "sampled")).unwrap();
        assert!(err.contains("sim_mode mismatch"));
        // Workers differ: NOT a refusal — bit-identity across worker
        // counts is the determinism suite's proven invariant.
        let mut w4 = mk("quick", "full");
        w4.as_mut().unwrap().workers = Some(4);
        assert!(comparability_error(&mk("quick", "full"), &w4).is_none());
        // Missing provenance on either side: comparison proceeds.
        assert!(comparability_error(&None, &mk("quick", "full")).is_none());
    }

    #[test]
    fn from_log_prefers_span_counters_and_averages_ppm() {
        use crate::provenance::Provenance;
        use crate::registry::{CounterSet, Snapshot};
        use crate::report::check;
        use crate::runlog::{JobSpan, RunLog, RunMeta};

        struct Two(u64, u64);
        impl CounterSet for Two {
            fn descriptors(&self) -> &'static [CounterDesc] {
                static D: [CounterDesc; 2] = [
                    CounterDesc::new("t.count", CounterKind::Count),
                    CounterDesc::new("t.rate_ppm", CounterKind::Ratio),
                ];
                &D
            }
            fn values(&self, out: &mut Vec<u64>) {
                let Two(a, b) = self;
                out.push(*a);
                out.push(*b);
            }
        }

        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 2,
        });
        for (id, set) in [Two(10, 400_000), Two(30, 600_000)].iter().enumerate() {
            log.record_span(JobSpan {
                run,
                id,
                label: None,
                worker: 0,
                claim: id,
                cost_hint: None,
                wall_secs: 0.1,
                counters: Some(Snapshot::of(set)),
            });
        }
        let prov = Provenance {
            git_rev: "r".into(),
            hostname: "h".into(),
            cpu_count: 1,
            timestamp: 0,
            workers: None,
            effort: None,
            sim_mode: None,
        };
        let parsed = check(&log.to_jsonl(&prov)).unwrap();
        let b = Baseline::from_log(&parsed);
        // Counts sum across jobs; ppm ratios average.
        assert_eq!(
            b.counters,
            vec![("t.count".into(), 40), ("t.rate_ppm".into(), 500_000)]
        );
        assert!(b.provenance.is_some());
    }
}
