//! # probes — cpustat/mpstat-grade telemetry for the simulator
//!
//! The paper's contribution *is* its instrumentation: UltraSPARC II
//! hardware counters read through Solaris `cpustat`, per-CPU mode
//! accounting through `mpstat`, and per-line communication statistics.
//! This crate is the reproduction's counterpart — one uniform surface
//! over every counter the simulation crates maintain:
//!
//! - [`registry`] — the counter registry: each stats struct publishes a
//!   static descriptor table (dot-separated name, kind) and can be
//!   sampled into a flat, ordered [`Snapshot`] of `name → u64` pairs,
//!   with deltas between snapshots. Registries *read* the existing
//!   fields; hot loops keep bumping plain integers, so attaching the
//!   registry changes nothing on the access path.
//! - [`runlog`] — the run event log: the experiment-plan runner emits
//!   one structured span per job (id, label, worker, claim order, cost
//!   hint, wall time, end-of-job counter snapshot) to a [`RunLog`] sink,
//!   serialized as JSONL. Emission happens on the worker threads,
//!   outside the input-order merge, so logged runs stay bit-identical
//!   to unlogged ones.
//! - [`hist`] — a dependency-free log2-bucketed [`Histogram`] with
//!   elementwise merge and deterministic integer quantiles, for the
//!   latency distributions (memory access, store-buffer drain,
//!   transaction response) that interval counters cannot carry.
//! - [`report`] — `mpstat`-style per-run worker tables and a
//!   `cpustat`-style counter dump rendered from a RunLog, in human text
//!   and machine CSV, plus `simstat` interval tables/sparklines,
//!   cycle-attribution CPI-stack tables with folded-stack flamegraph
//!   export, and the JSONL schema check behind `simreport --check`.
//! - [`provenance`] — host/commit/config metadata (`git_rev`,
//!   `hostname`, `cpu_count`, `timestamp`, worker count, effort,
//!   simulation mode) stamped into every RunLog and `BENCH_*.json` so
//!   archived results say where they came from.
//! - [`timeline`] — the run observatory's export path: sim-time
//!   [`runlog::EventRecord`]s (GC pauses, window resets, sample-unit
//!   strata, DRAM stall episodes) rendered as Chrome trace-event JSON
//!   for Perfetto / `chrome://tracing`, with the in-tree validator
//!   behind `simreport --check`.
//! - [`drift`] — the `simdiff` metric drift gate: RunLog counters
//!   aggregated into a provenance-stamped [`drift::Baseline`] and
//!   compared counter-by-counter under per-counter
//!   [`registry::DriftClass`] bands.
//! - [`json`] — the tiny JSON reader/writer the above share (the
//!   workspace is dependency-free by design; no serde).

pub mod drift;
pub mod hist;
pub mod json;
pub mod provenance;
pub mod registry;
pub mod report;
pub mod runlog;
pub mod timeline;

pub use hist::Histogram;
pub use json::{Json, JsonError};
pub use provenance::Provenance;
pub use registry::{CounterDesc, CounterKind, CounterSet, DriftClass, Snapshot};
pub use runlog::{AttribRecord, EventRecord, HistRecord, IntervalRecord, JobSpan, RunLog, RunMeta};
