//! RunLog rendering: the logic behind the `simreport` binary.
//!
//! Three consumers share this module: `simreport` (human text and CSV),
//! `simreport --check` (the JSONL schema validation CI runs over the
//! bench-smoke RunLog), and tests. The binary stays a thin argv shim.
//!
//! The text renderer mirrors the paper's two instruments:
//! - an `mpstat`-style table — one row per *worker* instead of per CPU,
//!   with jobs executed, busy seconds, and occupancy share, plus a
//!   largest-first scheduling audit (were higher-cost jobs claimed
//!   earlier, and did the hints predict wall time?);
//! - a `cpustat`-style dump — the per-job counter snapshots summed over
//!   each run, one `name value unit` row per counter.

use std::fmt::Write as _;

use crate::json::{self, Json};

/// A validated RunLog document.
#[derive(Debug, Clone, Default)]
pub struct ParsedLog {
    /// The provenance event, if the log carried one.
    pub provenance: Option<ProvEntry>,
    /// Run metadata lines, indexed by run id.
    pub runs: Vec<RunEntry>,
    /// Job spans, in file order.
    pub jobs: Vec<JobEntry>,
}

/// The `provenance` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvEntry {
    /// Short git revision recorded at run time.
    pub git_rev: String,
    /// Host the log was produced on.
    pub hostname: String,
    /// Hardware parallelism of that host.
    pub cpu_count: u64,
    /// UNIX timestamp (seconds) of the capture.
    pub timestamp: u64,
}

/// One `run` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunEntry {
    /// Run id (dense, starting at 0).
    pub run: u64,
    /// Caller-chosen tag, e.g. `"parallel"`.
    pub tag: String,
    /// Effort preset name.
    pub effort: String,
    /// Configured worker threads.
    pub threads: u64,
    /// Jobs in the batch.
    pub jobs: u64,
}

/// One `job` event.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEntry {
    /// Run the job belongs to.
    pub run: u64,
    /// Input-order job index.
    pub id: u64,
    /// Optional human label.
    pub label: Option<String>,
    /// Worker that executed the job.
    pub worker: u64,
    /// Claim-order position (0 = claimed first).
    pub claim: u64,
    /// Scheduling cost hint, if the run was hinted.
    pub cost_hint: Option<u64>,
    /// Measured wall seconds of the job body.
    pub wall_secs: f64,
    /// End-of-job counter snapshot (`name → value`), in snapshot order.
    pub counters: Vec<(String, u64)>,
}

/// Parses and schema-checks a RunLog JSONL document.
///
/// Errors name the offending line (1-based) and what was wrong — this
/// is the whole of `simreport --check`.
pub fn check(src: &str) -> Result<ParsedLog, String> {
    let mut log = ParsedLog::default();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ev = v
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string field \"ev\""))?;
        match ev {
            "provenance" => {
                if log.provenance.is_some() {
                    return Err(format!("line {lineno}: duplicate provenance event"));
                }
                log.provenance = Some(ProvEntry {
                    git_rev: req_str(&v, "git_rev", lineno)?,
                    hostname: req_str(&v, "hostname", lineno)?,
                    cpu_count: req_u64(&v, "cpu_count", lineno)?,
                    timestamp: req_u64(&v, "timestamp", lineno)?,
                });
            }
            "run" => {
                let entry = RunEntry {
                    run: req_u64(&v, "run", lineno)?,
                    tag: req_str(&v, "tag", lineno)?,
                    effort: req_str(&v, "effort", lineno)?,
                    threads: req_u64(&v, "threads", lineno)?,
                    jobs: req_u64(&v, "jobs", lineno)?,
                };
                if entry.run != log.runs.len() as u64 {
                    return Err(format!(
                        "line {lineno}: run ids must be dense; expected {}, got {}",
                        log.runs.len(),
                        entry.run
                    ));
                }
                log.runs.push(entry);
            }
            "job" => {
                let entry = JobEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    label: v.get("label").and_then(Json::as_str).map(String::from),
                    worker: req_u64(&v, "worker", lineno)?,
                    claim: req_u64(&v, "claim", lineno)?,
                    cost_hint: v.get("cost_hint").and_then(Json::as_u64),
                    wall_secs: v
                        .get("wall_secs")
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("line {lineno}: missing number \"wall_secs\""))?,
                    counters: match v.get("counters") {
                        None => Vec::new(),
                        Some(c) => c
                            .members()
                            .ok_or_else(|| format!("line {lineno}: \"counters\" is not an object"))?
                            .iter()
                            .map(|(name, val)| {
                                val.as_u64().map(|n| (name.clone(), n)).ok_or_else(|| {
                                    format!("line {lineno}: counter {name:?} is not a u64")
                                })
                            })
                            .collect::<Result<_, _>>()?,
                    },
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: job references run {} before its run event",
                        entry.run
                    ));
                }
                let meta = &log.runs[entry.run as usize];
                if entry.id >= meta.jobs || entry.claim >= meta.jobs {
                    return Err(format!(
                        "line {lineno}: job id/claim out of range for a {}-job run",
                        meta.jobs
                    ));
                }
                log.jobs.push(entry);
            }
            other => return Err(format!("line {lineno}: unknown event type {other:?}")),
        }
    }
    if log.provenance.is_none() {
        return Err("log has no provenance event".into());
    }
    for (run, meta) in log.runs.iter().enumerate() {
        let seen = log.jobs.iter().filter(|j| j.run == run as u64).count() as u64;
        if seen != meta.jobs {
            return Err(format!(
                "run {run} declares {} jobs but the log has {seen} spans for it",
                meta.jobs
            ));
        }
    }
    Ok(log)
}

fn req_str(v: &Json, key: &str, lineno: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("line {lineno}: missing string field {key:?}"))
}

fn req_u64(v: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: missing integer field {key:?}"))
}

/// Renders the human-readable report: provenance header, then per run
/// an `mpstat`-style worker table and a `cpustat`-style counter dump.
pub fn render_text(log: &ParsedLog) -> String {
    let mut out = String::new();
    if let Some(p) = &log.provenance {
        let _ = writeln!(
            out,
            "runlog: rev {} on {} ({} cpus), t={}",
            p.git_rev, p.hostname, p.cpu_count, p.timestamp
        );
    }
    for (run, meta) in log.runs.iter().enumerate() {
        let jobs: Vec<&JobEntry> = log.jobs.iter().filter(|j| j.run == run as u64).collect();
        let _ = writeln!(
            out,
            "\nrun {run} [{}]  effort={} threads={} jobs={}",
            meta.tag, meta.effort, meta.threads, meta.jobs
        );
        render_worker_table(&mut out, meta, &jobs);
        render_hint_audit(&mut out, &jobs);
        render_counter_sum(&mut out, &jobs);
    }
    out
}

/// The `mpstat` analogue: one row per worker with occupancy.
fn render_worker_table(out: &mut String, meta: &RunEntry, jobs: &[&JobEntry]) {
    let workers = meta
        .threads
        .max(jobs.iter().map(|j| j.worker + 1).max().unwrap_or(1)) as usize;
    let total_busy: f64 = jobs.iter().map(|j| j.wall_secs).sum();
    let _ = writeln!(out, "  worker   jobs    busy_s   share%  avg_job_s");
    for w in 0..workers {
        let mine: Vec<&&JobEntry> = jobs.iter().filter(|j| j.worker == w as u64).collect();
        let busy: f64 = mine.iter().map(|j| j.wall_secs).sum();
        let share = if total_busy > 0.0 {
            100.0 * busy / total_busy
        } else {
            0.0
        };
        let avg = if mine.is_empty() {
            0.0
        } else {
            busy / mine.len() as f64
        };
        let _ = writeln!(
            out,
            "  {w:>6}  {:>5}  {busy:>8.3}  {share:>6.1}  {avg:>9.3}",
            mine.len()
        );
    }
    let _ = writeln!(
        out,
        "  {:>6}  {:>5}  {total_busy:>8.3}",
        "total",
        jobs.len()
    );
}

/// The largest-first audit: were higher-hint jobs claimed earlier, and
/// did the hints track measured wall time?
fn render_hint_audit(out: &mut String, jobs: &[&JobEntry]) {
    let mut hinted: Vec<&&JobEntry> = jobs.iter().filter(|j| j.cost_hint.is_some()).collect();
    if hinted.len() < 2 {
        return;
    }
    hinted.sort_by_key(|j| j.claim);
    let pairs = hinted.len() - 1;
    let ordered = hinted
        .windows(2)
        .filter(|w| w[0].cost_hint >= w[1].cost_hint)
        .count();
    // Hint quality: agreement between hint order and wall-time order
    // over all pairs (a Kendall-style concordance count).
    let mut concordant = 0usize;
    let mut comparable = 0usize;
    for i in 0..hinted.len() {
        for j in (i + 1)..hinted.len() {
            let (a, b) = (hinted[i], hinted[j]);
            if a.cost_hint == b.cost_hint || a.wall_secs == b.wall_secs {
                continue;
            }
            comparable += 1;
            if (a.cost_hint > b.cost_hint) == (a.wall_secs > b.wall_secs) {
                concordant += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "  largest-first: {ordered}/{pairs} adjacent claims non-increasing; hint/wall concordance {concordant}/{comparable}"
    );
}

/// The `cpustat` analogue: counter snapshots aggregated over the run.
/// Monotonic counters sum; registry ratio counters (the `_ppm` naming
/// convention) average instead — a sum of per-job ratios means nothing.
fn render_counter_sum(out: &mut String, jobs: &[&JobEntry]) {
    let mut names: Vec<&str> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    let mut seen: Vec<u64> = Vec::new();
    for j in jobs {
        for (name, v) in &j.counters {
            match names.iter().position(|n| n == name) {
                Some(i) => {
                    totals[i] += v;
                    seen[i] += 1;
                }
                None => {
                    names.push(name);
                    totals.push(*v);
                    seen.push(1);
                }
            }
        }
    }
    if names.is_empty() {
        return;
    }
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    let _ = writeln!(out, "  counters (aggregated over {} jobs):", jobs.len());
    for ((name, total), n) in names.iter().zip(&totals).zip(&seen) {
        if name.ends_with("_ppm") {
            let mean = total / n.max(&1);
            let _ = writeln!(out, "    {name:<width$}  {mean:>16} (mean)");
        } else {
            let _ = writeln!(out, "    {name:<width$}  {total:>16}");
        }
    }
}

/// Renders the log as job-level CSV. Fixed columns first, then one
/// column per counter name in first-seen order (blank when a job has
/// no snapshot).
pub fn render_csv(log: &ParsedLog) -> String {
    let mut counter_names: Vec<&str> = Vec::new();
    for j in &log.jobs {
        for (name, _) in &j.counters {
            if !counter_names.iter().any(|n| n == name) {
                counter_names.push(name);
            }
        }
    }
    let mut out = String::from("run,tag,id,label,worker,claim,cost_hint,wall_secs");
    for name in &counter_names {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for j in &log.jobs {
        let tag = log
            .runs
            .get(j.run as usize)
            .map(|r| r.tag.as_str())
            .unwrap_or("");
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{:.6}",
            j.run,
            csv_field(tag),
            j.id,
            csv_field(j.label.as_deref().unwrap_or("")),
            j.worker,
            j.claim,
            j.cost_hint.map(|h| h.to_string()).unwrap_or_default(),
            j.wall_secs
        );
        for name in &counter_names {
            out.push(',');
            if let Some((_, v)) = j.counters.iter().find(|(n, _)| n == name) {
                out.push_str(&v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::runlog::{JobSpan, RunLog, RunMeta};

    fn sample_log() -> String {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "parallel".into(),
            effort: "quick".into(),
            threads: 2,
            jobs: 3,
        });
        for (id, (worker, claim, hint, wall)) in
            [(0u64, 2u64, 30u64, 0.3), (1, 0, 50, 0.5), (0, 1, 40, 0.4)]
                .into_iter()
                .enumerate()
        {
            log.record_span(JobSpan {
                run,
                id,
                label: Some(format!("seed-{id}")),
                worker: worker as usize,
                claim: claim as usize,
                cost_hint: Some(hint),
                wall_secs: wall,
                counters: None,
            });
        }
        log.to_jsonl(&Provenance {
            git_rev: "abc123".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
        })
    }

    #[test]
    fn check_accepts_runlog_output() {
        let parsed = check(&sample_log()).unwrap();
        assert_eq!(parsed.runs.len(), 1);
        assert_eq!(parsed.jobs.len(), 3);
        assert_eq!(parsed.provenance.as_ref().unwrap().git_rev, "abc123");
    }

    #[test]
    fn check_rejects_missing_fields_and_bad_refs() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        // Job before its run event.
        let bad = format!(
            "{prov}\n{{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}}"
        );
        assert!(check(&bad).unwrap_err().contains("before its run event"));
        // Run declares more jobs than the log holds.
        let short = format!(
            "{prov}\n{{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":2}}"
        );
        assert!(check(&short).unwrap_err().contains("declares 2 jobs"));
        // Not JSON at all.
        assert!(check("not json").unwrap_err().contains("line 1"));
        // No provenance.
        assert!(check("").unwrap_err().contains("no provenance"));
    }

    #[test]
    fn text_report_has_worker_table_and_audit() {
        let parsed = check(&sample_log()).unwrap();
        let text = render_text(&parsed);
        assert!(text.contains("rev abc123 on h"));
        assert!(text.contains("run 0 [parallel]"));
        assert!(text.contains("worker   jobs"));
        // Claims 0,1,2 carry hints 50,40,30: perfectly largest-first,
        // and wall times track hints exactly.
        assert!(text.contains("largest-first: 2/2 adjacent claims non-increasing"));
        assert!(text.contains("concordance 3/3"));
    }

    #[test]
    fn csv_has_one_row_per_job() {
        let parsed = check(&sample_log()).unwrap();
        let csv = render_csv(&parsed);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "run,tag,id,label,worker,claim,cost_hint,wall_secs"
        );
        // The serializer orders spans by claim; claim 0 was job id 1.
        assert!(lines[1].starts_with("0,parallel,1,seed-1,"));
    }

    #[test]
    fn counters_sum_and_widen_csv() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 2,
        });
        for id in 0..2usize {
            log.record_span(JobSpan {
                run,
                id,
                label: None,
                worker: 0,
                claim: id,
                cost_hint: None,
                wall_secs: 0.1,
                counters: {
                    use crate::registry::{CounterDesc, CounterKind, CounterSet, Snapshot};
                    struct One(u64);
                    impl CounterSet for One {
                        fn descriptors(&self) -> &'static [CounterDesc] {
                            const D: [CounterDesc; 1] =
                                [CounterDesc::new("bus.gets", CounterKind::Count)];
                            &D
                        }
                        fn values(&self, out: &mut Vec<u64>) {
                            let One(v) = self;
                            out.push(*v);
                        }
                    }
                    Some(Snapshot::of(&One(10 + id as u64)))
                },
            });
        }
        let text = log.to_jsonl(&Provenance {
            git_rev: "r".into(),
            hostname: "h".into(),
            cpu_count: 1,
            timestamp: 0,
        });
        let parsed = check(&text).unwrap();
        let report = render_text(&parsed);
        assert!(report.contains("counters (aggregated over 2 jobs):"));
        assert!(report.contains("bus.gets"));
        assert!(report.contains("21"));
        let csv = render_csv(&parsed);
        assert!(csv.lines().next().unwrap().ends_with(",bus.gets"));
        assert!(csv.contains(",10\n") || csv.contains(",10\r\n"));
    }
}
