//! RunLog rendering: the logic behind the `simreport` binary.
//!
//! Three consumers share this module: `simreport` (human text and CSV),
//! `simreport --check` (the JSONL schema validation CI runs over the
//! bench-smoke RunLog), and tests. The binary stays a thin argv shim.
//!
//! The text renderer mirrors the paper's two instruments:
//! - an `mpstat`-style table — one row per *worker* instead of per CPU,
//!   with jobs executed, busy seconds, and occupancy share, plus a
//!   largest-first scheduling audit (were higher-cost jobs claimed
//!   earlier, and did the hints predict wall time?);
//! - a `cpustat`-style dump — the per-job counter snapshots summed over
//!   each run, one `name value unit` row per counter.

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::json::{self, Json};

/// A validated RunLog document.
#[derive(Debug, Clone, Default)]
pub struct ParsedLog {
    /// The provenance event, if the log carried one.
    pub provenance: Option<ProvEntry>,
    /// Run metadata lines, indexed by run id.
    pub runs: Vec<RunEntry>,
    /// Job spans, in file order.
    pub jobs: Vec<JobEntry>,
    /// Interval samples, in file order (`(run, id, seq)`-sorted by the
    /// serializer).
    pub intervals: Vec<IntervalEntry>,
    /// Named latency histograms, in file order.
    pub hists: Vec<HistEntry>,
    /// Sampled-mode unit schedules, in file order (`(run, id, unit)`-
    /// sorted by the serializer).
    pub sample_units: Vec<SampleUnitEntry>,
    /// Sim-time events, in file order (`(run, id, start, end, name)`-
    /// sorted by the serializer).
    pub events: Vec<EventEntry>,
    /// Cycle-attribution stacks, in file order (`(run, id, stack)`-
    /// sorted by the serializer).
    pub attribs: Vec<AttribEntry>,
}

/// The `provenance` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvEntry {
    /// Short git revision recorded at run time.
    pub git_rev: String,
    /// Host the log was produced on.
    pub hostname: String,
    /// Hardware parallelism of that host.
    pub cpu_count: u64,
    /// UNIX timestamp (seconds) of the capture.
    pub timestamp: u64,
    /// Worker threads the producer used, when recorded.
    pub workers: Option<u64>,
    /// Effort level the run was sized at, when recorded.
    pub effort: Option<String>,
    /// Simulation mode (`"full"` / `"sampled"`), when recorded.
    pub sim_mode: Option<String>,
}

/// One `run` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunEntry {
    /// Run id (dense, starting at 0).
    pub run: u64,
    /// Caller-chosen tag, e.g. `"parallel"`.
    pub tag: String,
    /// Effort preset name.
    pub effort: String,
    /// Configured worker threads.
    pub threads: u64,
    /// Jobs in the batch.
    pub jobs: u64,
}

/// One `job` event.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEntry {
    /// Run the job belongs to.
    pub run: u64,
    /// Input-order job index.
    pub id: u64,
    /// Optional human label.
    pub label: Option<String>,
    /// Worker that executed the job.
    pub worker: u64,
    /// Claim-order position (0 = claimed first).
    pub claim: u64,
    /// Scheduling cost hint, if the run was hinted.
    pub cost_hint: Option<u64>,
    /// Measured wall seconds of the job body.
    pub wall_secs: f64,
    /// End-of-job counter snapshot (`name → value`), in snapshot order.
    pub counters: Vec<(String, u64)>,
}

/// One `interval` event: counter deltas over a fixed simulated-cycle
/// window of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEntry {
    /// Run the interval belongs to.
    pub run: u64,
    /// Input-order index of the job that sampled it.
    pub id: u64,
    /// Interval sequence number within the job.
    pub seq: u64,
    /// Simulated cycle the interval starts at.
    pub start: u64,
    /// Simulated cycle the interval ends at (exclusive).
    pub end: u64,
    /// Whether a GC pause overlapped the interval.
    pub gc: bool,
    /// Counter deltas (`name → value`), in snapshot order.
    pub counters: Vec<(String, u64)>,
}

/// One `hist` event: a named log2 latency histogram from one job.
#[derive(Debug, Clone, PartialEq)]
pub struct HistEntry {
    /// Run the histogram belongs to.
    pub run: u64,
    /// Input-order index of the job that captured it.
    pub id: u64,
    /// Dot-separated histogram name, e.g. `mem.latency`.
    pub name: String,
    /// The reconstructed histogram.
    pub hist: Histogram,
}

/// One `sample_unit` event: a fixed-cycle segment of a sampled job's
/// measurement window with its cluster assignment and weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleUnitEntry {
    /// Run the unit belongs to.
    pub run: u64,
    /// Input-order index of the job that ran it.
    pub id: u64,
    /// Unit sequence number within the job's window.
    pub unit: u64,
    /// Signature cluster the unit was assigned to.
    pub cluster: u64,
    /// Simulated cycle the unit starts at.
    pub start: u64,
    /// Simulated cycle the unit ends at (exclusive).
    pub end: u64,
    /// Whether the unit was simulated in detail.
    pub detailed: bool,
    /// Cluster population share of the window, in ppm.
    pub weight_ppm: u64,
}

/// One `event` record: a named sim-time span (or instant, when
/// `end == start`) on one job's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventEntry {
    /// Run the event belongs to.
    pub run: u64,
    /// Input-order index of the job whose timeline it is.
    pub id: u64,
    /// Dot-separated event name, e.g. `gc.pause`.
    pub name: String,
    /// Simulated cycle the event begins at.
    pub start: u64,
    /// Simulated cycle the event ends at (`end == start` marks an
    /// instant).
    pub end: u64,
}

/// One `attrib` record: a weighted cycle-attribution stack from one
/// job, `phase;component;cause;region` folded-stack style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttribEntry {
    /// Run the stack belongs to.
    pub run: u64,
    /// Input-order index of the job that attributed it.
    pub id: u64,
    /// Semicolon-separated frames, root first.
    pub stack: String,
    /// Cycles attributed to this stack.
    pub cycles: u64,
}

/// Frames an attribution stack must carry: phase, component, cause,
/// region.
const ATTRIB_FRAMES: usize = 4;

/// Parses and schema-checks a RunLog JSONL document.
///
/// Errors name the offending line (1-based) and what was wrong — this
/// is the whole of `simreport --check`.
pub fn check(src: &str) -> Result<ParsedLog, String> {
    let mut log = ParsedLog::default();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ev = v
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string field \"ev\""))?;
        match ev {
            "provenance" => {
                if log.provenance.is_some() {
                    return Err(format!("line {lineno}: duplicate provenance event"));
                }
                log.provenance = Some(ProvEntry {
                    git_rev: req_str(&v, "git_rev", lineno)?,
                    hostname: req_str(&v, "hostname", lineno)?,
                    cpu_count: req_u64(&v, "cpu_count", lineno)?,
                    timestamp: req_u64(&v, "timestamp", lineno)?,
                    workers: v.get("workers").and_then(Json::as_u64),
                    effort: v.get("effort").and_then(Json::as_str).map(String::from),
                    sim_mode: v.get("sim_mode").and_then(Json::as_str).map(String::from),
                });
            }
            "run" => {
                let entry = RunEntry {
                    run: req_u64(&v, "run", lineno)?,
                    tag: req_str(&v, "tag", lineno)?,
                    effort: req_str(&v, "effort", lineno)?,
                    threads: req_u64(&v, "threads", lineno)?,
                    jobs: req_u64(&v, "jobs", lineno)?,
                };
                if entry.run != log.runs.len() as u64 {
                    return Err(format!(
                        "line {lineno}: run ids must be dense; expected {}, got {}",
                        log.runs.len(),
                        entry.run
                    ));
                }
                log.runs.push(entry);
            }
            "job" => {
                let entry = JobEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    label: v.get("label").and_then(Json::as_str).map(String::from),
                    worker: req_u64(&v, "worker", lineno)?,
                    claim: req_u64(&v, "claim", lineno)?,
                    cost_hint: v.get("cost_hint").and_then(Json::as_u64),
                    wall_secs: v
                        .get("wall_secs")
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("line {lineno}: missing number \"wall_secs\""))?,
                    counters: match v.get("counters") {
                        None => Vec::new(),
                        Some(_) => req_counters(&v, lineno)?,
                    },
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: job references run {} before its run event",
                        entry.run
                    ));
                }
                let meta = &log.runs[entry.run as usize];
                if entry.id >= meta.jobs || entry.claim >= meta.jobs {
                    return Err(format!(
                        "line {lineno}: job id/claim out of range for a {}-job run",
                        meta.jobs
                    ));
                }
                log.jobs.push(entry);
            }
            "interval" => {
                let entry = IntervalEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    seq: req_u64(&v, "seq", lineno)?,
                    start: req_u64(&v, "start", lineno)?,
                    end: req_u64(&v, "end", lineno)?,
                    gc: match v.get("gc") {
                        Some(Json::Bool(b)) => *b,
                        _ => return Err(format!("line {lineno}: missing boolean field \"gc\"")),
                    },
                    counters: req_counters(&v, lineno)?,
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: interval references run {} before its run event",
                        entry.run
                    ));
                }
                let meta = &log.runs[entry.run as usize];
                if entry.id >= meta.jobs {
                    return Err(format!(
                        "line {lineno}: interval job id out of range for a {}-job run",
                        meta.jobs
                    ));
                }
                if entry.end <= entry.start {
                    return Err(format!(
                        "line {lineno}: interval window [{}, {}) is empty or backwards",
                        entry.start, entry.end
                    ));
                }
                log.intervals.push(entry);
            }
            "hist" => {
                let entry = HistEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    name: req_str(&v, "name", lineno)?,
                    hist: {
                        let count = req_u64(&v, "count", lineno)?;
                        let sum = req_u64(&v, "sum", lineno)?;
                        let buckets: Vec<u64> = match v.get("buckets") {
                            Some(Json::Arr(items)) => items
                                .iter()
                                .map(|b| {
                                    b.as_u64().ok_or_else(|| {
                                        format!("line {lineno}: histogram bucket is not a u64")
                                    })
                                })
                                .collect::<Result<_, _>>()?,
                            _ => {
                                return Err(format!(
                                    "line {lineno}: missing array field \"buckets\""
                                ))
                            }
                        };
                        Histogram::from_parts(count, sum, &buckets)
                            .map_err(|e| format!("line {lineno}: {e}"))?
                    },
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: hist references run {} before its run event",
                        entry.run
                    ));
                }
                log.hists.push(entry);
            }
            "sample_unit" => {
                let entry = SampleUnitEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    unit: req_u64(&v, "unit", lineno)?,
                    cluster: req_u64(&v, "cluster", lineno)?,
                    start: req_u64(&v, "start", lineno)?,
                    end: req_u64(&v, "end", lineno)?,
                    detailed: match v.get("detailed") {
                        Some(Json::Bool(b)) => *b,
                        _ => {
                            return Err(format!(
                                "line {lineno}: missing boolean field \"detailed\""
                            ))
                        }
                    },
                    weight_ppm: req_u64(&v, "weight_ppm", lineno)?,
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: sample_unit references run {} before its run event",
                        entry.run
                    ));
                }
                let meta = &log.runs[entry.run as usize];
                if entry.id >= meta.jobs {
                    return Err(format!(
                        "line {lineno}: sample_unit job id out of range for a {}-job run",
                        meta.jobs
                    ));
                }
                if entry.end <= entry.start {
                    return Err(format!(
                        "line {lineno}: sample unit [{}, {}) is empty or backwards",
                        entry.start, entry.end
                    ));
                }
                if entry.weight_ppm > 1_000_000 {
                    return Err(format!(
                        "line {lineno}: sample unit weight {} ppm exceeds 1e6",
                        entry.weight_ppm
                    ));
                }
                log.sample_units.push(entry);
            }
            "event" => {
                let entry = EventEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    name: req_str(&v, "name", lineno)?,
                    start: req_u64(&v, "start", lineno)?,
                    end: req_u64(&v, "end", lineno)?,
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: event references run {} before its run event",
                        entry.run
                    ));
                }
                let meta = &log.runs[entry.run as usize];
                if entry.id >= meta.jobs {
                    return Err(format!(
                        "line {lineno}: event job id out of range for a {}-job run",
                        meta.jobs
                    ));
                }
                // Unlike intervals, zero-width is legal: an instant
                // event. Only a backwards span is malformed.
                if entry.end < entry.start {
                    return Err(format!(
                        "line {lineno}: event span [{}, {}] is backwards",
                        entry.start, entry.end
                    ));
                }
                if entry.name.is_empty() {
                    return Err(format!("line {lineno}: event name is empty"));
                }
                log.events.push(entry);
            }
            "attrib" => {
                let entry = AttribEntry {
                    run: req_u64(&v, "run", lineno)?,
                    id: req_u64(&v, "id", lineno)?,
                    stack: req_str(&v, "stack", lineno)?,
                    cycles: req_u64(&v, "cycles", lineno)?,
                };
                if entry.run as usize >= log.runs.len() {
                    return Err(format!(
                        "line {lineno}: attrib references run {} before its run event",
                        entry.run
                    ));
                }
                let meta = &log.runs[entry.run as usize];
                if entry.id >= meta.jobs {
                    return Err(format!(
                        "line {lineno}: attrib job id out of range for a {}-job run",
                        meta.jobs
                    ));
                }
                let frames: Vec<&str> = entry.stack.split(';').collect();
                if frames.len() != ATTRIB_FRAMES || frames.iter().any(|f| f.is_empty()) {
                    return Err(format!(
                        "line {lineno}: attrib stack {:?} is not {ATTRIB_FRAMES} non-empty \
                         semicolon-separated frames (phase;component;cause;region)",
                        entry.stack
                    ));
                }
                if entry.cycles == 0 {
                    return Err(format!(
                        "line {lineno}: attrib stack {:?} carries zero cycles",
                        entry.stack
                    ));
                }
                log.attribs.push(entry);
            }
            other => return Err(format!("line {lineno}: unknown event type {other:?}")),
        }
    }
    // Interval series must be dense per (run, job): seq 0..n in file
    // order — the serializer sorts, so a gap means a dropped record.
    {
        let mut next: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
        for iv in &log.intervals {
            let want = next.entry((iv.run, iv.id)).or_insert(0);
            if iv.seq != *want {
                return Err(format!(
                    "run {} job {} interval seq {} out of order (expected {})",
                    iv.run, iv.id, iv.seq, want
                ));
            }
            *want += 1;
        }
    }
    // Sample-unit schedules must likewise be dense per (run, job): the
    // serializer sorts by (run, id, unit), so a gap means a dropped
    // unit and a population weight that no longer adds up.
    {
        let mut next: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
        for su in &log.sample_units {
            let want = next.entry((su.run, su.id)).or_insert(0);
            if su.unit != *want {
                return Err(format!(
                    "run {} job {} sample unit {} out of order (expected {})",
                    su.run, su.id, su.unit, want
                ));
            }
            *want += 1;
        }
    }
    // And the population weights must account for the whole window.
    // Every unit carries its *cluster's* share (floor of pop * 1e6 /
    // total), so units of one cluster agree on the weight and the
    // distinct-cluster weights sum to 1_000_000 less at most one ppm of
    // floor shortfall per cluster. A sum outside that band means the
    // schedule lost units (or double-counted them) and every
    // extrapolated number downstream is silently misweighted.
    {
        let mut by_job: std::collections::HashMap<(u64, u64), std::collections::HashMap<u64, u64>> =
            std::collections::HashMap::new();
        for su in &log.sample_units {
            let clusters = by_job.entry((su.run, su.id)).or_default();
            match clusters.insert(su.cluster, su.weight_ppm) {
                Some(prev) if prev != su.weight_ppm => {
                    return Err(format!(
                        "run {} job {} cluster {}: units disagree on weight ({} vs {} ppm)",
                        su.run, su.id, su.cluster, prev, su.weight_ppm
                    ));
                }
                _ => {}
            }
        }
        for ((run, id), clusters) in &by_job {
            let sum: u64 = clusters.values().sum();
            let n = clusters.len() as u64;
            if sum > 1_000_000 || 1_000_000 - sum >= n.max(1) {
                return Err(format!(
                    "run {run} job {id}: sample unit weights sum to {sum} ppm across {n} \
                     clusters (expected 1000000 - rounding)",
                ));
            }
        }
    }
    // Attribution stacks must be unique per job, and when a job's span
    // carries the profiler's own `attrib.cycles` counter, the stack
    // weights must add up to it exactly — the counter is computed from
    // the same accumulator, so any mismatch means dropped records.
    {
        let mut seen: std::collections::HashSet<(u64, u64, &str)> =
            std::collections::HashSet::new();
        let mut sums: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
        for at in &log.attribs {
            if !seen.insert((at.run, at.id, &at.stack)) {
                return Err(format!(
                    "run {} job {}: duplicate attrib stack {:?}",
                    at.run, at.id, at.stack
                ));
            }
            *sums.entry((at.run, at.id)).or_insert(0) += at.cycles;
        }
        for j in &log.jobs {
            let Some((_, declared)) = j.counters.iter().find(|(n, _)| n == "attrib.cycles") else {
                continue;
            };
            let recorded = sums.get(&(j.run, j.id)).copied().unwrap_or(0);
            if recorded != *declared {
                return Err(format!(
                    "run {} job {}: attrib stacks sum to {recorded} cycles but the span \
                     declares attrib.cycles={declared}",
                    j.run, j.id
                ));
            }
        }
    }
    if log.provenance.is_none() {
        return Err("log has no provenance event".into());
    }
    for (run, meta) in log.runs.iter().enumerate() {
        let seen = log.jobs.iter().filter(|j| j.run == run as u64).count() as u64;
        if seen != meta.jobs {
            return Err(format!(
                "run {run} declares {} jobs but the log has {seen} spans for it",
                meta.jobs
            ));
        }
    }
    Ok(log)
}

fn req_str(v: &Json, key: &str, lineno: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("line {lineno}: missing string field {key:?}"))
}

fn req_u64(v: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: missing integer field {key:?}"))
}

fn req_counters(v: &Json, lineno: usize) -> Result<Vec<(String, u64)>, String> {
    v.get("counters")
        .ok_or_else(|| format!("line {lineno}: missing object field \"counters\""))?
        .members()
        .ok_or_else(|| format!("line {lineno}: \"counters\" is not an object"))?
        .iter()
        .map(|(name, val)| {
            val.as_u64()
                .map(|n| (name.clone(), n))
                .ok_or_else(|| format!("line {lineno}: counter {name:?} is not a u64"))
        })
        .collect()
}

/// Renders the human-readable report: provenance header, then per run
/// an `mpstat`-style worker table and a `cpustat`-style counter dump.
pub fn render_text(log: &ParsedLog) -> String {
    let mut out = String::new();
    if let Some(p) = &log.provenance {
        let _ = writeln!(
            out,
            "runlog: rev {} on {} ({} cpus), t={}",
            p.git_rev, p.hostname, p.cpu_count, p.timestamp
        );
    }
    for (run, meta) in log.runs.iter().enumerate() {
        let jobs: Vec<&JobEntry> = log.jobs.iter().filter(|j| j.run == run as u64).collect();
        let _ = writeln!(
            out,
            "\nrun {run} [{}]  effort={} threads={} jobs={}",
            meta.tag, meta.effort, meta.threads, meta.jobs
        );
        render_worker_table(&mut out, meta, &jobs);
        render_hint_audit(&mut out, &jobs);
        render_counter_sum(&mut out, &jobs);
    }
    out
}

/// The `mpstat` analogue: one row per worker with occupancy.
fn render_worker_table(out: &mut String, meta: &RunEntry, jobs: &[&JobEntry]) {
    let workers = meta
        .threads
        .max(jobs.iter().map(|j| j.worker + 1).max().unwrap_or(1)) as usize;
    let total_busy: f64 = jobs.iter().map(|j| j.wall_secs).sum();
    let _ = writeln!(out, "  worker   jobs    busy_s   share%  avg_job_s");
    for w in 0..workers {
        let mine: Vec<&&JobEntry> = jobs.iter().filter(|j| j.worker == w as u64).collect();
        let busy: f64 = mine.iter().map(|j| j.wall_secs).sum();
        let share = if total_busy > 0.0 {
            100.0 * busy / total_busy
        } else {
            0.0
        };
        let avg = if mine.is_empty() {
            0.0
        } else {
            busy / mine.len() as f64
        };
        let _ = writeln!(
            out,
            "  {w:>6}  {:>5}  {busy:>8.3}  {share:>6.1}  {avg:>9.3}",
            mine.len()
        );
    }
    let _ = writeln!(
        out,
        "  {:>6}  {:>5}  {total_busy:>8.3}",
        "total",
        jobs.len()
    );
}

/// The largest-first audit: were higher-hint jobs claimed earlier, and
/// did the hints track measured wall time?
fn render_hint_audit(out: &mut String, jobs: &[&JobEntry]) {
    let mut hinted: Vec<&&JobEntry> = jobs.iter().filter(|j| j.cost_hint.is_some()).collect();
    if hinted.len() < 2 {
        return;
    }
    hinted.sort_by_key(|j| j.claim);
    let pairs = hinted.len() - 1;
    let ordered = hinted
        .windows(2)
        .filter(|w| w[0].cost_hint >= w[1].cost_hint)
        .count();
    // Hint quality: agreement between hint order and wall-time order
    // over all pairs (a Kendall-style concordance count).
    let mut concordant = 0usize;
    let mut comparable = 0usize;
    for i in 0..hinted.len() {
        for j in (i + 1)..hinted.len() {
            let (a, b) = (hinted[i], hinted[j]);
            if a.cost_hint == b.cost_hint || a.wall_secs == b.wall_secs {
                continue;
            }
            comparable += 1;
            if (a.cost_hint > b.cost_hint) == (a.wall_secs > b.wall_secs) {
                concordant += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "  largest-first: {ordered}/{pairs} adjacent claims non-increasing; hint/wall concordance {concordant}/{comparable}"
    );
}

/// The `cpustat` analogue: counter snapshots aggregated over the run.
/// Monotonic counters sum; registry ratio counters (the `_ppm` naming
/// convention) average instead — a sum of per-job ratios means nothing.
fn render_counter_sum(out: &mut String, jobs: &[&JobEntry]) {
    let mut names: Vec<&str> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    let mut seen: Vec<u64> = Vec::new();
    for j in jobs {
        for (name, v) in &j.counters {
            match names.iter().position(|n| n == name) {
                Some(i) => {
                    totals[i] += v;
                    seen[i] += 1;
                }
                None => {
                    names.push(name);
                    totals.push(*v);
                    seen.push(1);
                }
            }
        }
    }
    if names.is_empty() {
        return;
    }
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    let _ = writeln!(out, "  counters (aggregated over {} jobs):", jobs.len());
    for ((name, total), n) in names.iter().zip(&totals).zip(&seen) {
        if name.ends_with("_ppm") {
            let mean = total / n.max(&1);
            let _ = writeln!(out, "    {name:<width$}  {mean:>16} (mean)");
        } else {
            let _ = writeln!(out, "    {name:<width$}  {total:>16}");
        }
    }
}

/// Renders the log as job-level CSV. Fixed columns first, then one
/// column per counter name in first-seen order (blank when a job has
/// no snapshot).
pub fn render_csv(log: &ParsedLog) -> String {
    let mut counter_names: Vec<&str> = Vec::new();
    for j in &log.jobs {
        for (name, _) in &j.counters {
            if !counter_names.iter().any(|n| n == name) {
                counter_names.push(name);
            }
        }
    }
    let mut out = String::from("run,tag,id,label,worker,claim,cost_hint,wall_secs");
    for name in &counter_names {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for j in &log.jobs {
        let tag = log
            .runs
            .get(j.run as usize)
            .map(|r| r.tag.as_str())
            .unwrap_or("");
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{:.6}",
            j.run,
            csv_field(tag),
            j.id,
            csv_field(j.label.as_deref().unwrap_or("")),
            j.worker,
            j.claim,
            j.cost_hint.map(|h| h.to_string()).unwrap_or_default(),
            j.wall_secs
        );
        for name in &counter_names {
            out.push(',');
            if let Some((_, v)) = j.counters.iter().find(|(n, _)| n == name) {
                out.push_str(&v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Interval-table columns shown first when present; the rest of the
/// table fills with the largest remaining counters. Shared with the
/// timeline exporter, which emits the same preferred columns as
/// Chrome-trace counter tracks.
pub(crate) const SIMSTAT_COLS: [&str; 8] = [
    "cpustat.instr_cnt",
    "cpustat.ec_misses",
    "bus.snoop_cb",
    "bus.gets",
    "mem.writebacks",
    "dram.queue_occupancy",
    "dram.queue_stalls",
    "acct.window_tx",
];

/// How many counter columns the interval table shows.
const SIMSTAT_TABLE_COLS: usize = 8;

/// ASCII sparkline levels, dimmest to brightest.
const SPARK_LEVELS: &[u8] = b" .:-=+*#@";

/// Renders the `simstat` view: per job an `mpstat`-style interval
/// table and ASCII sparklines over every active counter, then a
/// percentile table for the captured latency histograms.
///
/// `Ratio` (`_ppm`) counters aggregate as means — a sum of
/// per-interval ratios means nothing — everything else sums.
pub fn render_simstat(log: &ParsedLog) -> String {
    let mut out = String::new();
    if let Some(p) = &log.provenance {
        let _ = writeln!(
            out,
            "simstat: rev {} on {} ({} cpus), t={}",
            p.git_rev, p.hostname, p.cpu_count, p.timestamp
        );
    }
    for (run, id) in series_groups(log) {
        let series: Vec<&IntervalEntry> = log
            .intervals
            .iter()
            .filter(|i| i.run == run && i.id == id)
            .collect();
        let label = log
            .jobs
            .iter()
            .find(|j| j.run == run && j.id == id)
            .and_then(|j| j.label.clone())
            .map(|l| format!(" [{l}]"))
            .unwrap_or_default();
        let width_cycles = series[0].end - series[0].start;
        let _ = writeln!(
            out,
            "\nrun {run} job {id}{label}: {} intervals x {width_cycles} cycles",
            series.len()
        );
        render_interval_table(&mut out, &series);
        render_sparklines(&mut out, &series);
    }
    render_hist_table(&mut out, log);
    out
}

/// Distinct `(run, id)` interval series, in file order.
fn series_groups(log: &ParsedLog) -> Vec<(u64, u64)> {
    let mut groups = Vec::new();
    for iv in &log.intervals {
        if !groups.contains(&(iv.run, iv.id)) {
            groups.push((iv.run, iv.id));
        }
    }
    groups
}

/// Sum (or mean, for `_ppm` ratio counters) of one counter over a
/// series.
fn series_total(series: &[&IntervalEntry], name: &str) -> u64 {
    let vals = series
        .iter()
        .filter_map(|iv| iv.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v));
    if name.ends_with("_ppm") {
        let (sum, n) = vals.fold((0u64, 0u64), |(s, n), v| (s + v, n + 1));
        sum / n.max(1)
    } else {
        vals.sum()
    }
}

/// Counter names of a series in first-interval order.
fn series_names(series: &[&IntervalEntry]) -> Vec<String> {
    series
        .first()
        .map(|iv| iv.counters.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default()
}

/// Picks the interval-table columns: preferred names first, then the
/// largest remaining totals, capped at [`SIMSTAT_TABLE_COLS`].
fn table_columns(series: &[&IntervalEntry]) -> Vec<String> {
    let names = series_names(series);
    let mut cols: Vec<String> = SIMSTAT_COLS
        .iter()
        .filter(|c| names.iter().any(|n| n == *c))
        .map(|c| c.to_string())
        .collect();
    let mut rest: Vec<&String> = names.iter().filter(|n| !cols.contains(n)).collect();
    rest.sort_by(|a, b| {
        series_total(series, b)
            .cmp(&series_total(series, a))
            .then_with(|| a.cmp(b))
    });
    cols.extend(
        rest.into_iter()
            .take(SIMSTAT_TABLE_COLS.saturating_sub(cols.len()))
            .cloned(),
    );
    cols
}

/// The `mpstat` analogue over time: one row per interval.
fn render_interval_table(out: &mut String, series: &[&IntervalEntry]) {
    let cols = table_columns(series);
    let widths: Vec<usize> = cols.iter().map(|c| c.len().max(10)).collect();
    let _ = write!(out, "   seq  start_mcyc  gc");
    for (c, w) in cols.iter().zip(&widths) {
        let _ = write!(out, "  {c:>w$}");
    }
    out.push('\n');
    for iv in series {
        let _ = write!(
            out,
            "  {:>4}  {:>10.1}  {:>2}",
            iv.seq,
            iv.start as f64 / 1e6,
            if iv.gc { "*" } else { "" }
        );
        for (c, w) in cols.iter().zip(&widths) {
            let v = iv
                .counters
                .iter()
                .find(|(n, _)| n == c)
                .map(|&(_, v)| v)
                .unwrap_or(0);
            let _ = write!(out, "  {v:>w$}");
        }
        out.push('\n');
    }
    let _ = write!(out, "  {:>4}  {:>10}  {:>2}", "tot", "", "");
    for (c, w) in cols.iter().zip(&widths) {
        let _ = write!(out, "  {:>w$}", series_total(series, c));
    }
    out.push('\n');
}

/// One ASCII sparkline per counter that moved during the series, plus a
/// GC-activity line, each scaled to its own peak interval.
fn render_sparklines(out: &mut String, series: &[&IntervalEntry]) {
    let names = series_names(series);
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    let gc_line: String = series
        .iter()
        .map(|iv| if iv.gc { '#' } else { '.' })
        .collect();
    let _ = writeln!(out, "  {:<width$}  |{gc_line}|", "gc");
    for name in &names {
        let vals: Vec<u64> = series
            .iter()
            .map(|iv| {
                iv.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .unwrap_or(0)
            })
            .collect();
        let peak = vals.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            continue;
        }
        let spark: String = vals
            .iter()
            .map(|&v| {
                let lvl = ((v as f64 / peak as f64) * (SPARK_LEVELS.len() - 1) as f64).round();
                SPARK_LEVELS[lvl as usize] as char
            })
            .collect();
        let total = series_total(series, name);
        let agg = if name.ends_with("_ppm") {
            "mean"
        } else {
            "sum"
        };
        let _ = writeln!(out, "  {name:<width$}  |{spark}|  {total} ({agg})");
    }
}

/// The latency-histogram percentile table.
fn render_hist_table(out: &mut String, log: &ParsedLog) {
    if log.hists.is_empty() {
        return;
    }
    let width = log
        .hists
        .iter()
        .map(|h| h.name.len())
        .max()
        .unwrap_or(0)
        .max(9);
    let _ = writeln!(
        out,
        "\n  run  job  {:<width$}  {:>10}  {:>10}  {:>8}  {:>8}  {:>8}",
        "histogram", "count", "mean", "p50", "p90", "p99"
    );
    for h in &log.hists {
        let _ = writeln!(
            out,
            "  {:>3}  {:>3}  {:<width$}  {:>10}  {:>10.1}  {:>8}  {:>8}  {:>8}",
            h.run,
            h.id,
            h.name,
            h.hist.count(),
            h.hist.mean(),
            h.hist.p50(),
            h.hist.p90(),
            h.hist.p99()
        );
    }
}

/// Renders the `attrib` view: per run, a CPI-stack table — one row per
/// `phase;component;cause;region` stack, cycle-weighted, largest first
/// — preceded by a per-phase roll-up (the paper's GC/mutator split).
/// Cycle shares divide by the run's total attributed cycles; the CPI
/// column divides by the phase's retired instructions when the job
/// spans carry `attrib.<phase>_instr` counters.
pub fn render_attrib(log: &ParsedLog) -> String {
    let mut out = String::new();
    if let Some(p) = &log.provenance {
        let _ = writeln!(
            out,
            "attrib: rev {} on {} ({} cpus), t={}",
            p.git_rev, p.hostname, p.cpu_count, p.timestamp
        );
    }
    for (run, meta) in log.runs.iter().enumerate() {
        let stacks = fold_stacks(log, Some(run as u64));
        if stacks.is_empty() {
            continue;
        }
        let total: u64 = stacks.iter().map(|&(_, c)| c).sum();
        let _ = writeln!(
            out,
            "\nrun {run} [{}]  effort={}  {} stacks, {total} cycles attributed",
            meta.tag,
            meta.effort,
            stacks.len()
        );
        // Per-phase roll-up with CPI where the spans carry the
        // profiler's instruction counters.
        let mut phases: Vec<(&str, u64)> = Vec::new();
        for (stack, cycles) in &stacks {
            let phase = stack.split(';').next().unwrap_or("");
            match phases.iter_mut().find(|(p, _)| p == &phase) {
                Some((_, c)) => *c += cycles,
                None => phases.push((phase, *cycles)),
            }
        }
        phases.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (phase, cycles) in &phases {
            let instr: u64 = log
                .jobs
                .iter()
                .filter(|j| j.run == run as u64)
                .filter_map(|j| {
                    let name = format!("attrib.{phase}_instr");
                    j.counters.iter().find(|(n, _)| n == &name).map(|&(_, v)| v)
                })
                .sum();
            let share = 100.0 * *cycles as f64 / total as f64;
            if instr > 0 {
                let _ = writeln!(
                    out,
                    "  {phase:<8} {cycles:>16} cycles  {share:>5.1}%  cpi {:>6.3}",
                    *cycles as f64 / instr as f64
                );
            } else {
                let _ = writeln!(out, "  {phase:<8} {cycles:>16} cycles  {share:>5.1}%");
            }
        }
        // The CPI stack itself, largest contributor first.
        let mut rows = stacks;
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let width = rows.iter().map(|(s, _)| s.len()).max().unwrap_or(5).max(5);
        let _ = writeln!(
            out,
            "  {:<width$}  {:>16}  {:>6}",
            "stack", "cycles", "share%"
        );
        for (stack, cycles) in &rows {
            let share = 100.0 * *cycles as f64 / total as f64;
            let _ = writeln!(out, "  {stack:<width$}  {cycles:>16}  {share:>6.2}");
        }
    }
    if out.is_empty() || log.attribs.is_empty() {
        let _ = writeln!(out, "no attrib records in log");
    }
    out
}

/// Renders the attribution folds as CSV — one row per
/// `(run, phase, component, cause, region)` stack, largest first
/// within each run, with the cycle weight and its share of the run's
/// attributed cycles. The machine-readable companion of
/// [`render_attrib`], for CI artifacts and spreadsheets.
pub fn render_attrib_csv(log: &ParsedLog) -> String {
    let mut out = String::from("run,phase,component,cause,region,cycles,share_pct\n");
    for run in 0..log.runs.len() {
        let mut rows = fold_stacks(log, Some(run as u64));
        let total: u64 = rows.iter().map(|&(_, c)| c).sum();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (stack, cycles) in rows {
            let mut f = stack.split(';');
            let phase = f.next().unwrap_or("");
            let component = f.next().unwrap_or("");
            let cause = f.next().unwrap_or("");
            let region = f.next().unwrap_or("");
            let share = 100.0 * cycles as f64 / total.max(1) as f64;
            let _ = writeln!(
                out,
                "{run},{phase},{component},{cause},{region},{cycles},{share:.3}"
            );
        }
    }
    out
}

/// Renders the attribution stacks in folded-stack format — one
/// `frame;frame;... weight` line per distinct stack, cycles summed
/// across runs and jobs — ready for inferno / flamegraph.pl /
/// speedscope.
pub fn render_folded(log: &ParsedLog) -> String {
    let mut out = String::new();
    for (stack, cycles) in fold_stacks(log, None) {
        let _ = writeln!(out, "{stack} {cycles}");
    }
    out
}

/// Sums attribution cycles per distinct stack, optionally restricted to
/// one run, sorted by stack name.
fn fold_stacks(log: &ParsedLog, run: Option<u64>) -> Vec<(String, u64)> {
    let mut folded: Vec<(String, u64)> = Vec::new();
    for at in &log.attribs {
        if run.is_some_and(|r| at.run != r) {
            continue;
        }
        match folded.iter_mut().find(|(s, _)| s == &at.stack) {
            Some((_, c)) => *c += at.cycles,
            None => folded.push((at.stack.clone(), at.cycles)),
        }
    }
    folded.sort_by(|a, b| a.0.cmp(&b.0));
    folded
}

/// Renders the interval series as CSV: fixed columns, then one column
/// per counter name in first-seen order.
pub fn render_interval_csv(log: &ParsedLog) -> String {
    let mut counter_names: Vec<&str> = Vec::new();
    for iv in &log.intervals {
        for (name, _) in &iv.counters {
            if !counter_names.iter().any(|n| n == name) {
                counter_names.push(name);
            }
        }
    }
    let mut out = String::from("run,tag,id,seq,start,end,gc");
    for name in &counter_names {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for iv in &log.intervals {
        let tag = log
            .runs
            .get(iv.run as usize)
            .map(|r| r.tag.as_str())
            .unwrap_or("");
        let _ = write!(
            out,
            "{},{},{},{},{},{},{}",
            iv.run,
            csv_field(tag),
            iv.id,
            iv.seq,
            iv.start,
            iv.end,
            iv.gc as u8
        );
        for name in &counter_names {
            out.push(',');
            if let Some((_, v)) = iv.counters.iter().find(|(n, _)| n == name) {
                out.push_str(&v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::runlog::{JobSpan, RunLog, RunMeta};

    fn sample_log() -> String {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "parallel".into(),
            effort: "quick".into(),
            threads: 2,
            jobs: 3,
        });
        for (id, (worker, claim, hint, wall)) in
            [(0u64, 2u64, 30u64, 0.3), (1, 0, 50, 0.5), (0, 1, 40, 0.4)]
                .into_iter()
                .enumerate()
        {
            log.record_span(JobSpan {
                run,
                id,
                label: Some(format!("seed-{id}")),
                worker: worker as usize,
                claim: claim as usize,
                cost_hint: Some(hint),
                wall_secs: wall,
                counters: None,
            });
        }
        log.to_jsonl(&Provenance {
            git_rev: "abc123".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
            workers: None,
            effort: None,
            sim_mode: None,
        })
    }

    #[test]
    fn check_accepts_runlog_output() {
        let parsed = check(&sample_log()).unwrap();
        assert_eq!(parsed.runs.len(), 1);
        assert_eq!(parsed.jobs.len(), 3);
        assert_eq!(parsed.provenance.as_ref().unwrap().git_rev, "abc123");
    }

    #[test]
    fn check_rejects_missing_fields_and_bad_refs() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        // Job before its run event.
        let bad = format!(
            "{prov}\n{{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}}"
        );
        assert!(check(&bad).unwrap_err().contains("before its run event"));
        // Run declares more jobs than the log holds.
        let short = format!(
            "{prov}\n{{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":2}}"
        );
        assert!(check(&short).unwrap_err().contains("declares 2 jobs"));
        // Not JSON at all.
        assert!(check("not json").unwrap_err().contains("line 1"));
        // No provenance.
        assert!(check("").unwrap_err().contains("no provenance"));
    }

    #[test]
    fn text_report_has_worker_table_and_audit() {
        let parsed = check(&sample_log()).unwrap();
        let text = render_text(&parsed);
        assert!(text.contains("rev abc123 on h"));
        assert!(text.contains("run 0 [parallel]"));
        assert!(text.contains("worker   jobs"));
        // Claims 0,1,2 carry hints 50,40,30: perfectly largest-first,
        // and wall times track hints exactly.
        assert!(text.contains("largest-first: 2/2 adjacent claims non-increasing"));
        assert!(text.contains("concordance 3/3"));
    }

    #[test]
    fn csv_has_one_row_per_job() {
        let parsed = check(&sample_log()).unwrap();
        let csv = render_csv(&parsed);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "run,tag,id,label,worker,claim,cost_hint,wall_secs"
        );
        // The serializer orders spans by claim; claim 0 was job id 1.
        assert!(lines[1].starts_with("0,parallel,1,seed-1,"));
    }

    fn interval_log() -> String {
        use crate::registry::{CounterDesc, CounterKind, CounterSet, Snapshot};
        use crate::runlog::{HistRecord, IntervalRecord};
        use crate::Histogram;

        struct Pair {
            cb: u64,
            rate: u64,
        }
        impl CounterSet for Pair {
            fn descriptors(&self) -> &'static [CounterDesc] {
                const D: [CounterDesc; 2] = [
                    CounterDesc::new("bus.snoop_cb", CounterKind::Count),
                    CounterDesc::new("bus.snoop_filter_ppm", CounterKind::Ratio),
                ];
                &D
            }
            fn values(&self, out: &mut Vec<u64>) {
                let Pair { cb, rate } = self;
                out.extend([*cb, *rate]);
            }
        }

        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "simstat".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: Some("gc-trace".into()),
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.1,
            counters: None,
        });
        // cb sums to 90; ppm must average to 500_000, not sum to 1.5M.
        for (seq, (cb, rate, gc)) in [
            (50u64, 400_000u64, false),
            (10, 600_000, true),
            (30, 500_000, false),
        ]
        .into_iter()
        .enumerate()
        {
            log.record_intervals(std::iter::once(IntervalRecord {
                run,
                id: 0,
                seq,
                start: seq as u64 * 1000,
                end: (seq as u64 + 1) * 1000,
                gc,
                counters: Snapshot::of(&Pair { cb, rate }),
            }));
        }
        let mut h = Histogram::new();
        for _ in 0..98 {
            h.record(12);
        }
        h.record(4000);
        log.record_hist(HistRecord {
            run,
            id: 0,
            name: "mem.latency".into(),
            hist: h,
        });
        log.to_jsonl(&Provenance {
            git_rev: "abc123".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
            workers: None,
            effort: None,
            sim_mode: None,
        })
    }

    #[test]
    fn check_accepts_interval_and_hist_records() {
        let parsed = check(&interval_log()).unwrap();
        assert_eq!(parsed.intervals.len(), 3);
        assert_eq!(parsed.hists.len(), 1);
        assert!(parsed.intervals[1].gc);
        assert_eq!(parsed.hists[0].hist.count(), 99);
        assert_eq!(parsed.hists[0].hist.p99(), 4095);
    }

    #[test]
    fn check_rejects_malformed_interval_records() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        let run = "{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":1}";
        let job = "{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}";
        // Backwards window.
        let bad = format!(
            "{prov}\n{run}\n{job}\n{{\"ev\":\"interval\",\"run\":0,\"id\":0,\"seq\":0,\"start\":200,\"end\":100,\"gc\":false,\"counters\":{{}}}}"
        );
        assert!(check(&bad).unwrap_err().contains("empty or backwards"));
        // Missing gc flag.
        let bad = format!(
            "{prov}\n{run}\n{job}\n{{\"ev\":\"interval\",\"run\":0,\"id\":0,\"seq\":0,\"start\":0,\"end\":100,\"counters\":{{}}}}"
        );
        assert!(check(&bad).unwrap_err().contains("\"gc\""));
        // Interval before its run event.
        let bad = format!(
            "{prov}\n{{\"ev\":\"interval\",\"run\":1,\"id\":0,\"seq\":0,\"start\":0,\"end\":100,\"gc\":false,\"counters\":{{}}}}"
        );
        assert!(check(&bad).unwrap_err().contains("before its run event"));
        // Gapped sequence numbers.
        let bad = format!(
            "{prov}\n{run}\n{job}\n{{\"ev\":\"interval\",\"run\":0,\"id\":0,\"seq\":1,\"start\":0,\"end\":100,\"gc\":false,\"counters\":{{}}}}"
        );
        assert!(check(&bad).unwrap_err().contains("out of order"));
        // Histogram with the wrong bucket count.
        let bad = format!(
            "{prov}\n{run}\n{job}\n{{\"ev\":\"hist\",\"run\":0,\"id\":0,\"name\":\"x\",\"count\":0,\"sum\":0,\"buckets\":[0,0]}}"
        );
        assert!(check(&bad).unwrap_err().contains("buckets"));
    }

    #[test]
    fn check_accepts_sample_unit_records() {
        use crate::runlog::SampleUnitRecord;
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "sampled".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: Some("sampled-job".into()),
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.1,
            counters: None,
        });
        // Recorded out of order; the serializer must sort by unit.
        log.record_sample_units([
            SampleUnitRecord {
                run,
                id: 0,
                unit: 1,
                cluster: 1,
                start: 1000,
                end: 2000,
                detailed: false,
                weight_ppm: 500_000,
            },
            SampleUnitRecord {
                run,
                id: 0,
                unit: 0,
                cluster: 0,
                start: 0,
                end: 1000,
                detailed: true,
                weight_ppm: 500_000,
            },
        ]);
        assert_eq!(log.sample_unit_count(), 2);
        let jsonl = log.to_jsonl(&Provenance {
            git_rev: "abc123".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
            workers: None,
            effort: None,
            sim_mode: None,
        });
        let parsed = check(&jsonl).unwrap();
        assert_eq!(parsed.sample_units.len(), 2);
        assert_eq!(parsed.sample_units[0].unit, 0);
        assert!(parsed.sample_units[0].detailed);
        assert_eq!(parsed.sample_units[1].cluster, 1);
    }

    #[test]
    fn check_rejects_malformed_sample_unit_records() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        let run = "{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":1}";
        let job = "{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}";
        let unit = |body: &str| format!("{prov}\n{run}\n{job}\n{{\"ev\":\"sample_unit\",{body}}}");
        // Backwards window.
        let bad = unit(
            "\"run\":0,\"id\":0,\"unit\":0,\"cluster\":0,\"start\":200,\"end\":100,\"detailed\":true,\"weight_ppm\":1",
        );
        assert!(check(&bad).unwrap_err().contains("empty or backwards"));
        // Weight above 1e6 ppm.
        let bad = unit(
            "\"run\":0,\"id\":0,\"unit\":0,\"cluster\":0,\"start\":0,\"end\":100,\"detailed\":true,\"weight_ppm\":1000001",
        );
        assert!(check(&bad).unwrap_err().contains("exceeds 1e6"));
        // Job id out of range.
        let bad = unit(
            "\"run\":0,\"id\":7,\"unit\":0,\"cluster\":0,\"start\":0,\"end\":100,\"detailed\":true,\"weight_ppm\":1",
        );
        assert!(check(&bad).unwrap_err().contains("out of range"));
        // Missing detailed flag.
        let bad = unit(
            "\"run\":0,\"id\":0,\"unit\":0,\"cluster\":0,\"start\":0,\"end\":100,\"weight_ppm\":1",
        );
        assert!(check(&bad).unwrap_err().contains("\"detailed\""));
        // Gapped unit numbering.
        let bad = unit(
            "\"run\":0,\"id\":0,\"unit\":1,\"cluster\":0,\"start\":0,\"end\":100,\"detailed\":true,\"weight_ppm\":1",
        );
        assert!(check(&bad).unwrap_err().contains("out of order"));
        // Before its run event.
        let bad = format!(
            "{prov}\n{{\"ev\":\"sample_unit\",\"run\":0,\"id\":0,\"unit\":0,\"cluster\":0,\"start\":0,\"end\":100,\"detailed\":true,\"weight_ppm\":1}}"
        );
        assert!(check(&bad).unwrap_err().contains("before its run event"));
    }

    #[test]
    fn check_accepts_event_records_and_provenance_extras() {
        use crate::runlog::EventRecord;
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "timeline".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: None,
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.1,
            counters: None,
        });
        log.record_events([
            EventRecord {
                run,
                id: 0,
                name: "gc.pause".into(),
                start: 100,
                end: 400,
            },
            EventRecord {
                run,
                id: 0,
                name: "window.reset".into(),
                start: 0,
                end: 0,
            },
        ]);
        let jsonl = log.to_jsonl(&Provenance {
            git_rev: "abc123".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
            workers: Some(2),
            effort: Some("quick".into()),
            sim_mode: Some("full".into()),
        });
        let parsed = check(&jsonl).unwrap();
        assert_eq!(parsed.events.len(), 2);
        // Serializer sorts by start: the instant comes first.
        assert_eq!(parsed.events[0].name, "window.reset");
        assert_eq!(parsed.events[0].start, parsed.events[0].end);
        assert_eq!(parsed.events[1].name, "gc.pause");
        let prov = parsed.provenance.unwrap();
        assert_eq!(prov.workers, Some(2));
        assert_eq!(prov.effort.as_deref(), Some("quick"));
        assert_eq!(prov.sim_mode.as_deref(), Some("full"));
    }

    #[test]
    fn check_rejects_malformed_event_records() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        let run = "{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":1}";
        let job = "{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}";
        let event = |body: &str| format!("{prov}\n{run}\n{job}\n{{\"ev\":\"event\",{body}}}");
        // Backwards span.
        let bad = event("\"run\":0,\"id\":0,\"name\":\"gc.pause\",\"start\":200,\"end\":100");
        assert!(check(&bad).unwrap_err().contains("backwards"));
        // Job id out of range.
        let bad = event("\"run\":0,\"id\":7,\"name\":\"gc.pause\",\"start\":0,\"end\":100");
        assert!(check(&bad).unwrap_err().contains("out of range"));
        // Empty name.
        let bad = event("\"run\":0,\"id\":0,\"name\":\"\",\"start\":0,\"end\":100");
        assert!(check(&bad).unwrap_err().contains("name is empty"));
        // Before its run event.
        let bad = format!(
            "{prov}\n{{\"ev\":\"event\",\"run\":0,\"id\":0,\"name\":\"gc.pause\",\"start\":0,\"end\":100}}"
        );
        assert!(check(&bad).unwrap_err().contains("before its run event"));
    }

    #[test]
    fn check_rejects_misweighted_sample_unit_schedules() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        let run = "{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":1}";
        let job = "{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}";
        let unit = |n: u64, cluster: u64, w: u64| {
            format!(
                "{{\"ev\":\"sample_unit\",\"run\":0,\"id\":0,\"unit\":{n},\"cluster\":{cluster},\
                 \"start\":{},\"end\":{},\"detailed\":true,\"weight_ppm\":{w}}}",
                n * 100,
                (n + 1) * 100,
            )
        };
        let log = |units: &[String]| format!("{prov}\n{run}\n{job}\n{}", units.join("\n"));

        // A lost cluster: weights stop short of the whole window.
        let bad = log(&[unit(0, 0, 500_000)]);
        assert!(check(&bad).unwrap_err().contains("sum to 500000 ppm"));
        // Units of one cluster must agree on its weight.
        let bad = log(&[unit(0, 0, 600_000), unit(1, 0, 400_000)]);
        assert!(check(&bad).unwrap_err().contains("disagree on weight"));
        // Floor shortfall within one ppm per cluster is fine: three
        // clusters at 333_333 ppm leave 1 ppm unaccounted.
        let ok = log(&[
            unit(0, 0, 333_333),
            unit(1, 1, 333_333),
            unit(2, 2, 333_333),
        ]);
        assert_eq!(check(&ok).unwrap().sample_units.len(), 3);
        // Repeated units of one cluster don't double-count its share.
        let ok = log(&[
            unit(0, 0, 500_000),
            unit(1, 1, 500_000),
            unit(2, 1, 500_000),
        ]);
        assert_eq!(check(&ok).unwrap().sample_units.len(), 3);
    }

    #[test]
    fn simstat_renders_tables_sparklines_and_percentiles() {
        let parsed = check(&interval_log()).unwrap();
        let text = render_simstat(&parsed);
        assert!(text.contains("run 0 job 0 [gc-trace]: 3 intervals x 1000 cycles"));
        assert!(text.contains("seq  start_mcyc  gc"));
        assert!(text.contains("bus.snoop_cb"));
        // GC line marks interval 1 only.
        assert!(text.contains("|.#.|"));
        // Monotonic counter sums; ratio counter averages.
        assert!(text.contains("90 (sum)"));
        assert!(text.contains("500000 (mean)"));
        assert!(!text.contains("1500000"));
        // Histogram percentile table.
        assert!(text.contains("mem.latency"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn interval_csv_has_one_row_per_interval() {
        let parsed = check(&interval_log()).unwrap();
        let csv = render_interval_csv(&parsed);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "run,tag,id,seq,start,end,gc,bus.snoop_cb,bus.snoop_filter_ppm"
        );
        assert_eq!(lines[1], "0,simstat,0,0,0,1000,0,50,400000");
        assert_eq!(lines[2], "0,simstat,0,1,1000,2000,1,10,600000");
    }

    fn attrib_log() -> String {
        use crate::runlog::AttribRecord;
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "attrib".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: Some("specjbb".into()),
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: 0.1,
            counters: None,
        });
        log.record_attribs([
            AttribRecord {
                run,
                id: 0,
                stack: "mutator;data_stall;memory;eden".into(),
                cycles: 700,
            },
            AttribRecord {
                run,
                id: 0,
                stack: "mutator;data_stall;c2c;old_gen".into(),
                cycles: 200,
            },
            AttribRecord {
                run,
                id: 0,
                stack: "gc;other;base;all".into(),
                cycles: 100,
            },
        ]);
        log.to_jsonl(&Provenance {
            git_rev: "abc123".into(),
            hostname: "h".into(),
            cpu_count: 2,
            timestamp: 1,
            workers: None,
            effort: None,
            sim_mode: None,
        })
    }

    #[test]
    fn check_accepts_attrib_records() {
        let parsed = check(&attrib_log()).unwrap();
        assert_eq!(parsed.attribs.len(), 3);
        // Serializer sorts by (run, id, stack).
        assert_eq!(parsed.attribs[0].stack, "gc;other;base;all");
        assert_eq!(parsed.attribs[2].cycles, 700);
    }

    #[test]
    fn check_rejects_malformed_attrib_records() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        let run = "{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":1}";
        let job = "{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1}";
        let attrib = |body: &str| format!("{prov}\n{run}\n{job}\n{{\"ev\":\"attrib\",{body}}}");
        // Wrong frame count.
        let bad = attrib("\"run\":0,\"id\":0,\"stack\":\"mutator;data_stall\",\"cycles\":10");
        assert!(check(&bad).unwrap_err().contains("non-empty"));
        // Empty frame.
        let bad = attrib("\"run\":0,\"id\":0,\"stack\":\"mutator;;c2c;eden\",\"cycles\":10");
        assert!(check(&bad).unwrap_err().contains("non-empty"));
        // Zero weight.
        let bad = attrib("\"run\":0,\"id\":0,\"stack\":\"a;b;c;d\",\"cycles\":0");
        assert!(check(&bad).unwrap_err().contains("zero cycles"));
        // Job id out of range.
        let bad = attrib("\"run\":0,\"id\":7,\"stack\":\"a;b;c;d\",\"cycles\":1");
        assert!(check(&bad).unwrap_err().contains("out of range"));
        // Before its run event.
        let bad = format!(
            "{prov}\n{{\"ev\":\"attrib\",\"run\":0,\"id\":0,\"stack\":\"a;b;c;d\",\"cycles\":1}}"
        );
        assert!(check(&bad).unwrap_err().contains("before its run event"));
        // Duplicate stack within one job.
        let stack = "{\"ev\":\"attrib\",\"run\":0,\"id\":0,\"stack\":\"a;b;c;d\",\"cycles\":1}";
        let bad = format!("{prov}\n{run}\n{job}\n{stack}\n{stack}");
        assert!(check(&bad).unwrap_err().contains("duplicate attrib stack"));
    }

    #[test]
    fn check_cross_validates_attrib_sum_against_span_counter() {
        let prov = "{\"ev\":\"provenance\",\"git_rev\":\"a\",\"hostname\":\"h\",\"cpu_count\":1,\"timestamp\":0}";
        let run = "{\"ev\":\"run\",\"run\":0,\"tag\":\"t\",\"effort\":\"quick\",\"threads\":1,\"jobs\":1}";
        let job = |declared: u64| {
            format!(
                "{{\"ev\":\"job\",\"run\":0,\"id\":0,\"worker\":0,\"claim\":0,\"wall_secs\":0.1,\
                 \"counters\":{{\"attrib.cycles\":{declared}}}}}"
            )
        };
        let stack = "{\"ev\":\"attrib\",\"run\":0,\"id\":0,\"stack\":\"a;b;c;d\",\"cycles\":40}";
        let ok = format!("{prov}\n{run}\n{}\n{stack}", job(40));
        assert!(check(&ok).is_ok());
        let bad = format!("{prov}\n{run}\n{}\n{stack}", job(41));
        let err = check(&bad).unwrap_err();
        assert!(err.contains("sum to 40"), "{err}");
        assert!(err.contains("attrib.cycles=41"), "{err}");
    }

    #[test]
    fn attrib_report_rolls_up_phases_and_ranks_stacks() {
        let parsed = check(&attrib_log()).unwrap();
        let text = render_attrib(&parsed);
        assert!(text.contains("3 stacks, 1000 cycles attributed"));
        // Phase roll-up: mutator 90%, gc 10%.
        assert!(text.contains("mutator"));
        assert!(text.contains("90.0%"));
        assert!(text.contains("10.0%"));
        // Largest stack ranks first in the table body (after the
        // column-header line).
        let table = &text[text.find("\n  stack").unwrap()..];
        let memory = table.find("mutator;data_stall;memory;eden").unwrap();
        let c2c = table.find("mutator;data_stall;c2c;old_gen").unwrap();
        assert!(memory < c2c);
    }

    #[test]
    fn folded_output_is_flamegraph_ready() {
        let parsed = check(&attrib_log()).unwrap();
        let folded = render_folded(&parsed);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.contains(&"mutator;data_stall;memory;eden 700"));
        // Every line is `frames <weight>` with exactly one space.
        for line in &lines {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 4);
            weight.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn attrib_csv_splits_frames_and_ranks_largest_first() {
        let parsed = check(&attrib_log()).unwrap();
        let csv = render_attrib_csv(&parsed);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "run,phase,component,cause,region,cycles,share_pct"
        );
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "0,mutator,data_stall,memory,eden,700,70.000");
        assert_eq!(lines[2], "0,mutator,data_stall,c2c,old_gen,200,20.000");
        assert_eq!(lines[3], "0,gc,other,base,all,100,10.000");
    }

    #[test]
    fn counters_sum_and_widen_csv() {
        let log = RunLog::new();
        let run = log.begin_run(RunMeta {
            tag: "t".into(),
            effort: "quick".into(),
            threads: 1,
            jobs: 2,
        });
        for id in 0..2usize {
            log.record_span(JobSpan {
                run,
                id,
                label: None,
                worker: 0,
                claim: id,
                cost_hint: None,
                wall_secs: 0.1,
                counters: {
                    use crate::registry::{CounterDesc, CounterKind, CounterSet, Snapshot};
                    struct One(u64);
                    impl CounterSet for One {
                        fn descriptors(&self) -> &'static [CounterDesc] {
                            const D: [CounterDesc; 1] =
                                [CounterDesc::new("bus.gets", CounterKind::Count)];
                            &D
                        }
                        fn values(&self, out: &mut Vec<u64>) {
                            let One(v) = self;
                            out.push(*v);
                        }
                    }
                    Some(Snapshot::of(&One(10 + id as u64)))
                },
            });
        }
        let text = log.to_jsonl(&Provenance {
            git_rev: "r".into(),
            hostname: "h".into(),
            cpu_count: 1,
            timestamp: 0,
            workers: None,
            effort: None,
            sim_mode: None,
        });
        let parsed = check(&text).unwrap();
        let report = render_text(&parsed);
        assert!(report.contains("counters (aggregated over 2 jobs):"));
        assert!(report.contains("bus.gets"));
        assert!(report.contains("21"));
        let csv = render_csv(&parsed);
        assert!(csv.lines().next().unwrap().ends_with(",bus.gets"));
        assert!(csv.contains(",10\n") || csv.contains(",10\r\n"));
    }
}
