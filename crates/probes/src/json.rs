//! A minimal JSON reader/writer.
//!
//! The workspace is dependency-free by design (ROADMAP: the container
//! cannot resolve crates.io), so the RunLog serializer and the
//! `simreport` renderer share this ~200-line subset instead of serde:
//! the full JSON value grammar, parsed into an order-preserving tree.
//! Numbers are kept as `f64`, which is exact for every counter the
//! simulator can realistically produce in one run (< 2^53).

use std::fmt;

/// A parsed JSON value. Object members preserve source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if it is an array.
    pub fn elements(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Quotes and escapes a string as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain UTF-8 bytes.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired;
                            // nothing we emit uses them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number run");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).unwrap(),
            &Json::Num(-2.5)
        );
        match v.get("b").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Bool(true));
                assert_eq!(items[1], Json::Null);
                assert_eq!(items[2], Json::Str("x\n".into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .members()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn quote_round_trips_through_parse() {
        let original = "a \"quoted\"\tline\nwith \\ specials";
        let parsed = parse(&quote(original)).unwrap();
        assert_eq!(parsed, Json::Str(original.into()));
    }

    #[test]
    fn u64_helper_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn decodes_every_escape_form() {
        let v = parse(r#""\"\\\/\b\f\n\r\tAé☃""#).unwrap();
        assert_eq!(v.as_str(), Some("\"\\/\u{8}\u{c}\n\r\tAé☃"));
        // \u0000 is a valid scalar even though quote() re-encodes it.
        assert_eq!(parse("\"\\u0000\"").unwrap().as_str(), Some("\0"));
        // Control characters survive a quote/parse round trip.
        let original = "bell\u{7} and nul\0";
        assert_eq!(parse(&quote(original)).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_bad_escapes() {
        assert!(parse(r#""\q""#).is_err(), "unknown escape letter");
        assert!(parse(r#""\u12""#).is_err(), "truncated \\u escape");
        assert!(parse(r#""\uzzzz""#).is_err(), "non-hex \\u escape");
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate");
        assert!(parse(r#""\"#).is_err(), "escape at end of input");
    }

    #[test]
    fn truncated_documents_error_instead_of_panicking() {
        for src in [
            "{\"a\":",
            "{\"a\": 1,",
            "[1, 2",
            "\"unterminated",
            "tru",
            "-",
            "{\"a\": \"b",
            "[[[",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail to parse");
        }
    }

    #[test]
    fn deeply_nested_arrays_parse_and_navigate() {
        // 2000 levels of nesting: the parser must neither reject nor
        // blow the stack (Parser::array loops only via value(), so depth
        // is bounded by recursion — keep it well inside default stacks).
        let depth = 2000;
        let mut src = String::new();
        for _ in 0..depth {
            src.push('[');
        }
        src.push('7');
        for _ in 0..depth {
            src.push(']');
        }
        let mut v = &parse(&src).unwrap();
        let mut seen = 0;
        while let Some(items) = v.elements() {
            assert_eq!(items.len(), 1);
            v = &items[0];
            seen += 1;
        }
        assert_eq!(seen, depth);
        assert_eq!(v.as_u64(), Some(7));
        // An unbalanced deep nest still errors cleanly.
        assert!(parse(&"[".repeat(depth)).is_err());
    }
}
