//! A dependency-free log2-bucketed latency histogram.
//!
//! The paper's latency claims are distributional — a mean memory stall
//! says nothing about the bimodal hit/copyback split Figure 7 turns on —
//! so the simulator records full shapes. Buckets are powers of two:
//! bucket 0 holds the value 0, bucket `i >= 1` holds
//! `2^(i-1) ..= 2^i - 1`, and the top bucket saturates. The bucket count
//! is fixed ([`Histogram::BUCKETS`]) so serialized snapshots stay flat
//! and two histograms always merge elementwise, regardless of what they
//! observed.
//!
//! Quantiles are deterministic integers: the first bucket whose
//! cumulative count reaches the rank, reported as that bucket's upper
//! bound. That keeps p50/p90/p99 stable across platforms — no float
//! interpolation — at the price of log2 resolution, which is exactly
//! the resolution the buckets hold anyway.

use std::fmt;

/// A fixed-shape log2 histogram of `u64` samples (latencies in cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Number of buckets. Bucket 0 is the value 0; bucket `i` covers
    /// `2^(i-1) ..= 2^i - 1`; the last bucket holds everything from
    /// `2^(BUCKETS-2)` up (about 5.5e11 — beyond any plausible
    /// single-event latency in cycles).
    pub const BUCKETS: usize = 40;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(Histogram::BUCKETS - 1)
        }
    }

    /// The largest value bucket `i` can hold (used as the quantile
    /// representative). The saturating top bucket reports its lower
    /// bound — an honest "at least this much" rather than `u64::MAX`.
    pub fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            i if i < Histogram::BUCKETS - 1 => (1u64 << i) - 1,
            _ => 1u64 << (Histogram::BUCKETS - 2),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.buckets[Histogram::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; Histogram::BUCKETS] {
        &self.buckets
    }

    /// Folds `other` into `self` elementwise. Because the shape is
    /// fixed, merging is total, associative, and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a deterministic integer: the
    /// upper bound of the first bucket whose cumulative count reaches
    /// rank `ceil(q * count)`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(Histogram::BUCKETS - 1)
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Serializes as a flat JSON object:
    /// `{"count":N,"sum":S,"buckets":[...]}` (always
    /// [`Histogram::BUCKETS`] bucket entries).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[",
            self.count, self.sum
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.to_string());
        }
        s.push_str("]}");
        s
    }

    /// Rebuilds a histogram from parsed bucket counts (the report
    /// reader). Fails if the bucket count is not [`Histogram::BUCKETS`]
    /// or the declared `count` disagrees with the bucket total.
    pub fn from_parts(count: u64, sum: u64, buckets: &[u64]) -> Result<Self, String> {
        if buckets.len() != Histogram::BUCKETS {
            return Err(format!(
                "histogram has {} buckets, expected {}",
                buckets.len(),
                Histogram::BUCKETS
            ));
        }
        let total: u64 = buckets.iter().sum();
        if total != count {
            return Err(format!(
                "histogram declares count {count} but buckets sum to {total}"
            ));
        }
        let mut h = Histogram::new();
        h.buckets.copy_from_slice(buckets);
        h.count = count;
        h.sum = sum;
        Ok(h)
    }
}

impl fmt::Display for Histogram {
    /// One row per non-empty bucket: `[lo..hi]  count  bar`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            let hi = Histogram::bucket_bound(i);
            let bar = "#".repeat(((b as f64 / peak as f64) * 40.0).ceil() as usize);
            writeln!(f, "  [{lo:>12} .. {hi:>12}]  {b:>10}  {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_split_out() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), Histogram::BUCKETS - 1);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2);
        assert!((h.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 9, 200]);
        let b = mk(&[0, 0, 64, 1 << 30]);
        let c = mk(&[7, 7, 7]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge must be commutative");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        // A spread-out sample: powers of 3 mod a big range.
        let mut v = 1u64;
        for _ in 0..500 {
            h.record(v % 100_000);
            v = v.wrapping_mul(3).wrapping_add(17);
        }
        let mut last = 0u64;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let cur = h.quantile(q);
            assert!(
                cur >= last,
                "quantile({q}) = {cur} fell below quantile at previous step = {last}"
            );
            last = cur;
        }
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8..15]
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512..1023]
        }
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p90(), 15);
        assert_eq!(h.p99(), 1023);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 0, "quantile({q}) on empty histogram");
        }
        assert!(h.is_empty());
        assert_eq!(h.to_json(), {
            let mut s = String::from("{\"count\":0,\"sum\":0,\"buckets\":[0");
            s.push_str(&",0".repeat(Histogram::BUCKETS - 1));
            s.push_str("]}");
            s
        });
    }

    #[test]
    fn single_bucket_histogram_pins_every_quantile() {
        // All mass in one bucket: every quantile is that bucket's upper
        // bound, regardless of rank.
        let mut h = Histogram::new();
        h.record_n(10, 1_000); // bucket [8..15]
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 15, "quantile({q})");
        }
        // Out-of-range q clamps instead of indexing out of the buckets.
        assert_eq!(h.quantile(-1.0), 15);
        assert_eq!(h.quantile(2.0), 15);

        // A single sample of zero stays in the zero bucket.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.p50(), 0);
        assert_eq!(z.p99(), 0);
        assert_eq!(z.mean(), 0.0);

        // The saturating top bucket reports its lower bound, not
        // u64::MAX.
        let mut top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.p50(), 1u64 << (Histogram::BUCKETS - 2));
    }

    #[test]
    fn json_round_trips_through_from_parts() {
        let mut h = Histogram::new();
        for v in [0, 3, 3, 70, 5000] {
            h.record(v);
        }
        let text = h.to_json();
        let v = crate::json::parse(&text).unwrap();
        let count = v.get("count").and_then(crate::json::Json::as_u64).unwrap();
        let sum = v.get("sum").and_then(crate::json::Json::as_u64).unwrap();
        let buckets: Vec<u64> = match v.get("buckets").unwrap() {
            crate::json::Json::Arr(items) => items.iter().map(|b| b.as_u64().unwrap()).collect(),
            other => panic!("expected array, got {other:?}"),
        };
        let back = Histogram::from_parts(count, sum, &buckets).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_parts_rejects_malformed_shapes() {
        assert!(Histogram::from_parts(1, 0, &[0; 3]).is_err());
        let mut buckets = [0u64; Histogram::BUCKETS];
        buckets[1] = 2;
        assert!(Histogram::from_parts(1, 0, &buckets).is_err());
    }
}
