//! The counter registry: static descriptor tables over live stats
//! structs, and flat ordered snapshots with deltas.
//!
//! Every stats struct in the simulation crates registers itself by
//! implementing [`CounterSet`]: a `'static` table of [`CounterDesc`]
//! (dot-separated name, [`CounterKind`]) plus a `values` method that
//! reads the current field values *in descriptor order*. Implementations
//! destructure their struct exhaustively, so adding a field without
//! registering it is a compile error — the registry cannot silently
//! drift from the structs it describes.
//!
//! A [`Snapshot`] is the uniform export: a flat, ordered `name → u64`
//! sequence assembled from any number of counter sets, diffable against
//! an earlier snapshot of the same shape (the `cpustat` interval-sample
//! workflow).

use std::fmt;

use crate::json;

/// What a counter's value means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// A monotonic event count (references, transactions, snoops).
    Count,
    /// A monotonic cycle total.
    Cycles,
    /// A derived ratio scaled to parts-per-million (so snapshots stay
    /// flat `u64`); deltas carry the *later* value, ratios of deltas
    /// are computed by renderers from the underlying counts. By
    /// convention ratio counter names end in `_ppm`, which is how
    /// kind-blind consumers (the JSONL report) recognize them.
    Ratio,
}

impl CounterKind {
    /// Short unit suffix used by renderers (`cpustat` prints raw
    /// numbers; we annotate).
    pub fn unit(self) -> &'static str {
        match self {
            CounterKind::Count => "events",
            CounterKind::Cycles => "cycles",
            CounterKind::Ratio => "ppm",
        }
    }
}

/// How much run-to-run movement a counter is allowed before a
/// `simdiff` comparison flags it as drift.
///
/// The class is declared on the descriptor, next to the kind, because
/// the code that maintains a counter is the only place that knows
/// whether it is a pure function of the seeded simulation (`Exact`) or
/// carries statistical/timing noise (`Tolerance`): extrapolated
/// sampled-mode estimates, queueing-model occupancies, ppm ratios of
/// small denominators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriftClass {
    /// Deterministic: any difference between two same-seed runs is a
    /// regression. The default.
    Exact,
    /// Sampled or timing-sensitive: relative drift up to this many
    /// parts-per-million is in-band.
    Tolerance(u64),
}

/// One registered counter: a dot-separated name and its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterDesc {
    /// Dot-separated hierarchical name, e.g. `bus.snoop_cb`.
    pub name: &'static str,
    /// What the value means.
    pub kind: CounterKind,
    /// How much run-to-run drift is in-band for `simdiff`.
    pub drift: DriftClass,
}

impl CounterDesc {
    /// Shorthand constructor for descriptor tables. Counters default to
    /// [`DriftClass::Exact`]; mark noisy ones with [`with_drift`].
    ///
    /// [`with_drift`]: CounterDesc::with_drift
    pub const fn new(name: &'static str, kind: CounterKind) -> Self {
        CounterDesc {
            name,
            kind,
            drift: DriftClass::Exact,
        }
    }

    /// Declares the counter's drift class (builder-style, usable in
    /// `const` descriptor tables).
    pub const fn with_drift(mut self, drift: DriftClass) -> Self {
        self.drift = drift;
        self
    }
}

/// A stats struct that publishes its counters to the registry.
///
/// The contract: `values` pushes exactly `descriptors().len()` values,
/// in descriptor order, reading (never mutating) the live fields.
/// Implementations should destructure `self` exhaustively so that a new
/// field breaks compilation until it is registered.
pub trait CounterSet {
    /// The static descriptor table.
    fn descriptors(&self) -> &'static [CounterDesc];

    /// Appends the current value of every descriptor, in order.
    fn values(&self, out: &mut Vec<u64>);
}

/// Scales a `0..=1` ratio into the registry's parts-per-million fixed
/// point (saturating; NaN maps to 0).
pub fn ratio_ppm(r: f64) -> u64 {
    if r.is_finite() && r > 0.0 {
        (r * 1_000_000.0).round() as u64
    } else {
        0
    }
}

/// A flat, ordered `name → u64` sample of one or more counter sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    names: Vec<&'static str>,
    kinds: Vec<CounterKind>,
    values: Vec<u64>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Samples `set`, appending its counters in descriptor order.
    ///
    /// # Panics
    ///
    /// Panics if the set pushes a different number of values than it
    /// declares descriptors — the registry contract.
    pub fn record(&mut self, set: &dyn CounterSet) {
        let descs = set.descriptors();
        let before = self.values.len();
        set.values(&mut self.values);
        assert_eq!(
            self.values.len() - before,
            descs.len(),
            "counter set pushed a different number of values than it registered"
        );
        for d in descs {
            self.names.push(d.name);
            self.kinds.push(d.kind);
        }
    }

    /// Builds a snapshot from one set.
    pub fn of(set: &dyn CounterSet) -> Self {
        let mut s = Snapshot::new();
        s.record(set);
        s
    }

    /// Number of counters in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no counters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(name, kind, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, CounterKind, u64)> + '_ {
        self.names
            .iter()
            .zip(&self.kinds)
            .zip(&self.values)
            .map(|((&n, &k), &v)| (n, k, v))
    }

    /// The value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }

    /// Whether every counter name appears exactly once.
    pub fn names_unique(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.names.iter().all(|&n| seen.insert(n))
    }

    /// Counter deltas since an `earlier` snapshot.
    /// `Count`/`Cycles` counters subtract (they are monotonic);
    /// `Ratio` counters carry the later value — a ratio of a window is
    /// not the difference of two cumulative ratios. A counter absent in
    /// `earlier` (a set registered mid-run) deltas against 0 rather
    /// than panicking; the fast path is still the common same-shape
    /// case, which compares the name vectors once.
    ///
    /// # Panics
    ///
    /// Panics if a monotonic counter went backwards.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let same_shape = self.names == earlier.names;
        let values = self
            .iter()
            .enumerate()
            .map(|(i, (name, kind, now))| {
                let then = if same_shape {
                    earlier.values[i]
                } else {
                    earlier.get(name).unwrap_or(0)
                };
                match kind {
                    CounterKind::Ratio => now,
                    _ => now
                        .checked_sub(then)
                        .unwrap_or_else(|| panic!("counter {name} went backwards")),
                }
            })
            .collect();
        Snapshot {
            names: self.names.clone(),
            kinds: self.kinds.clone(),
            values,
        }
    }

    /// Renders the snapshot as a JSON object (`{"name": value, ...}`)
    /// in registration order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, _, v)) in self.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json::quote(name));
            s.push(':');
            s.push_str(&v.to_string());
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Snapshot {
    /// `cpustat`-style dump: one `name value` row per counter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.names.iter().map(|n| n.len()).max().unwrap_or(0);
        for (name, kind, v) in self.iter() {
            writeln!(f, "{name:<width$}  {v:>16} {}", kind.unit())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        a: u64,
        b: u64,
    }

    impl CounterSet for Fake {
        fn descriptors(&self) -> &'static [CounterDesc] {
            const DESCS: [CounterDesc; 2] = [
                CounterDesc::new("fake.a", CounterKind::Count),
                CounterDesc::new("fake.b", CounterKind::Cycles),
            ];
            &DESCS
        }

        fn values(&self, out: &mut Vec<u64>) {
            let Fake { a, b } = self;
            out.push(*a);
            out.push(*b);
        }
    }

    #[test]
    fn snapshot_records_in_order() {
        let s = Snapshot::of(&Fake { a: 3, b: 9 });
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("fake.a"), Some(3));
        assert_eq!(s.get("fake.b"), Some(9));
        assert!(s.names_unique());
        let rows: Vec<_> = s.iter().collect();
        assert_eq!(rows[0], ("fake.a", CounterKind::Count, 3));
        assert_eq!(rows[1], ("fake.b", CounterKind::Cycles, 9));
    }

    #[test]
    fn delta_subtracts_monotonic_counters() {
        let early = Snapshot::of(&Fake { a: 3, b: 9 });
        let late = Snapshot::of(&Fake { a: 10, b: 29 });
        let d = late.delta(&early);
        assert_eq!(d.get("fake.a"), Some(7));
        assert_eq!(d.get("fake.b"), Some(20));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn delta_rejects_backwards_counters() {
        let early = Snapshot::of(&Fake { a: 5, b: 0 });
        let late = Snapshot::of(&Fake { a: 4, b: 0 });
        let _ = late.delta(&early);
    }

    struct Ppm(u64);

    impl CounterSet for Ppm {
        fn descriptors(&self) -> &'static [CounterDesc] {
            const DESCS: [CounterDesc; 1] = [CounterDesc::new("fake.rate_ppm", CounterKind::Ratio)];
            &DESCS
        }

        fn values(&self, out: &mut Vec<u64>) {
            let Ppm(v) = self;
            out.push(*v);
        }
    }

    #[test]
    fn delta_carries_ratio_counters_not_differences() {
        // Cumulative ppm went 800k -> 600k across the interval; the
        // interval value is the later reading, never a (negative)
        // difference — interval consumers average these, not sum them.
        let early = Snapshot::of(&Ppm(800_000));
        let late = Snapshot::of(&Ppm(600_000));
        let d = late.delta(&early);
        assert_eq!(d.get("fake.rate_ppm"), Some(600_000));
    }

    #[test]
    fn delta_treats_counters_absent_earlier_as_zero() {
        // A set registered mid-run: the earlier snapshot lacks fake.*
        // entirely. The delta must not panic and reads as "since 0".
        let early = Snapshot::of(&Ppm(100));
        let mut late = Snapshot::of(&Ppm(200));
        late.record(&Fake { a: 7, b: 11 });
        let d = late.delta(&early);
        assert_eq!(d.get("fake.a"), Some(7));
        assert_eq!(d.get("fake.b"), Some(11));
        assert_eq!(d.get("fake.rate_ppm"), Some(200));
        // Fully disjoint shapes work too.
        let empty = Snapshot::new();
        let d2 = Snapshot::of(&Fake { a: 1, b: 2 }).delta(&empty);
        assert_eq!(d2.get("fake.a"), Some(1));
    }

    #[test]
    fn ratio_ppm_scales_and_saturates() {
        assert_eq!(ratio_ppm(0.5), 500_000);
        assert_eq!(ratio_ppm(0.0), 0);
        assert_eq!(ratio_ppm(f64::NAN), 0);
    }

    #[test]
    fn json_object_lists_counters() {
        let s = Snapshot::of(&Fake { a: 1, b: 2 });
        assert_eq!(s.to_json(), "{\"fake.a\":1,\"fake.b\":2}");
    }
}
