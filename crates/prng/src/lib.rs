//! # prng — in-tree deterministic randomness
//!
//! A small, dependency-free pseudo-random number generator for the
//! simulation: [`SimRng`] is xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64 so that *any* `u64` seed — including 0 and other
//! low-entropy values — expands to a well-mixed 256-bit state.
//!
//! The workspace previously used the external `rand` crate; replacing it
//! keeps the build resolvable offline (DESIGN §Dependency justification)
//! and pins the exact stream: per-seed determinism is a correctness
//! property here (the Alameldeen–Wood multi-seed methodology *and* the
//! serial-vs-parallel experiment runner both rely on a seed naming one
//! reproducible universe), so the generator's output must never change
//! under a dependency upgrade.
//!
//! The API mirrors the subset of `rand` the simulation used: seeding from
//! a `u64`, uniform integers in a half-open range, uniform `f64` in
//! `[0, 1)`, booleans with a probability, and slice shuffling.

use std::ops::Range;

/// SplitMix64 step: the standard seed expander (Steele, Lea & Flood).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator: 256-bit state, period `2^256 - 1`, fast and
/// statistically strong far beyond this simulation's needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    ///
    /// Every seed — including 0 — yields a distinct, well-mixed stream,
    /// and the same seed always yields the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the half-open range `lo..hi`.
    ///
    /// Uses Lemire's unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `u64` in `0..bound` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range on an empty range");
        // Lemire's method: multiply-shift with rejection of the biased
        // low fringe.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Integer types [`SimRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Draws a uniform value in `range` from `rng`.
    fn sample(rng: &mut SimRng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample(rng: &mut SimRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample(rng: &mut SimRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(rng.bounded_u64(span) as $u) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = SimRng::seed_from_u64(0);
        // A weak seeding scheme would emit zeros or near-zeros early.
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += r.next_u64().count_ones();
        }
        // 64 draws * 64 bits: expect ~2048 set bits.
        assert!((1600..2500).contains(&ones), "poorly mixed: {ones}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let x = r.gen_range(5..8u32);
            assert!((5..8).contains(&x));
        }
        for _ in 0..1000 {
            let x = r.gen_range(-3..3i32);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.gen_range(5..5u32);
    }

    #[test]
    fn stream_is_pinned() {
        // The exact output is part of the reproducibility contract: the
        // figures' published numbers depend on it. If this test ever
        // fails, the generator changed and every seeded result with it.
        let mut r = SimRng::seed_from_u64(1);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                14971601782005023387,
                13781649495232077965,
                1847458086238483744,
                13765271635752736470,
            ]
        );
    }
}
