//! # bench — the figure-regeneration harness
//!
//! Each Criterion bench target regenerates one (group of) paper
//! figure(s): it prints the same rows the figure plots together with the
//! shape verdict, then measures a representative simulation kernel so
//! `cargo bench` also tracks the simulator's own performance.
//!
//! Effort is selected with the `MIDDLESIM_BENCH_EFFORT` environment
//! variable: `quick` (default), `standard`, or `full`.

use middlesim::Effort;

/// Reads the bench effort from `MIDDLESIM_BENCH_EFFORT`.
pub fn bench_effort() -> Effort {
    match std::env::var("MIDDLESIM_BENCH_EFFORT").as_deref() {
        Ok("standard") => Effort::Standard,
        Ok("full") => Effort::Full,
        _ => Effort::Quick,
    }
}

/// Prints a figure table plus its shape verdict.
pub fn report(name: &str, table: impl std::fmt::Display, violations: Vec<String>) {
    println!("\n{table}");
    if violations.is_empty() {
        println!("[shape OK] {name}");
    } else {
        println!("[shape VIOLATIONS] {name}:");
        for v in violations {
            println!("  - {v}");
        }
    }
}
