//! # bench — the figure-regeneration and timing harness
//!
//! Each bench target regenerates one (group of) paper figure(s): it
//! prints the same rows the figure plots together with the shape
//! verdict, then measures a representative simulation kernel so
//! `cargo bench` also tracks the simulator's own performance.
//!
//! The timing harness ([`Harness`]) is dependency-free — plain
//! `std::time::Instant` sampling with a criterion-shaped API
//! (`bench_function(name, |b| b.iter(..))`) — so the crate lives inside
//! the workspace and the offline tier-1 build compiles and exercises
//! it. The bench closures run identically under a real `cargo bench`
//! and under the smoke-sized run `scripts/ci.sh` does.
//!
//! Knobs (environment):
//!
//! - `MIDDLESIM_BENCH_EFFORT`: `quick` (default), `standard`, or `full`
//!   — sizes the figure sweeps;
//! - `MIDDLESIM_BENCH_SAMPLES`: timing samples per benchmark
//!   (default 10);
//! - `MIDDLESIM_BENCH_SAMPLE_MS`: target wall milliseconds per sample
//!   (default 100; the iteration count is calibrated to hit it).

use std::time::{Duration, Instant};

use middlesim::Effort;

/// Reads the bench effort from `MIDDLESIM_BENCH_EFFORT`.
pub fn bench_effort() -> Effort {
    match std::env::var("MIDDLESIM_BENCH_EFFORT").as_deref() {
        Ok("standard") => Effort::Standard,
        Ok("full") => Effort::Full,
        _ => Effort::Quick,
    }
}

/// Prints a figure table plus its shape verdict.
pub fn report(name: &str, table: impl std::fmt::Display, violations: Vec<String>) {
    println!("\n{table}");
    if violations.is_empty() {
        println!("[shape OK] {name}");
    } else {
        println!("[shape VIOLATIONS] {name}:");
        for v in violations {
            println!("  - {v}");
        }
    }
}

/// One benchmark's timing summary (nanoseconds per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id, `group/case`.
    pub name: String,
    /// Median over the samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample (calibrated).
    pub iters: u64,
}

/// Hands a benchmark closure its iteration count and times the loop.
///
/// The closure passed to [`Harness::bench_function`] is invoked once
/// per sample (plus once to calibrate), so setup outside `iter` reruns
/// each sample — the same contract criterion's `Bencher` has.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`, shielding the returned
    /// value from the optimizer.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`, excluding the
    /// setup cost from the measurement (criterion's `iter_batched`).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The timing harness: calibrates an iteration count per benchmark,
/// takes wall-time samples, and prints one row each.
pub struct Harness {
    samples: usize,
    sample_ms: u64,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::from_env()
    }
}

impl Harness {
    /// A harness sized by the `MIDDLESIM_BENCH_*` environment knobs.
    pub fn from_env() -> Self {
        let read = |key: &str, default: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(default)
        };
        Harness::with(
            read("MIDDLESIM_BENCH_SAMPLES", 10) as usize,
            read("MIDDLESIM_BENCH_SAMPLE_MS", 100),
        )
    }

    /// A harness with explicit sample count and per-sample target
    /// milliseconds (tests use tiny values).
    pub fn with(samples: usize, sample_ms: u64) -> Self {
        Harness {
            samples: samples.max(1),
            sample_ms: sample_ms.max(1),
            results: Vec::new(),
        }
    }

    /// Runs one benchmark: a calibration pass picks the iteration count
    /// that fills the per-sample budget, then each sample times that
    /// many iterations.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns = (b.elapsed.as_nanos().max(1) as u64 / b.iters).max(1);
        let target_ns = self.sample_ms * 1_000_000;
        let iters = (target_ns / per_iter_ns).clamp(1, 1_000_000_000);

        let mut per_sample: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_sample.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_sample.sort_by(|a, b| a.total_cmp(b));
        let median = per_sample[per_sample.len() / 2];
        let result = BenchResult {
            name: name.to_string(),
            median_ns: median,
            min_ns: per_sample[0],
            max_ns: per_sample[per_sample.len() - 1],
            samples: self.samples,
            iters,
        };
        println!(
            "bench {:<36} {:>12} ns/iter (min {:.0}, max {:.0}, {} x {} iters)",
            result.name,
            format_ns(result.median_ns),
            result.min_ns,
            result.max_ns,
            result.samples,
            result.iters,
        );
        self.results.push(result);
    }

    /// The rows timed so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary and returns the rows.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("\n{} benchmark(s) timed.", self.results.len());
        self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Entry point shared by the bench targets (`harness = false`): builds
/// a harness from the environment, ignoring the arguments `cargo bench`
/// passes (`--bench`, filters), and runs the target's benchmarks.
pub fn run_target(run: impl FnOnce(&mut Harness)) {
    let mut h = Harness::from_env();
    run(&mut h);
    h.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_kernel() {
        let mut h = Harness::with(3, 1);
        let mut x = 0u64;
        h.bench_function("test/add", |b| b.iter(|| x = x.wrapping_add(1)));
        let rows = h.finish();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "test/add");
        assert_eq!(rows[0].samples, 3);
        assert!(rows[0].iters >= 1);
        assert!(rows[0].median_ns > 0.0);
        assert!(rows[0].min_ns <= rows[0].median_ns);
        assert!(rows[0].median_ns <= rows[0].max_ns);
    }

    #[test]
    fn calibration_scales_iters_to_the_budget() {
        let mut h = Harness::with(2, 5);
        h.bench_function("test/spin", |b| {
            b.iter(|| std::hint::black_box((0..50u64).sum::<u64>()))
        });
        let rows = h.results();
        // A ~100ns kernel needs many iterations to fill 5ms.
        assert!(rows[0].iters > 100, "iters = {}", rows[0].iters);
    }

    #[test]
    fn effort_env_defaults_to_quick() {
        // No env manipulation (tests run in parallel): just check the
        // default branch.
        if std::env::var("MIDDLESIM_BENCH_EFFORT").is_err() {
            assert_eq!(bench_effort(), Effort::Quick);
        }
    }
}
