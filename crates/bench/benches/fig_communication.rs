//! Regenerates Figures 14 and 15 (communication-footprint CDFs), then
//! benchmarks the coherence ping-pong path.

use bench::{bench_effort, report};
use memsys::{AccessKind, Addr, MemorySystem};
use middlesim::figures::{fig14, fig15};

fn figures_14_15(c: &mut bench::Harness) {
    let effort = bench_effort();
    eprintln!("running the Figure 14/15 communication study at {effort:?}...");
    let f14 = fig14::run(effort, 8);
    report("Figure 14", f14.table(), f14.shape_violations());
    let f15 = fig15::from_fig14(&f14);
    report("Figure 15", f15.table(), f15.shape_violations());

    c.bench_function("memsys/write_pingpong_2cpus", |b| {
        let mut sys = MemorySystem::e6000(2).expect("2-cpu system");
        let mut turn = 0usize;
        b.iter(|| {
            turn ^= 1;
            sys.access(turn, AccessKind::Store, Addr(0x1000))
        })
    });
}

fn main() {
    bench::run_target(figures_14_15);
}
