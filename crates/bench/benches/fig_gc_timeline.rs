//! Regenerates Figure 10 (cache-to-cache transfers over time, with the
//! collapse during the single-threaded collections), then benchmarks a
//! minor collection.

use bench::{bench_effort, report};
use jvm::alloc::Tlab;
use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::Lifetime;
use memsys::{Addr, AddrRange, CountingSink};
use middlesim::figures::fig10;

fn figure_10(c: &mut bench::Harness) {
    let effort = bench_effort();
    eprintln!("running the Figure 10 trace at {effort:?}...");
    let fig = fig10::run(effort, 8);
    println!(
        "\n## Figure 10 summary: c2c/bucket outside GC = {:.0}, during GC = {:.0} ({} GCs)",
        fig.rate_outside_gc(),
        fig.rate_during_gc(),
        fig.gc_count
    );
    report("Figure 10", fig.table(), fig.shape_violations());

    c.bench_function("jvm/minor_gc_1MB_live", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::new(
                    HeapConfig {
                        geometry: HeapGeometry {
                            eden: 8 << 20,
                            survivor: 2 << 20,
                            old: 32 << 20,
                        },
                        tenure_age: 1,
                        tlab_bytes: 64 << 10,
                    },
                    AddrRange::new(Addr(0x4000_0000), 64 << 20),
                );
                let mut tlab = Tlab::new();
                let mut sink = CountingSink::new();
                for _ in 0..1024 {
                    let _ = tlab.alloc(
                        &mut heap,
                        1024,
                        Lifetime::Session {
                            expires_epoch: u64::MAX,
                        },
                        &mut sink,
                    );
                }
                heap
            },
            |mut heap| {
                let mut sink = CountingSink::new();
                heap.minor_gc(&mut sink);
            },
        )
    });
}

fn main() {
    bench::run_target(figure_10);
}
