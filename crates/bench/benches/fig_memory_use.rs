//! Regenerates Figure 11 (live memory vs scale factor), then benchmarks
//! heap allocation throughput.

use bench::{bench_effort, report};
use jvm::alloc::Tlab;
use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::Lifetime;
use memsys::{Addr, AddrRange, CountingSink};
use middlesim::figures::fig11;
use middlesim::Effort;

fn figure_11(c: &mut bench::Harness) {
    let effort = bench_effort();
    let axis = match effort {
        Effort::Quick => &fig11::QUICK_SCALE_AXIS[..],
        _ => &fig11::PAPER_SCALE_AXIS[..],
    };
    eprintln!("running the Figure 11 scale sweep over {axis:?} at {effort:?}...");
    let fig = fig11::run(effort, axis);
    report("Figure 11", fig.table(), fig.shape_violations());

    c.bench_function("jvm/tlab_alloc_256B", |b| {
        let mut heap = Heap::new(
            HeapConfig {
                geometry: HeapGeometry {
                    eden: 256 << 20,
                    survivor: 16 << 20,
                    old: 64 << 20,
                },
                tenure_age: 1,
                tlab_bytes: 64 << 10,
            },
            AddrRange::new(Addr(0x4000_0000), 512 << 20),
        );
        let mut tlab = Tlab::new();
        let mut sink = CountingSink::new();
        b.iter(|| {
            if tlab
                .alloc(&mut heap, 256, Lifetime::Ephemeral, &mut sink)
                .ok()
                .is_none()
            {
                let _ = heap.minor_gc(&mut sink);
                tlab.retire();
            }
        })
    });
}

fn main() {
    bench::run_target(figure_11);
}
