//! Regenerates the ablations backing the paper's textual claims: ISM
//! pages (Section 6), path length (Section 4.4), the object-cache
//! mechanism, and cache-to-cache latency sensitivity (Section 4.3).

use bench::{bench_effort, report};
use middlesim::figures::ablations;
use sysos::tlb::{Tlb, TlbConfig};

fn run_ablations(c: &mut bench::Harness) {
    let effort = bench_effort();
    eprintln!("running ablations at {effort:?}...");
    let ism = ablations::run_ism(effort);
    report("Ablation: ISM", ism.table(), ism.shape_violations());
    let pl = ablations::run_path_length(effort, &[1, 4, 8]);
    report("Ablation: path length", pl.table(), pl.shape_violations());
    let oc = ablations::run_objcache(effort, 8);
    report("Ablation: object cache", oc.table(), oc.shape_violations());
    let cl = ablations::run_c2c_latency(effort, 8);
    report("Ablation: c2c latency", cl.table(), cl.shape_violations());

    c.bench_function("sysos/tlb_access", |b| {
        let mut tlb = Tlb::new(TlbConfig::base_pages());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(8 << 10) & 0xfff_ffff;
            tlb.access(memsys::Addr(a))
        })
    });
}

fn main() {
    bench::run_target(run_ablations);
}
