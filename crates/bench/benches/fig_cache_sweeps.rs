//! Regenerates Figures 12 and 13 (instruction/data miss rate vs cache
//! size, full-size uniprocessor workloads), then benchmarks the
//! multi-size sweep kernel.

use bench::{bench_effort, report};
use memsys::{Addr, CacheSweep};
use middlesim::figures::{fig12, fig13};

fn figures_12_13(c: &mut bench::Harness) {
    let effort = bench_effort();
    eprintln!("running the Figure 12/13 uniprocessor sweeps at {effort:?}...");
    let data = fig12::run_sweeps(effort);
    let f12 = fig12::from_data(&data);
    report("Figure 12", f12.table(), f12.shape_violations());
    let f13 = fig13::from_data(&data);
    report("Figure 13", f13.table(), f13.shape_violations());

    c.bench_function("memsys/sweep_9_sizes_per_ref", |b| {
        let mut sweep = CacheSweep::paper();
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x4940) & 0xff_ffff;
            sweep.access(Addr(a));
        })
    });
}

fn main() {
    bench::run_target(figures_12_13);
}
