//! Microbenchmarks of the substrates themselves: the cache model, the
//! coherent memory system, the B-tree database, the bean cache and the
//! key samplers. These track the simulator's own performance.

use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use memsys::{AccessKind, Addr, AddrRange, Cache, CacheConfig, CountingSink, MemorySystem};
use prng::SimRng;
use workloads::ecperf::cache::{BeanKey, ObjectCache};
use workloads::objtree::build_table;
use workloads::zipf::ZipfSampler;

fn substrates(c: &mut bench::Harness) {
    c.bench_function("cache/1MB_touch_hit", |b| {
        let mut cache = Cache::new(CacheConfig::default());
        let _ = cache.insert(Addr(0x40), memsys::LineState::Shared);
        b.iter(|| cache.touch(Addr(0x40)))
    });

    c.bench_function("memsys/16cpu_local_load", |b| {
        let mut sys = MemorySystem::e6000(16).expect("16-cpu system");
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(64) & 0xf_ffff;
            sys.access(0, AccessKind::Load, Addr(i))
        })
    });

    c.bench_function("objtree/lookup_20k", |b| {
        let mut heap = Heap::new(
            HeapConfig {
                geometry: HeapGeometry {
                    eden: 1 << 20,
                    survivor: 256 << 10,
                    old: 128 << 20,
                },
                tenure_age: 1,
                tlab_bytes: 8 << 10,
            },
            AddrRange::new(Addr(0x4000_0000), 256 << 20),
        );
        let mut sink = CountingSink::new();
        let tree = build_table(&mut heap, 20_000, 448, &mut sink);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let key = rng.gen_range(0..20_000u64);
            tree.lookup(key, &heap, &mut sink)
        })
    });

    c.bench_function("ecperf/bean_cache_probe", |b| {
        let mut cache = ObjectCache::new(10_000, 1_000_000);
        for i in 0..10_000u64 {
            cache.insert(BeanKey::new(0, i), jvm::object::ObjectId(i as u32), 0);
        }
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| {
            let key = BeanKey::new(0, rng.gen_range(0..12_000u64));
            cache.lookup(key, 100)
        })
    });

    c.bench_function("zipf/sample_20k", |b| {
        let z = ZipfSampler::new(20_000, 0.9);
        let mut rng = SimRng::seed_from_u64(3);
        b.iter(|| z.sample(&mut rng))
    });
}

fn main() {
    bench::run_target(substrates);
}
