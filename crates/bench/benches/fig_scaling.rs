//! Regenerates Figures 4–9 (one shared scaling sweep over both
//! workloads), then benchmarks the engine's window-extension kernel.

use bench::{bench_effort, report};
use middlesim::figures::{self, processor_axis, scaling::run_scaling};
use middlesim::{jbb_machine, Effort};

fn figures_4_to_9(c: &mut bench::Harness) {
    let effort = bench_effort();
    let ps = processor_axis(effort);
    eprintln!("running the Figure 4-9 scaling sweep over {ps:?} at {effort:?}...");
    let data = run_scaling(effort, ps);
    let f4 = figures::fig04::from_data(&data);
    report("Figure 4", f4.table(), f4.shape_violations());
    let f5 = figures::fig05::from_data(&data);
    report("Figure 5", f5.table(), f5.shape_violations());
    let f6 = figures::fig06::from_data(&data);
    report("Figure 6", f6.table(), f6.shape_violations());
    let f7 = figures::fig07::from_data(&data);
    report("Figure 7", f7.table(), f7.shape_violations());
    let f8 = figures::fig08::from_data(&data);
    report("Figure 8", f8.table(), f8.shape_violations());
    let f9 = figures::fig09::from_data(&data);
    report("Figure 9", f9.table(), f9.shape_violations());

    // Timing kernel: extend a warm 4-processor SPECjbb machine by 2M
    // simulated cycles per iteration.
    let mut machine = jbb_machine(4, 8, 1, Effort::Quick);
    machine.run_until(10_000_000);
    let mut horizon = machine.time();
    c.bench_function("engine/jbb_4p_2Mcycles", |b| {
        b.iter(|| {
            horizon += 2_000_000;
            machine.run_until(horizon);
        })
    });
}

fn main() {
    bench::run_target(figures_4_to_9);
}
