//! Regenerates Figure 16 (shared-cache CMP topologies), then benchmarks
//! a shared-L2 access path.

use bench::{bench_effort, report};
use memsys::{AccessKind, Addr, HierarchyConfig, MemorySystem};
use middlesim::figures::fig16;

fn figure_16(c: &mut bench::Harness) {
    let effort = bench_effort();
    eprintln!("running the Figure 16 topology sweep at {effort:?}...");
    let fig = fig16::run(effort);
    report("Figure 16", fig.table(), fig.shape_violations());

    c.bench_function("memsys/shared_l2_8way_access", |b| {
        let mut builder = HierarchyConfig::builder(8);
        builder.cpus_per_l2(8);
        let mut sys = MemorySystem::new(builder.build().expect("8-way sharing"));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            sys.access(
                (i % 8) as usize,
                AccessKind::Load,
                Addr((i * 64) & 0xf_ffff),
            )
        })
    });
}

fn main() {
    bench::run_target(figure_16);
}
