//! TLB and page-size model (Intimate Shared Memory).
//!
//! Section 3.2 / Section 6: the authors enable Solaris's Intimate Shared
//! Memory, raising the page size from 8 KB to 4 MB so the TLB can cover
//! the application server's large heap; they report that ISM improved
//! ECperf performance by more than 10%. This module models the UltraSPARC
//! II's software-filled, fully associative data TLB so that the ISM
//! ablation can be reproduced: the same reference stream run with 8 KB
//! pages thrashes the TLB, with 4 MB pages it does not.

use memsys::Addr;

/// TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (UltraSPARC II dTLB: 64).
    pub entries: usize,
    /// Log2 of the page size: 13 for Solaris's 8 KB base pages, 22 for
    /// 4 MB ISM pages.
    pub page_bits: u32,
    /// Cycles per software TLB-miss trap.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// 8 KB base pages (ISM off).
    pub fn base_pages() -> Self {
        TlbConfig {
            entries: 64,
            page_bits: 13,
            // A dTLB miss traps to the software handler; on a TSB miss
            // the handler walks the hash chain, and those PTE loads
            // themselves miss the caches — several hundred cycles on an
            // UltraSPARC II under a heap far larger than the caches.
            miss_penalty: 700,
        }
    }

    /// 4 MB ISM pages (the paper's tuned configuration).
    pub fn ism_pages() -> Self {
        TlbConfig {
            page_bits: 22,
            ..TlbConfig::base_pages()
        }
    }

    /// Bytes covered by a full TLB ("TLB reach").
    pub fn reach(&self) -> u64 {
        (self.entries as u64) << self.page_bits
    }
}

/// A fully associative, LRU translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Resident page numbers, MRU first.
    pages: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            cfg,
            pages: Vec::with_capacity(cfg.entries),
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Translates `addr`; returns the stall cycles (0 on a hit,
    /// `miss_penalty` on a miss).
    pub fn access(&mut self, addr: Addr) -> u64 {
        let page = addr.0 >> self.cfg.page_bits;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.hits += 1;
            // Move to front (true LRU).
            self.pages[..=pos].rotate_right(1);
            0
        } else {
            self.misses += 1;
            if self.pages.len() == self.cfg.entries {
                self.pages.pop();
            }
            self.pages.insert(0, page);
            self.cfg.miss_penalty
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets statistics, keeping residency.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ism_reach_covers_the_heap() {
        assert_eq!(TlbConfig::base_pages().reach(), 64 * 8 * 1024);
        assert_eq!(TlbConfig::ism_pages().reach(), 64 << 22); // 256 MB
        assert!(TlbConfig::ism_pages().reach() >= (256 << 20));
    }

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(TlbConfig::base_pages());
        assert_eq!(t.access(Addr(0x1000)), 700);
        assert_eq!(t.access(Addr(0x1fff)), 0, "same page");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_on_overflow() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            page_bits: 13,
            miss_penalty: 50,
        });
        t.access(Addr(0 << 13));
        t.access(Addr(1 << 13));
        t.access(Addr(0 << 13)); // page 0 now MRU
        t.access(Addr(2 << 13)); // evicts page 1
        assert_eq!(t.access(Addr(0 << 13)), 0);
        assert_eq!(t.access(Addr(1 << 13)), 50, "page 1 was the LRU victim");
    }

    #[test]
    fn big_pages_eliminate_thrashing_on_wide_strides() {
        // Touch 128 pages' worth of 8 KB-page addresses cyclically:
        // thrashes a 64-entry TLB with base pages, fits easily with ISM.
        let mut small = Tlb::new(TlbConfig::base_pages());
        let mut big = Tlb::new(TlbConfig::ism_pages());
        for lap in 0..4 {
            for i in 0..128u64 {
                let a = Addr(i * (8 << 10));
                small.access(a);
                big.access(a);
            }
            if lap == 0 {
                small.reset_stats();
                big.reset_stats();
            }
        }
        assert!(
            small.miss_rate() > 0.9,
            "8 KB pages thrash: {}",
            small.miss_rate()
        );
        assert_eq!(big.miss_rate(), 0.0, "4 MB pages cover the whole range");
    }

    #[test]
    fn empty_tlb_reports_zero_miss_rate() {
        let t = Tlb::new(TlbConfig::base_pages());
        assert_eq!(t.miss_rate(), 0.0);
    }
}
