//! The kernel network path.
//!
//! ECperf's tiers run on separate machines and communicate through
//! operating-system networking code; SPECjbb keeps everything in one
//! process and does essentially no I/O. That difference is the paper's
//! Figure 5 headline: ECperf's *system* time grows from under 5% on one
//! processor to nearly 30% on fifteen, which the authors attribute to
//! contention in the networking code.
//!
//! [`NetStack`] models the mechanism: every message walks a kernel text
//! path (instruction footprint), updates shared protocol state guarded by
//! a handful of global lock lines (the contended part — callers should
//! serialize [`emit_protocol`](NetStack::emit_protocol) through their
//! scheduler's lock facility), and copies the payload through a
//! per-connection socket buffer ring (the parallel part).

use memsys::{AccessKind, Addr, AddrRange, MemSink, LINE_BYTES};

/// Kernel network-path parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Hot kernel text bytes walked per message.
    pub text_walk_bytes: u64,
    /// Total hot kernel network text (the instruction footprint).
    pub hot_text_bytes: u64,
    /// Socket buffer ring size per connection.
    pub sockbuf_bytes: u64,
    /// Number of global protocol lock lines.
    pub global_locks: u32,
    /// Extra instructions per message beyond text execution (copies,
    /// checksums).
    pub overhead_instructions: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            text_walk_bytes: 1024,
            hot_text_bytes: 128 << 10,
            sockbuf_bytes: 2 << 10,
            global_locks: 4,
            overhead_instructions: 150,
        }
    }
}

/// Statistics for a network stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages processed.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// One machine's kernel network stack.
#[derive(Debug, Clone)]
pub struct NetStack {
    cfg: NetConfig,
    text: AddrRange,
    locks: AddrRange,
    sockbufs: Vec<AddrRange>,
    cursors: Vec<u64>,
    text_cursor: u64,
    stats: NetStats,
}

impl NetStack {
    /// Lays a stack with `connections` connections out inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small for the configured text, locks
    /// and socket buffers.
    pub fn new(cfg: NetConfig, mut region: AddrRange, connections: usize) -> Self {
        let text = region
            .take(cfg.hot_text_bytes)
            .expect("kernel region too small for network text");
        let locks = region
            .take(cfg.global_locks as u64 * LINE_BYTES)
            .expect("kernel region too small for lock lines");
        let sockbufs: Vec<AddrRange> = (0..connections)
            .map(|_| {
                region
                    .take(cfg.sockbuf_bytes)
                    .expect("kernel region too small for socket buffers")
            })
            .collect();
        NetStack {
            cfg,
            text,
            locks,
            cursors: vec![0; connections],
            sockbufs,
            text_cursor: 0,
            stats: NetStats::default(),
        }
    }

    /// The stack's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Message statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of connections.
    pub fn connections(&self) -> usize {
        self.sockbufs.len()
    }

    /// Address of global protocol lock `i` (for scheduler-level
    /// serialization).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lock_addr(&self, i: u32) -> Addr {
        assert!(i < self.cfg.global_locks, "lock index {i} out of range");
        Addr(self.locks.start().0 + i as u64 * LINE_BYTES)
    }

    /// The serialized part of message processing: acquire-style RMW on a
    /// global protocol lock line and updates of shared protocol state.
    /// Callers hold the corresponding scheduler lock around this to model
    /// kernel serialization.
    pub fn emit_protocol(&mut self, lock: u32, sink: &mut (impl MemSink + ?Sized)) {
        let lock_line = self.lock_addr(lock);
        sink.instructions(80);
        sink.load(lock_line);
        sink.store(lock_line);
        // Shared protocol state next to the lock (connection hash chains,
        // timers): a couple of shared lines.
        for i in 0..2 {
            let a = Addr(
                self.locks.start().0 + ((lock + i) % self.cfg.global_locks) as u64 * LINE_BYTES,
            );
            sink.load(a);
        }
        sink.store(lock_line);
    }

    /// The parallel part: walk the kernel text path and copy `bytes`
    /// through the connection's socket buffer ring.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn emit_transfer(&mut self, conn: usize, bytes: u64, sink: &mut (impl MemSink + ?Sized)) {
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        sink.instructions(self.cfg.overhead_instructions);

        // Kernel text walk: a rotating window over the hot text, so the
        // whole footprint is exercised across messages.
        let text_lines = self.text.line_count();
        let walk_lines = self.cfg.text_walk_bytes / LINE_BYTES;
        for i in 0..walk_lines {
            let idx = (self.text_cursor + i) % text_lines;
            sink.ifetch(self.text.start().line().step(idx).base());
            sink.instructions(LINE_BYTES / 4);
        }
        self.text_cursor = (self.text_cursor + (walk_lines * 2 / 3).max(1)) % text_lines;

        // Payload copy through the ring: a store per line written plus a
        // load per line read out.
        let buf = self.sockbufs[conn];
        let buf_lines = buf.line_count();
        let copy_lines = bytes.div_ceil(LINE_BYTES).max(1);
        let cursor = &mut self.cursors[conn];
        for i in 0..copy_lines {
            let idx = (*cursor + i) % buf_lines;
            let a = buf.start().line().step(idx).base();
            sink.store(a);
            sink.load(a);
        }
        *cursor = (*cursor + copy_lines) % buf_lines;
        sink.instructions(bytes / 8);
    }

    /// Convenience: a whole message (protocol + transfer) using lock
    /// `conn % global_locks`. For contention-aware runs, call the parts
    /// separately under the scheduler's lock.
    pub fn emit_message(&mut self, conn: usize, bytes: u64, sink: &mut (impl MemSink + ?Sized)) {
        let lock = (conn as u32) % self.cfg.global_locks;
        self.emit_protocol(lock, sink);
        self.emit_transfer(conn, bytes, sink);
    }

    /// Touches the whole hot kernel text once (boot / warm-up), returning
    /// the instruction-footprint size.
    pub fn warm_text(&mut self, sink: &mut (impl MemSink + ?Sized)) -> u64 {
        sink.sweep(AccessKind::Ifetch, self.text);
        self.text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{CountingSink, RecordingSink};

    fn stack(conns: usize) -> NetStack {
        NetStack::new(
            NetConfig::default(),
            AddrRange::new(Addr(0x0100_0000), 8 << 20),
            conns,
        )
    }

    #[test]
    fn message_emits_code_locks_and_copies() {
        let mut s = stack(2);
        let mut sink = CountingSink::new();
        s.emit_message(0, 1024, &mut sink);
        assert!(sink.ifetches >= (NetConfig::default().text_walk_bytes / 64));
        assert!(sink.stores >= 1024 / 64);
        assert!(sink.instructions > 500);
        assert_eq!(s.stats().messages, 1);
        assert_eq!(s.stats().bytes, 1024);
    }

    #[test]
    fn protocol_part_hammers_the_lock_line() {
        let mut s = stack(1);
        let mut sink = RecordingSink::new();
        s.emit_protocol(0, &mut sink);
        let lock_line = s.lock_addr(0).line();
        let on_lock = sink
            .refs
            .iter()
            .filter(|(_, a)| a.line() == lock_line)
            .count();
        assert!(on_lock >= 3, "RMW + release on the lock line");
    }

    #[test]
    fn connections_use_disjoint_buffers() {
        let mut s = stack(2);
        let mut a = RecordingSink::new();
        s.emit_transfer(0, 4096, &mut a);
        let mut b = RecordingSink::new();
        s.emit_transfer(1, 4096, &mut b);
        let a_stores: Vec<_> = a
            .refs
            .iter()
            .filter(|(k, _)| *k == memsys::AccessKind::Store)
            .map(|(_, addr)| addr.line())
            .collect();
        for (k, addr) in &b.refs {
            if *k == memsys::AccessKind::Store {
                assert!(
                    !a_stores.contains(&addr.line()),
                    "buffer sharing between connections"
                );
            }
        }
    }

    #[test]
    fn text_walk_rotates_across_whole_footprint() {
        let mut s = stack(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let mut sink = RecordingSink::new();
            s.emit_transfer(0, 64, &mut sink);
            for (k, a) in sink.refs {
                if k == memsys::AccessKind::Ifetch {
                    seen.insert(a.line());
                }
            }
        }
        let total = NetConfig::default().hot_text_bytes / 64;
        assert!(
            seen.len() as u64 > total / 2,
            "rotation must cover most of the hot text: {} of {}",
            seen.len(),
            total
        );
    }

    #[test]
    fn warm_text_touches_full_footprint() {
        let mut s = stack(1);
        let mut sink = CountingSink::new();
        let bytes = s.warm_text(&mut sink);
        assert_eq!(bytes, NetConfig::default().hot_text_bytes);
        assert_eq!(sink.ifetches, bytes / 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_lock_index_panics() {
        let s = stack(1);
        let _ = s.lock_addr(99);
    }
}
