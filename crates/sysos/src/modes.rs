//! `mpstat`-style execution-mode accounting.
//!
//! The paper's Figure 5 decomposes wall-clock time per processor into the
//! modes reported by Solaris's `mpstat` — user, system, I/O wait and idle —
//! plus an estimated garbage-collection idle slice (idle time of the other
//! processors while the single-threaded collector runs). This module
//! accumulates cycles per processor per mode and renders the same
//! breakdown.

use std::fmt;

/// Execution modes, following the paper's Figure 5 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Running benchmark code.
    User,
    /// Running operating-system code (kernel networking, syscalls).
    System,
    /// Stalled on I/O.
    Io,
    /// Idle for other reasons (lock contention, no runnable thread).
    Idle,
    /// Idle because the single-threaded garbage collector has stopped the
    /// world on another processor.
    GcIdle,
}

/// All modes, in Figure 5's stacking order.
pub const ALL_MODES: [ExecMode; 5] = [
    ExecMode::User,
    ExecMode::System,
    ExecMode::Io,
    ExecMode::Idle,
    ExecMode::GcIdle,
];

impl ExecMode {
    fn index(self) -> usize {
        match self {
            ExecMode::User => 0,
            ExecMode::System => 1,
            ExecMode::Io => 2,
            ExecMode::Idle => 3,
            ExecMode::GcIdle => 4,
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecMode::User => "user",
            ExecMode::System => "system",
            ExecMode::Io => "io",
            ExecMode::Idle => "idle",
            ExecMode::GcIdle => "gc-idle",
        };
        f.write_str(s)
    }
}

/// Per-processor mode-time accumulator.
#[derive(Debug, Clone)]
pub struct ModeAccount {
    per_cpu: Vec<[u64; 5]>,
}

impl ModeAccount {
    /// Creates an accumulator for `cpus` processors.
    pub fn new(cpus: usize) -> Self {
        ModeAccount {
            per_cpu: vec![[0; 5]; cpus],
        }
    }

    /// Number of processors tracked.
    pub fn cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// Adds `cycles` of `mode` time on processor `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn add(&mut self, cpu: usize, mode: ExecMode, cycles: u64) {
        self.per_cpu[cpu][mode.index()] += cycles;
    }

    /// Cycles of `mode` on `cpu`.
    pub fn get(&self, cpu: usize, mode: ExecMode) -> u64 {
        self.per_cpu[cpu][mode.index()]
    }

    /// Total cycles of `mode` across all processors.
    pub fn total(&self, mode: ExecMode) -> u64 {
        self.per_cpu.iter().map(|m| m[mode.index()]).sum()
    }

    /// All cycles across all processors and modes.
    pub fn grand_total(&self) -> u64 {
        self.per_cpu.iter().flatten().sum()
    }

    /// The mode breakdown as fractions of total time (Figure 5's bars).
    pub fn breakdown(&self) -> ModeBreakdown {
        let total = self.grand_total();
        let frac = |m: ExecMode| {
            if total == 0 {
                0.0
            } else {
                self.total(m) as f64 / total as f64
            }
        };
        ModeBreakdown {
            user: frac(ExecMode::User),
            system: frac(ExecMode::System),
            io: frac(ExecMode::Io),
            idle: frac(ExecMode::Idle),
            gc_idle: frac(ExecMode::GcIdle),
        }
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        for m in &mut self.per_cpu {
            *m = [0; 5];
        }
    }
}

/// Fractions of execution time per mode; sums to 1 when any time has been
/// recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModeBreakdown {
    /// User fraction.
    pub user: f64,
    /// System (kernel) fraction.
    pub system: f64,
    /// I/O-wait fraction.
    pub io: f64,
    /// Idle fraction (excluding GC).
    pub idle: f64,
    /// GC-induced idle fraction.
    pub gc_idle: f64,
}

impl ModeBreakdown {
    /// Sum of all fractions (1.0 once populated, 0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.user + self.system + self.io + self.idle + self.gc_idle
    }

    /// Idle of all causes.
    pub fn total_idle(&self) -> f64 {
        self.idle + self.gc_idle
    }
}

impl fmt::Display for ModeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "user {:5.1}% | system {:5.1}% | io {:4.1}% | idle {:5.1}% | gc-idle {:4.1}%",
            self.user * 100.0,
            self.system * 100.0,
            self.io * 100.0,
            self.idle * 100.0,
            self.gc_idle * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut a = ModeAccount::new(2);
        a.add(0, ExecMode::User, 70);
        a.add(0, ExecMode::System, 10);
        a.add(1, ExecMode::Idle, 15);
        a.add(1, ExecMode::GcIdle, 5);
        let b = a.breakdown();
        assert!((b.sum() - 1.0).abs() < 1e-12);
        assert!((b.user - 0.7).abs() < 1e-12);
        assert!((b.total_idle() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_account_breaks_down_to_zero() {
        let a = ModeAccount::new(4);
        assert_eq!(a.breakdown().sum(), 0.0);
        assert_eq!(a.grand_total(), 0);
    }

    #[test]
    fn per_cpu_attribution() {
        let mut a = ModeAccount::new(2);
        a.add(1, ExecMode::System, 42);
        assert_eq!(a.get(1, ExecMode::System), 42);
        assert_eq!(a.get(0, ExecMode::System), 0);
        assert_eq!(a.total(ExecMode::System), 42);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut a = ModeAccount::new(1);
        a.add(0, ExecMode::Io, 7);
        a.reset();
        assert_eq!(a.grand_total(), 0);
    }

    #[test]
    fn display_is_mpstat_like() {
        let mut a = ModeAccount::new(1);
        a.add(0, ExecMode::User, 50);
        a.add(0, ExecMode::Idle, 50);
        let s = a.breakdown().to_string();
        assert!(s.contains("user"));
        assert!(s.contains("50.0%"));
    }
}
