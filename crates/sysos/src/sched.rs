//! Processor sets and run queues.
//!
//! The paper binds the benchmark to a subset of the E6000's sixteen
//! processors with Solaris's `psrset` (Section 3): the application may only
//! run inside the set, other processes are kept out of it, and the
//! operating system still runs everywhere (which is why Figure 8 shows
//! cache-to-cache transfers even at "1 processor"). [`ProcessorSet`]
//! models the binding and [`RunQueue`] a simple FIFO dispatcher over it.

use std::collections::VecDeque;

/// A `psrset`-style binding: the processors the workload may use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorSet {
    cpus: Vec<usize>,
    machine_cpus: usize,
}

impl ProcessorSet {
    /// Binds the workload to the first `bound` of `machine_cpus`
    /// processors (how the paper scales from 1 to 15 on the 16-way E6000).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero or exceeds `machine_cpus`.
    pub fn first_n(bound: usize, machine_cpus: usize) -> Self {
        assert!(
            bound > 0 && bound <= machine_cpus,
            "processor set of {bound} cpus on a {machine_cpus}-cpu machine"
        );
        ProcessorSet {
            cpus: (0..bound).collect(),
            machine_cpus,
        }
    }

    /// The processors in the set.
    pub fn cpus(&self) -> &[usize] {
        &self.cpus
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// Whether `cpu` belongs to the set.
    pub fn contains(&self, cpu: usize) -> bool {
        self.cpus.contains(&cpu)
    }

    /// Processors of the machine *outside* the set (where the OS and other
    /// processes still run).
    pub fn outside(&self) -> Vec<usize> {
        (0..self.machine_cpus)
            .filter(|c| !self.contains(*c))
            .collect()
    }

    /// Total processors on the machine.
    pub fn machine_cpus(&self) -> usize {
        self.machine_cpus
    }
}

/// A FIFO run queue of thread indices.
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    queue: VecDeque<usize>,
}

impl RunQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    /// Enqueues a runnable thread.
    pub fn push(&mut self, thread: usize) {
        debug_assert!(
            !self.queue.contains(&thread),
            "thread {thread} queued twice"
        );
        self.queue.push_back(thread);
    }

    /// Dequeues the next runnable thread.
    pub fn pop(&mut self) -> Option<usize> {
        self.queue.pop_front()
    }

    /// Number of runnable threads waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no thread is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_binds_prefix() {
        let p = ProcessorSet::first_n(4, 16);
        assert_eq!(p.len(), 4);
        assert!(p.contains(0) && p.contains(3));
        assert!(!p.contains(4));
        assert_eq!(p.outside().len(), 12);
    }

    #[test]
    fn full_machine_has_no_outside() {
        let p = ProcessorSet::first_n(16, 16);
        assert!(p.outside().is_empty());
    }

    #[test]
    #[should_panic(expected = "processor set")]
    fn oversubscribed_set_panics() {
        let _ = ProcessorSet::first_n(17, 16);
    }

    #[test]
    #[should_panic(expected = "processor set")]
    fn empty_set_panics() {
        let _ = ProcessorSet::first_n(0, 16);
    }

    #[test]
    fn run_queue_is_fifo() {
        let mut q = RunQueue::new();
        q.push(3);
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
