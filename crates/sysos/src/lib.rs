//! # sysos — a Solaris-8-like operating-system substrate
//!
//! The operating-system half of the paper's workload environment:
//!
//! - [`sched::ProcessorSet`] — `psrset`-style processor binding (the paper
//!   scales the benchmarks from 1 to 15 of the E6000's 16 processors while
//!   the OS keeps running everywhere);
//! - [`modes::ModeAccount`] — `mpstat`-style user / system / io / idle /
//!   gc-idle time accounting (Figure 5);
//! - [`net::NetStack`] — the kernel network path ECperf's tiers
//!   communicate through, with its instruction footprint, shared protocol
//!   locks and socket-buffer copies (the source of ECperf's growing system
//!   time);
//! - [`tlb::Tlb`] — the software-filled TLB and the 8 KB vs 4 MB (ISM)
//!   page-size ablation (Section 6 reports >10% from ISM on ECperf).
//!
//! ## Example
//!
//! ```
//! use sysos::modes::{ExecMode, ModeAccount};
//! use sysos::sched::ProcessorSet;
//!
//! let pset = ProcessorSet::first_n(4, 16);
//! let mut modes = ModeAccount::new(pset.machine_cpus());
//! modes.add(0, ExecMode::User, 90);
//! modes.add(0, ExecMode::System, 10);
//! assert!((modes.breakdown().user - 0.9).abs() < 1e-12);
//! ```

pub mod modes;
pub mod net;
pub mod sched;
pub mod tlb;

pub use modes::{ExecMode, ModeAccount, ModeBreakdown, ALL_MODES};
pub use net::{NetConfig, NetStack, NetStats};
pub use sched::{ProcessorSet, RunQueue};
pub use tlb::{Tlb, TlbConfig};
