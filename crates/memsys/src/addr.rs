//! Byte addresses, cache-line addresses and physical-memory regions.
//!
//! The simulator models a 32-bit-style physical address space (the Sun E6000
//! in the paper carried 2 GB of main memory). Addresses are plain byte
//! addresses wrapped in newtypes so that byte addresses and line addresses
//! can never be confused.

use std::fmt;

/// Log2 of the coherence-unit (cache-line) size. The paper uses 64-byte
/// lines throughout ("64-Byte Cache Lines", Figures 14-15), matching the
/// UltraSPARC II L2 line size.
pub const LINE_BITS: u32 = 6;

/// The coherence-unit size in bytes (64).
pub const LINE_BYTES: u64 = 1 << LINE_BITS;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the cache line containing this address.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsys::addr::{Addr, LineAddr};
    /// assert_eq!(Addr(0x40).line(), LineAddr(1));
    /// assert_eq!(Addr(0x7f).line(), LineAddr(1));
    /// ```
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_BITS)
    }

    /// Byte offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// The address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address (byte address shifted right by [`LINE_BITS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_BITS)
    }

    /// The line `n` lines after this one.
    #[inline]
    pub fn step(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A half-open byte-address range `[start, start + len)`.
///
/// Used to describe physical-memory regions (kernel text, JIT code cache,
/// heap generations, thread stacks, database buffer pool, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    start: Addr,
    len: u64,
}

impl AddrRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range would overflow the address space.
    pub fn new(start: Addr, len: u64) -> Self {
        assert!(
            start.0.checked_add(len).is_some(),
            "address range overflows the physical address space"
        );
        AddrRange { start, len }
    }

    /// First address in the range.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// One past the last address in the range.
    pub fn end(&self) -> Addr {
        Addr(self.start.0 + self.len)
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside the range.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsys::addr::{Addr, AddrRange};
    /// let r = AddrRange::new(Addr(0x100), 0x100);
    /// assert!(r.contains(Addr(0x100)));
    /// assert!(r.contains(Addr(0x1ff)));
    /// assert!(!r.contains(Addr(0x200)));
    /// ```
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Splits off the first `len` bytes as a new range, shrinking `self`.
    ///
    /// Returns `None` (leaving `self` untouched) if fewer than `len` bytes
    /// remain.
    pub fn take(&mut self, len: u64) -> Option<AddrRange> {
        if len > self.len {
            return None;
        }
        let taken = AddrRange::new(self.start, len);
        self.start = Addr(self.start.0 + len);
        self.len -= len;
        Some(taken)
    }

    /// Number of distinct cache lines the range touches.
    pub fn line_count(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.start.line().0;
        let last = Addr(self.start.0 + self.len - 1).line().0;
        last - first + 1
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(0x1000).line(), LineAddr(0x40));
    }

    #[test]
    fn line_offset_wraps_within_line() {
        assert_eq!(Addr(0).line_offset(), 0);
        assert_eq!(Addr(63).line_offset(), 63);
        assert_eq!(Addr(64).line_offset(), 0);
    }

    #[test]
    fn line_base_round_trips() {
        let l = LineAddr(0x123);
        assert_eq!(l.base().line(), l);
    }

    #[test]
    fn range_contains_endpoints() {
        let r = AddrRange::new(Addr(100), 50);
        assert!(r.contains(Addr(100)));
        assert!(r.contains(Addr(149)));
        assert!(!r.contains(Addr(150)));
        assert!(!r.contains(Addr(99)));
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(Addr(0), 100);
        let b = AddrRange::new(Addr(50), 100);
        let c = AddrRange::new(Addr(100), 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn range_take_consumes_prefix() {
        let mut r = AddrRange::new(Addr(0x1000), 0x100);
        let first = r.take(0x40).unwrap();
        assert_eq!(first.start(), Addr(0x1000));
        assert_eq!(first.len(), 0x40);
        assert_eq!(r.start(), Addr(0x1040));
        assert_eq!(r.len(), 0xc0);
        assert!(r.take(0x1000).is_none());
        assert_eq!(r.len(), 0xc0);
    }

    #[test]
    fn range_line_count() {
        assert_eq!(AddrRange::new(Addr(0), 64).line_count(), 1);
        assert_eq!(AddrRange::new(Addr(0), 65).line_count(), 2);
        assert_eq!(AddrRange::new(Addr(63), 2).line_count(), 2);
        assert_eq!(AddrRange::new(Addr(0), 0).line_count(), 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn range_overflow_panics() {
        let _ = AddrRange::new(Addr(u64::MAX - 1), 10);
    }
}
