//! Per-cache-line communication statistics (Figures 14 and 15).
//!
//! Tracks, over a measurement window, the set of distinct 64-byte lines
//! touched and the number of cache-to-cache transfers each line caused.
//! From those two ingredients the paper's communication-footprint CDFs are
//! derived: cumulative share of cache-to-cache transfers versus (a) the
//! percentage of touched lines and (b) the absolute number of lines.
//!
//! Uses an FxHash-style multiplicative hasher: the simulator pushes every
//! reference through this map, and SipHash would dominate the run time.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::addr::LineAddr;

/// A fast, non-cryptographic hasher for line addresses (FxHash-style).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

type BuildFx = BuildHasherDefault<FxHasher>;

/// Communication-footprint tracker.
#[derive(Debug, Default, Clone)]
pub struct LineStats {
    touched: HashSet<u64, BuildFx>,
    c2c: HashMap<u64, u64, BuildFx>,
}

impl LineStats {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        LineStats::default()
    }

    /// Records that `line` was referenced.
    #[inline]
    pub fn record_touch(&mut self, line: LineAddr) {
        self.touched.insert(line.0);
    }

    /// Records a cache-to-cache transfer of `line`.
    #[inline]
    pub fn record_c2c(&mut self, line: LineAddr) {
        *self.c2c.entry(line.0).or_insert(0) += 1;
    }

    /// Number of distinct lines touched in the window.
    pub fn touched_lines(&self) -> u64 {
        self.touched.len() as u64
    }

    /// Number of distinct lines that caused at least one transfer.
    pub fn communicating_lines(&self) -> u64 {
        self.c2c.len() as u64
    }

    /// Total cache-to-cache transfers recorded.
    pub fn total_c2c(&self) -> u64 {
        self.c2c.values().sum()
    }

    /// The `n` hottest lines with their transfer counts, descending.
    pub fn top_lines(&self, n: usize) -> Vec<(crate::addr::LineAddr, u64)> {
        let mut v: Vec<(crate::addr::LineAddr, u64)> = self
            .c2c
            .iter()
            .map(|(&l, &c)| (crate::addr::LineAddr(l), c))
            .collect();
        v.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
        v.truncate(n);
        v
    }

    /// Per-line transfer counts, sorted descending — the raw series behind
    /// the paper's Figures 14/15 CDFs.
    pub fn c2c_counts_desc(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.c2c.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Share of all transfers caused by the single hottest line
    /// (the paper reports 20% for SPECjbb, 14% for ECperf).
    pub fn hottest_line_share(&self) -> f64 {
        let total = self.total_c2c();
        if total == 0 {
            return 0.0;
        }
        let max = self.c2c.values().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }

    /// Cumulative share of transfers contributed by the hottest
    /// `fraction` (0..=1) of *touched* lines — a point on Figure 14.
    pub fn share_from_hottest_fraction(&self, fraction: f64) -> f64 {
        let total = self.total_c2c();
        if total == 0 {
            return 0.0;
        }
        let take = ((self.touched_lines() as f64) * fraction).ceil() as usize;
        let counts = self.c2c_counts_desc();
        let sum: u64 = counts.iter().take(take).sum();
        sum as f64 / total as f64
    }

    /// Fraction of touched lines needed to cover *all* transfers
    /// (the paper: 12% for SPECjbb, ~50% for ECperf).
    pub fn fraction_covering_all(&self) -> f64 {
        if self.touched.is_empty() {
            return 0.0;
        }
        self.communicating_lines() as f64 / self.touched_lines() as f64
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.touched.clear();
        self.c2c.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(counts: &[(u64, u64)], touched_extra: u64) -> LineStats {
        let mut s = LineStats::new();
        for &(line, n) in counts {
            s.record_touch(LineAddr(line));
            for _ in 0..n {
                s.record_c2c(LineAddr(line));
            }
        }
        for i in 0..touched_extra {
            s.record_touch(LineAddr(1_000_000 + i));
        }
        s
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LineStats::new();
        assert_eq!(s.touched_lines(), 0);
        assert_eq!(s.total_c2c(), 0);
        assert_eq!(s.hottest_line_share(), 0.0);
        assert_eq!(s.share_from_hottest_fraction(0.5), 0.0);
        assert_eq!(s.fraction_covering_all(), 0.0);
    }

    #[test]
    fn hottest_line_share_is_max_over_total() {
        let s = stats_with(&[(1, 20), (2, 50), (3, 30)], 0);
        assert!((s.hottest_line_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_sorted_descending() {
        let s = stats_with(&[(1, 5), (2, 9), (3, 1)], 0);
        assert_eq!(s.c2c_counts_desc(), vec![9, 5, 1]);
    }

    #[test]
    fn share_from_fraction_counts_touched_lines() {
        // 10 touched lines, 2 of which communicate (90 and 10 transfers).
        let s = stats_with(&[(1, 90), (2, 10)], 8);
        assert_eq!(s.touched_lines(), 10);
        // Hottest 10% of touched lines = 1 line = 90% of transfers.
        assert!((s.share_from_hottest_fraction(0.10) - 0.9).abs() < 1e-12);
        // 20% = both communicating lines = everything.
        assert!((s.share_from_hottest_fraction(0.20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_covering_all_matches_paper_metric() {
        let s = stats_with(&[(1, 3), (2, 4), (3, 5)], 22);
        assert_eq!(s.touched_lines(), 25);
        assert!((s.fraction_covering_all() - 3.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_window() {
        let mut s = stats_with(&[(1, 2)], 3);
        s.reset();
        assert_eq!(s.touched_lines(), 0);
        assert_eq!(s.total_c2c(), 0);
    }

    #[test]
    fn duplicate_touches_count_once() {
        let mut s = LineStats::new();
        for _ in 0..100 {
            s.record_touch(LineAddr(7));
        }
        assert_eq!(s.touched_lines(), 1);
    }
}
