//! Counter-registry descriptors for the memory-system stats structs.
//!
//! Each implementation destructures its struct exhaustively, so adding
//! a field to [`SystemStats`]/[`BusStats`]/[`LineStats`] without
//! registering it here is a compile error — the registry cannot drift
//! from the structs it describes. Descriptor tables are `'static`; the
//! hot access path is untouched (sampling only *reads* the counters).
//!
//! Name schema (dot-separated, `cpustat`-style):
//! - `mem.{ifetch,load,store}.*` and `mem.writebacks` — [`SystemStats`];
//! - `bus.*` — [`BusStats`] (the paper's `EC_snoop_cb` is `bus.snoop_cb`);
//! - `lines.*` — [`LineStats`] window summaries;
//! - `dram.*` — [`DramStats`], present only with the banked-DRAM backend.

use probes::registry::{ratio_ppm, CounterDesc, CounterKind, CounterSet, DriftClass, Snapshot};

use crate::backend::DramStats;
use crate::bus::BusStats;
use crate::linestats::LineStats;
use crate::stats::{KindCounters, SystemStats};
use crate::system::MemorySystem;

const fn count(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Count)
}

macro_rules! kind_descs {
    ($prefix:literal) => {
        [
            count(concat!("mem.", $prefix, ".accesses")),
            count(concat!("mem.", $prefix, ".l1_misses")),
            count(concat!("mem.", $prefix, ".l2_misses")),
            count(concat!("mem.", $prefix, ".upgrades")),
            count(concat!("mem.", $prefix, ".c2c")),
        ]
    };
}

static SYSTEM_STATS_DESCS: [CounterDesc; 18] = {
    let [a0, a1, a2, a3, a4] = kind_descs!("ifetch");
    let [b0, b1, b2, b3, b4] = kind_descs!("load");
    let [c0, c1, c2, c3, c4] = kind_descs!("store");
    [
        a0,
        a1,
        a2,
        a3,
        a4,
        b0,
        b1,
        b2,
        b3,
        b4,
        c0,
        c1,
        c2,
        c3,
        c4,
        count("mem.writebacks"),
        // Per-cpu vectors export as totals: static descriptor tables
        // cannot depend on machine size, and the totals double as
        // cross-checks against the per-kind sums.
        count("mem.l2_miss.percpu_total"),
        count("mem.c2c.percpu_total"),
    ]
};

impl CounterSet for SystemStats {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &SYSTEM_STATS_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        let SystemStats {
            ifetch,
            load,
            store,
            writebacks,
            l2_misses_by_cpu,
            c2c_by_cpu,
        } = self;
        for k in [ifetch, load, store] {
            let KindCounters {
                accesses,
                l1_misses,
                l2_misses,
                upgrades,
                c2c,
            } = k;
            out.extend([*accesses, *l1_misses, *l2_misses, *upgrades, *c2c]);
        }
        out.push(*writebacks);
        out.push(l2_misses_by_cpu.iter().sum());
        out.push(c2c_by_cpu.iter().sum());
    }
}

static BUS_STATS_DESCS: [CounterDesc; 8] = [
    count("bus.gets"),
    count("bus.getx"),
    count("bus.upgrades"),
    // The UltraSPARC II event the paper samples as `EC_snoop_cb`.
    count("bus.snoop_cb"),
    count("bus.writebacks"),
    count("bus.snoops_sent"),
    count("bus.snoops_filtered"),
    // Derived ratio: rounding of the ppm fixed-point may wobble when
    // the underlying counts legitimately move, so give it a 1% band.
    CounterDesc::new("bus.snoop_filter_ppm", CounterKind::Ratio)
        .with_drift(DriftClass::Tolerance(10_000)),
];

impl CounterSet for BusStats {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &BUS_STATS_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        let BusStats {
            gets,
            getx,
            upgrades,
            snoop_copybacks,
            writebacks,
            snoops_sent,
            snoops_filtered,
        } = self;
        out.extend([
            *gets,
            *getx,
            *upgrades,
            *snoop_copybacks,
            *writebacks,
            *snoops_sent,
            *snoops_filtered,
            ratio_ppm(self.snoop_filter_rate()),
        ]);
    }
}

static LINE_STATS_DESCS: [CounterDesc; 3] = [
    count("lines.touched"),
    count("lines.communicating"),
    count("lines.c2c_total"),
];

impl CounterSet for LineStats {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &LINE_STATS_DESCS
    }

    // Window summaries of the per-line maps; the maps themselves stay
    // behind the Figures 14/15 accessors. These reset with the window,
    // so diff within a window only.
    fn values(&self, out: &mut Vec<u64>) {
        out.extend([
            self.touched_lines(),
            self.communicating_lines(),
            self.total_c2c(),
        ]);
    }
}

// Event counts (reads, writebacks, row hits/conflicts) are functions
// of the deterministic access stream: Exact. Queue pressure is timing
// model territory — stall episodes and occupancy integrals shift when
// the timing parameters are deliberately retuned — so those carry a
// 5% drift band for the `simdiff` gate.
static DRAM_STATS_DESCS: [CounterDesc; 9] = [
    count("dram.reads"),
    count("dram.writebacks"),
    count("dram.row_hits"),
    count("dram.row_conflicts"),
    CounterDesc::new("dram.queue_stalls", CounterKind::Count)
        .with_drift(DriftClass::Tolerance(50_000)),
    CounterDesc::new("dram.stalled_cycles", CounterKind::Count)
        .with_drift(DriftClass::Tolerance(50_000)),
    CounterDesc::new("dram.queue_occupancy", CounterKind::Count)
        .with_drift(DriftClass::Tolerance(50_000)),
    CounterDesc::new("dram.row_hit_ppm", CounterKind::Ratio)
        .with_drift(DriftClass::Tolerance(50_000)),
    CounterDesc::new("dram.mean_occupancy_ppm", CounterKind::Ratio)
        .with_drift(DriftClass::Tolerance(50_000)),
];

impl CounterSet for DramStats {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &DRAM_STATS_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        let DramStats {
            reads,
            writebacks,
            row_hits,
            row_conflicts,
            queue_stalls,
            stalled_cycles,
            occupancy_sum,
        } = self;
        out.extend([
            *reads,
            *writebacks,
            *row_hits,
            *row_conflicts,
            *queue_stalls,
            *stalled_cycles,
            *occupancy_sum,
            ratio_ppm(self.row_hit_rate()),
            ratio_ppm(self.mean_occupancy()),
        ]);
    }
}

/// Every descriptor table this crate declares, for assembling a
/// `simdiff` drift policy: drift classes live on the descriptors, so
/// the gate reads tolerance bands from the same tables the counters
/// are sampled through.
pub fn descriptor_tables() -> Vec<&'static [CounterDesc]> {
    vec![
        &SYSTEM_STATS_DESCS,
        &BUS_STATS_DESCS,
        &LINE_STATS_DESCS,
        &DRAM_STATS_DESCS,
    ]
}

impl MemorySystem {
    /// Appends this system's counters (stats, bus, per-line summaries
    /// when tracking is enabled, DRAM events when that backend is
    /// configured) to a snapshot under construction.
    pub fn record_counters(&self, snap: &mut Snapshot) {
        snap.record(self.stats());
        snap.record(self.bus_stats());
        if let Some(lines) = self.line_stats() {
            snap.record(lines);
        }
        if let Some(dram) = self.dram_stats() {
            snap.record(dram);
        }
    }

    /// A flat, ordered snapshot of every counter this system maintains.
    pub fn counters(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        self.record_counters(&mut snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::stats::AccessKind;

    #[test]
    fn memory_system_snapshot_matches_struct_fields() {
        let mut sys = MemorySystem::e6000(2).unwrap();
        sys.access(0, AccessKind::Store, Addr(0x1000));
        sys.access(1, AccessKind::Load, Addr(0x1000)); // snoop copyback
        sys.access(0, AccessKind::Ifetch, Addr(0x8000));

        let snap = sys.counters();
        assert!(snap.names_unique());
        assert_eq!(snap.get("mem.store.accesses"), Some(1));
        assert_eq!(snap.get("mem.load.c2c"), Some(1));
        assert_eq!(
            snap.get("bus.snoop_cb"),
            Some(sys.bus_stats().snoop_copybacks)
        );
        assert_eq!(
            snap.get("mem.l2_miss.percpu_total"),
            Some(sys.stats().total_l2_misses())
        );
        assert_eq!(
            snap.get("mem.c2c.percpu_total"),
            Some(sys.stats().total_c2c())
        );
    }

    #[test]
    fn dram_panel_appears_only_with_the_dram_backend() {
        use crate::config::{DramConfig, HierarchyConfig, MemoryConfig};
        let flat = MemorySystem::e6000(2).unwrap();
        assert_eq!(flat.counters().get("dram.reads"), None);

        let mut b = HierarchyConfig::builder(2);
        b.memory(MemoryConfig::BankedDram(DramConfig::default()));
        let mut sys = MemorySystem::new(b.build().unwrap());
        sys.access(0, AccessKind::Load, Addr(0x1000));
        let snap = sys.counters();
        assert!(snap.names_unique());
        assert_eq!(snap.get("dram.reads"), Some(1));
        assert_eq!(snap.get("dram.row_conflicts"), Some(1));
        assert_eq!(snap.get("dram.queue_stalls"), Some(0));
    }

    #[test]
    fn snapshots_diff_across_work() {
        let mut sys = MemorySystem::e6000(2).unwrap();
        sys.access(0, AccessKind::Load, Addr(0x40));
        let before = sys.counters();
        sys.access(1, AccessKind::Load, Addr(0x40_000));
        let after = sys.counters();
        let d = after.delta(&before);
        assert_eq!(d.get("mem.load.accesses"), Some(1));
        assert_eq!(d.get("mem.ifetch.accesses"), Some(0));
    }
}
