//! The per-CPU MRU line filter: the hot path's hot path.
//!
//! [`MemorySystem::access`](crate::system::MemorySystem::access) already
//! resolves an L1 hit in one set walk, but that walk still pays the
//! access-entry prefetches (binding loads of the group's L2 set words and
//! the line's directory slot) and the L1 set scan itself — all for a
//! reference whose outcome, in the common repeated-touch case, is fully
//! determined by the previous reference to the same line. The filter
//! memoizes exactly that case: a tiny per-CPU direct-mapped array of
//! recently-touched lines, consulted before the hierarchy walk, that
//! short-circuits repeated hits without touching a single cache, bus, or
//! directory structure.
//!
//! ## The bit-identity argument
//!
//! A fast-path hit must be an *architectural no-op* on the hierarchy —
//! same outcome, same statistics, same future behavior — or it is a bug.
//! Three invariants make that hold:
//!
//! 1. **An entry implies MRU-ness.** A load/ifetch entry asserts "this
//!    line is valid in this CPU's L1 (I or D side) *and occupies its
//!    set's MRU way*". The real path's L1 `touch` would then promote an
//!    already-MRU line — the identity transform — so skipping it changes
//!    no LRU order. The invariant is structural: filter slots are a pure
//!    function of the L1 set (`slots <= sets`, both powers of two, so
//!    same-set lines share a slot), and every full-path access that
//!    promotes a line into an L1 set's MRU way also rewrites that set's
//!    filter slot. Whatever was displaced from MRU loses its entry in the
//!    same store.
//! 2. **A dirty entry implies an idle Modified line.** A store entry
//!    additionally asserts "the line is Modified in this group's L2 and
//!    occupies *its* set's MRU way", which makes the real store path
//!    (touch-hit on Modified, no state change, no bus traffic) another
//!    identity. L2 MRU-ness cannot be tracked per-slot the way L1
//!    MRU-ness is (many CPUs share one L2), so it is guarded by a
//!    per-group **epoch**: bumped on every full-path access that touches
//!    the group's L2, recorded into the entry at write time, and required
//!    to match at lookup time. Filter hits themselves bump nothing —
//!    they are no-ops, so entries survive arbitrarily long runs of them.
//!    The epoch is 64-bit: a u32 could wrap back to a stale stamp.
//! 3. **Coherence events erase entries.** Everything that removes or
//!    demotes a line behind the filter's back clears the matching
//!    entries: inclusion invalidations and L2 evictions clear both sides
//!    for *every* CPU of the affected group (a store entry can exist
//!    without L1 residency, so the L2 presence mask must not limit the
//!    sweep), and remote-read downgrades (M→O) clear just the dirty flag
//!    — L1 copies survive a remote read, so load entries stay live.
//!    [`MemorySystem::reset_stats`](crate::system::MemorySystem::reset_stats)
//!    (the measurement-window boundary) clears the whole filter; entries
//!    would remain architecturally valid across it, but a window reset is
//!    rare and a conservative flush keeps the invariant trivially
//!    auditable.
//!
//! Exclusive-state stores are deliberately *not* fast-pathed: the silent
//! E→M upgrade rewrites L2 state and the directory owner hint, which is
//! not a no-op. Only already-Modified lines qualify, via the dirty flag.
//!
//! The filter is an optimization of `MemorySystem::new` systems only;
//! [`MemorySystem::new_unfiltered`](crate::system::MemorySystem::new_unfiltered)
//! builds the same system without it — the reference implementation the
//! differential oracle (`tests/mru_filter.rs`) checks against, reference
//! by reference.

use crate::addr::Addr;
use crate::config::HierarchyConfig;
use crate::stats::HitLevel;

/// Entry flag: the slot holds a live entry.
const VALID: u64 = 1;
/// Entry flag: the line is valid (and MRU) in the side's L1.
const RESIDENT: u64 = 2;
/// Entry flag: the line is Modified (and MRU) in the group's L2, as of
/// the entry's epoch stamp.
const DIRTY: u64 = 4;
/// Low bits of a packed entry word holding the flags; the line index
/// (byte address >> block bits) lives above them.
const FLAG_BITS: u32 = 3;

/// Per-side slot ceiling. Beyond ~64 lines per CPU the repeated-touch
/// window the filter exploits has already moved on; below the side's L1
/// set count the slot function stops covering every set (the invariant
/// needs `slots <= sets`, not equality, so tiny test caches just use
/// their set count).
const MAX_SLOTS: usize = 64;

/// The per-CPU MRU line filter. One instance serves the whole system;
/// slots are indexed by `(cpu, side, line)`.
#[derive(Debug, Clone)]
pub(crate) struct MruFilter {
    /// Block bits shared by every level (the filter only builds when L1I,
    /// L1D and L2 agree on the block size, so one line index fits all).
    block_bits: u32,
    /// Slot-index masks (`slots - 1`) per side.
    i_mask: usize,
    d_mask: usize,
    /// Direct-mapped entry words, `cpu * slots + (line & mask)`.
    i_entries: Box<[u64]>,
    d_entries: Box<[u64]>,
    /// Epoch stamps for the data side's dirty entries (parallel to
    /// `d_entries`; meaningless unless the entry's DIRTY flag is set).
    d_stamps: Box<[u64]>,
    /// Per-L2-group epoch, bumped by every full-path access that touches
    /// the group's L2.
    group_epoch: Box<[u64]>,
    cpus_per_l2: usize,
}

impl MruFilter {
    /// Builds a filter for the hierarchy, or `None` where the geometry
    /// breaks the one-line-index assumption (an L1 block smaller than the
    /// L2 block would need entries invalidated at sub-entry granularity).
    pub fn new(cfg: &HierarchyConfig) -> Option<Self> {
        if cfg.l1i.block != cfg.l2.block || cfg.l1d.block != cfg.l2.block {
            return None;
        }
        let i_slots = (cfg.l1i.sets() as usize).min(MAX_SLOTS);
        let d_slots = (cfg.l1d.sets() as usize).min(MAX_SLOTS);
        Some(MruFilter {
            block_bits: cfg.l2.block_bits(),
            i_mask: i_slots - 1,
            d_mask: d_slots - 1,
            i_entries: vec![0; cfg.cpus * i_slots].into_boxed_slice(),
            d_entries: vec![0; cfg.cpus * d_slots].into_boxed_slice(),
            d_stamps: vec![0; cfg.cpus * d_slots].into_boxed_slice(),
            group_epoch: vec![0; cfg.l2_count()].into_boxed_slice(),
            cpus_per_l2: cfg.cpus_per_l2,
        })
    }

    /// Whether `addr` is a recorded L1 hit for a load (`ifetch == false`)
    /// or instruction fetch on `cpu`.
    #[inline]
    pub fn lookup_load(&self, cpu: usize, ifetch: bool, addr: Addr) -> bool {
        let line = addr.0 >> self.block_bits;
        let (entries, mask) = if ifetch {
            (&self.i_entries, self.i_mask)
        } else {
            (&self.d_entries, self.d_mask)
        };
        let word = entries[cpu * (mask + 1) + (line as usize & mask)];
        word >> FLAG_BITS == line && word & (VALID | RESIDENT) == VALID | RESIDENT
    }

    /// Whether a store by `cpu` to `addr` is a recorded Modified-line hit,
    /// and at which level it completes (L1 when the L1D holds the line,
    /// L2 otherwise — the no-write-allocate L1 never fills on a store).
    #[inline]
    pub fn lookup_store(&self, cpu: usize, group: usize, addr: Addr) -> Option<HitLevel> {
        let line = addr.0 >> self.block_bits;
        let idx = cpu * (self.d_mask + 1) + (line as usize & self.d_mask);
        let word = self.d_entries[idx];
        if word >> FLAG_BITS == line
            && word & (VALID | DIRTY) == VALID | DIRTY
            && self.d_stamps[idx] == self.group_epoch[group]
        {
            Some(if word & RESIDENT != 0 {
                HitLevel::L1
            } else {
                HitLevel::L2
            })
        } else {
            None
        }
    }

    /// Records that a full-path load or ifetch left `addr` MRU in `cpu`'s
    /// L1 (always true after the path: either a touch hit promoted it or
    /// the miss fill inserted it at MRU).
    #[inline]
    pub fn note_load(&mut self, cpu: usize, ifetch: bool, addr: Addr) {
        let line = addr.0 >> self.block_bits;
        let (entries, mask) = if ifetch {
            (&mut self.i_entries, self.i_mask)
        } else {
            (&mut self.d_entries, self.d_mask)
        };
        entries[cpu * (mask + 1) + (line as usize & mask)] = (line << FLAG_BITS) | VALID | RESIDENT;
    }

    /// Records that a full-path store left `addr` Modified and MRU in the
    /// group's L2 (every store path ends that way), `resident` telling
    /// whether the write-through also hit — and so promoted — the L1D.
    #[inline]
    pub fn note_store(&mut self, cpu: usize, group: usize, addr: Addr, resident: bool) {
        let line = addr.0 >> self.block_bits;
        let idx = cpu * (self.d_mask + 1) + (line as usize & self.d_mask);
        let res = if resident { RESIDENT } else { 0 };
        self.d_entries[idx] = (line << FLAG_BITS) | VALID | DIRTY | res;
        self.d_stamps[idx] = self.group_epoch[group];
    }

    /// Marks the group's L2 as perturbed: any dirty entry stamped earlier
    /// can no longer prove its line is still MRU (or still Modified after
    /// a neighbor's conflicting access), so its store fast path dies.
    #[inline]
    pub fn bump_epoch(&mut self, group: usize) {
        self.group_epoch[group] += 1;
    }

    /// Erases every entry for `line` held by the group's CPUs, both
    /// sides: the line was invalidated or evicted under them. Swept over
    /// all of the group's CPUs, not a presence mask — dirty entries exist
    /// without L1 residency, which the mask does not cover.
    #[inline]
    pub fn clear_line(&mut self, group: usize, line: u64) {
        let first = group * self.cpus_per_l2;
        for cpu in first..first + self.cpus_per_l2 {
            let ii = cpu * (self.i_mask + 1) + (line as usize & self.i_mask);
            if self.i_entries[ii] >> FLAG_BITS == line {
                self.i_entries[ii] = 0;
            }
            let di = cpu * (self.d_mask + 1) + (line as usize & self.d_mask);
            if self.d_entries[di] >> FLAG_BITS == line {
                self.d_entries[di] = 0;
            }
        }
    }

    /// Drops the dirty claim on every entry for `line` held by the
    /// group's CPUs: a remote read downgraded the line (M→O), so stores
    /// must re-walk, but L1 copies survive a remote read and the
    /// load/ifetch fast path stays live.
    #[inline]
    pub fn downgrade_line(&mut self, group: usize, line: u64) {
        let first = group * self.cpus_per_l2;
        for cpu in first..first + self.cpus_per_l2 {
            let di = cpu * (self.d_mask + 1) + (line as usize & self.d_mask);
            if self.d_entries[di] >> FLAG_BITS == line {
                self.d_entries[di] &= !DIRTY;
            }
        }
    }

    /// Erases every entry (measurement-window boundaries). Epochs are
    /// kept — with no entries outstanding, no stale stamp can match.
    pub fn clear(&mut self) {
        self.i_entries.fill(0);
        self.d_entries.fill(0);
    }
}
