//! An exact sharer directory: the snoop filter.
//!
//! Snooping buses broadcast every miss to every cache, but most probes
//! find nothing — in SPECjbb's warehouse-local phase the overwhelming
//! majority of misses are to lines no other L2 holds. Real snoop filters
//! (duplicate-tag or JETTY-style) sit beside the bus and answer "who
//! could hold this line?" so only actual sharers are probed. This module
//! is the simulator's equivalent: a per-line map from coherence-unit
//! line index to a bitset of L2 groups holding a *valid* copy, plus an
//! owner hint (the group whose copy is dirty — Modified or Owned).
//!
//! The directory is **exact**, not conservative: a bit is set if and
//! only if that group's L2 holds the line in a valid state. Exactness is
//! cheap because residency changes at only three points — fills, their
//! evictions, and invalidations — and the memory system already executes
//! code at each. It is also what makes filtering *trivially*
//! bit-identical to broadcast: a broadcast probe of a cache that does
//! not hold the line is a no-op (no state change, no data supplied), so
//! skipping exactly those probes cannot change any MOESI outcome. The
//! differential oracle in `tests/snoop_filter.rs` checks this claim
//! end-to-end against
//! [`MemorySystem::new_broadcast`](crate::system::MemorySystem::new_broadcast).
//!
//! ## Shape of the structure
//!
//! A directory entry is touched on every L2 miss, so its constant factor
//! *is* the optimization; two tempting shapes lose to memory behavior:
//!
//! - A general hash map (boxed pages or SipHash buckets) costs a chain
//!   of *dependent* loads per operation — hash, bucket, entry — and a
//!   miss performs several operations. Dependent random loads serialize
//!   at full memory latency each.
//! - Duplicate tag arrays (one scan block per set, hardware style) make
//!   every operation land in one place, but the block is `groups × ways`
//!   slots scanned in full: at 16 groups a single sharer query streams
//!   half a kilobyte, and line-fetch bandwidth — not latency — becomes
//!   the wall.
//!
//! The layout here takes the *addressing* of the first and the
//! *placement* of the second. Every L2 has the same geometry, so a line
//! maps to the same set index in each of them; the directory therefore
//! keeps one small open-addressed block per set (linear probing over
//! packed 16-byte entries, backward-shift deletion, Fibonacci-hashed by
//! tag), sized at twice the set's residency bound `groups × ways` so
//! its load factor stays below one half by construction. A lookup is
//! one multiplicative hash and typically one cache-line touch with no
//! pointer chase.
//!
//! Placement by set is what makes the *miss path* cheap. A fill and its
//! eviction touch two directory entries — the incoming line's and the
//! victim's — and the victim, by definition, maps to the same set. In a
//! set-blocked table both entries sit in the same few-hundred-byte
//! block: one page translation covers both (with a flat global table
//! each touch was a separate TLB-missing page walk, and page-walk
//! throughput — not line latency — was the measured wall at 16 CPUs),
//! and a caller that knows the set early can pull the whole transaction
//! into cache before it begins
//! ([`MemorySystem::warm`](crate::system::MemorySystem::warm)).
//!
//! Each entry is two adjacent `u64` words: a *meta* word (57-bit line
//! tag, 7-bit owner) and a full 64-bit sharer bitset. Two words instead
//! of one doubles the table's footprint over the original single-word
//! packing, but buys a sharer field wide enough for 64 L2 groups —
//! larger topologies no longer fall back to broadcast snooping — and
//! the pair sits in one 16-byte aligned unit, so an entry touch still
//! costs a single cache-line fetch in the common case.
//!
//! The protocol paths use fused read-modify operations so an entire miss
//! costs about two entry touches: [`Directory::fetch_and_add`] answers
//! the read-snoop query and records the requester's imminent fill in one
//! access; [`Directory::take_exclusive`] does the same for write misses
//! and upgrades (returning the sharers to invalidate while installing
//! the requester as sole owner); retiring the fill's victim
//! ([`Directory::remove_sharer`]) is the one extra touch — in the same
//! block.

/// Bits of the meta word holding the owner group (`127` = no owner).
const OWNER_BITS: u32 = 7;
/// Where the line tag starts in the meta word (sharers live in the
/// entry's second word).
const KEY_SHIFT: u32 = OWNER_BITS;

/// Owner-field value meaning "no dirty copy anywhere".
const NO_OWNER: u64 = (1 << OWNER_BITS) - 1;

/// Largest representable tag; reserved as the free-slot sentinel (a free
/// slot is the all-ones meta word). Tags must stay below this — 57 tag
/// bits over any practical set count covers far more physical address
/// space than anything the simulated machines touch.
const KEY_LIMIT: u64 = (1 << (64 - KEY_SHIFT)) - 1;

/// Free-slot meta word: all ones (tag field [`KEY_LIMIT`], which no live
/// entry can carry).
const EMPTY: u64 = u64::MAX;

/// High-entropy odd multiplier (2^64 / phi): Fibonacci hashing mixes the
/// sequential tags simulators produce into uniform top bits.
const HASH_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn word_key(w: u64) -> u64 {
    w >> KEY_SHIFT
}

#[inline]
fn word_owner(w: u64) -> u64 {
    w & NO_OWNER
}

#[inline]
fn pack(key: u64, owner: u64) -> u64 {
    debug_assert!(key < KEY_LIMIT && owner <= NO_OWNER);
    (key << KEY_SHIFT) | owner
}

/// Exact per-line sharer tracking for up to [`Directory::MAX_GROUPS`] L2
/// groups, blocked by cache set.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Two words per entry: meta at `2e`, sharer bitset at `2e + 1`.
    slots: Vec<u64>,
    /// Entries per set block minus one; the block size is a power of two.
    bmask: usize,
    /// `64 - log2(block size)`: multiplicative hashing indexes with the
    /// top bits, where the mixing is strongest.
    shift: u32,
    /// `sets - 1` (set count is a power of two), for line → set.
    set_mask: u64,
    /// `log2(sets)`, for line → tag and back.
    index_bits: u32,
    live: usize,
}

impl Directory {
    /// Largest group count a sharer word can track: the full width of
    /// the entry's 64-bit sharer word. Systems with more L2 groups fall
    /// back to broadcast snooping (see `MemorySystem`).
    pub const MAX_GROUPS: usize = 64;

    /// Creates an empty directory for `groups` L2 groups whose caches
    /// all have `sets` sets of `ways` ways — identical geometry is what
    /// lets entries be blocked by set.
    ///
    /// # Panics
    ///
    /// Panics if `groups` exceeds [`Directory::MAX_GROUPS`], `sets` is
    /// not a power of two, or `ways` is zero.
    pub fn new(groups: usize, sets: usize, ways: usize) -> Self {
        assert!(
            groups <= Directory::MAX_GROUPS,
            "sharer bitset holds at most {} groups",
            Directory::MAX_GROUPS
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "caches need at least one way");
        // At most `groups * ways` lines of one set are resident at once,
        // so doubling that bounds each block's load factor at 1/2 and
        // keeps linear probes short. (A fill registers the incoming line
        // before retiring its victim, so a block transiently holds one
        // extra entry — covered, since 2·g·w ≥ g·w + 1.)
        let block = (groups * ways * 2).next_power_of_two();
        let cap = sets * block;
        // The table is touched at random; huge pages keep those touches
        // from also missing the TLB (which would drop the access path's
        // prefetches — see `crate::mem`). Two words per entry.
        let slots = crate::mem::huge_vec(cap * 2, EMPTY);
        Directory {
            slots,
            bmask: block - 1,
            shift: 64 - block.trailing_zeros(),
            set_mask: sets as u64 - 1,
            index_bits: sets.trailing_zeros(),
            live: 0,
        }
    }

    /// Home entry of a line: its set's block, at the tag's hash.
    #[inline]
    fn home(&self, line: u64) -> usize {
        let base = (line & self.set_mask) as usize * (self.bmask + 1);
        base + (line >> self.index_bits)
            .wrapping_mul(HASH_MUL)
            .wrapping_shr(self.shift) as usize
    }

    /// Hints the CPU to pull `line`'s home slot toward L1, in writable
    /// state (directory touches nearly always write). The directory is
    /// consulted only after the local L1/L2 probes have concluded a bus
    /// transaction is needed; issuing this at access entry overlaps the
    /// table's random (latency-bound) line fetch with that work, so the
    /// eventual [`Self::fetch_and_add`] / [`Self::take_exclusive`] finds
    /// its slot already resident. Purely a hint — correctness and
    /// statistics are unaffected.
    #[inline]
    pub fn prefetch(&self, line: u64) {
        // A discarded volatile load rather than a prefetch instruction:
        // hardware drops software prefetches whose page translation
        // misses the TLB, and a multi-megabyte randomly-indexed table is
        // exactly where that happens. A real load cannot be dropped, its
        // result gates nothing, and the out-of-order core performs the
        // page walk and line fetch in the shadow of the L1/L2 probes.
        // The PREFETCHW that follows (now translation-warm, so it will
        // not be dropped) upgrades the fetch to ownership.
        unsafe {
            let p = self.slots.as_ptr().add(self.home(line) * 2);
            std::ptr::read_volatile(p.cast::<u8>());
            crate::mem::prefetch_write(p.cast());
        }
    }

    /// Non-binding variant of [`Directory::prefetch`], for speculative
    /// warming well ahead of use (see `MemorySystem::warm`): a plain
    /// prefetch-instruction hint that is free when dropped, where the
    /// volatile-load form above would bind a real load into the
    /// pipeline.
    #[inline]
    pub fn hint(&self, line: u64) {
        unsafe {
            let p = self.slots.as_ptr().add(self.home(line) * 2);
            crate::mem::prefetch_hint(p.cast());
        }
    }

    /// Finds `line`'s entry index, or the free entry where it would go
    /// (`None` if its block is transiently full of other lines).
    ///
    /// # Panics
    ///
    /// Panics if `line`'s tag exceeds the 57-bit key space — silently
    /// aliasing two lines would corrupt statistics, so the bound is
    /// enforced even in release builds.
    #[inline]
    fn probe(&self, line: u64) -> (Option<usize>, bool) {
        let tag = line >> self.index_bits;
        assert!(tag < KEY_LIMIT, "line tag exceeds the 57-bit key space");
        let base = (line & self.set_mask) as usize * (self.bmask + 1);
        let mut o = tag.wrapping_mul(HASH_MUL).wrapping_shr(self.shift) as usize;
        for _ in 0..=self.bmask {
            let k = word_key(self.slots[(base + o) * 2]);
            if k == tag {
                return (Some(base + o), true);
            }
            if k == KEY_LIMIT {
                return (Some(base + o), false);
            }
            o = (o + 1) & self.bmask;
        }
        (None, false)
    }

    /// Bitset of groups holding a valid copy of `line` (bit `g` ⇔ group
    /// `g` is a sharer). Zero for untracked lines.
    #[inline]
    pub fn sharers(&self, line: u64) -> u64 {
        match self.probe(line) {
            (Some(i), true) => self.slots[i * 2 + 1],
            _ => 0,
        }
    }

    /// The group holding `line` dirty (Modified or Owned), if any.
    pub fn owner(&self, line: u64) -> Option<usize> {
        match self.probe(line) {
            (Some(i), true) => {
                let owner = word_owner(self.slots[i * 2]);
                (owner != NO_OWNER).then_some(owner as usize)
            }
            _ => None,
        }
    }

    /// Returns `line`'s sharer bitset and adds `group` to it — the read
    /// miss's snoop query and fill registration fused into one entry
    /// touch.
    #[inline]
    pub fn fetch_and_add(&mut self, line: u64, group: usize) -> u64 {
        let (slot, found) = self.probe(line);
        let i = slot.expect("directory set block overfull");
        if found {
            let s = self.slots[i * 2 + 1];
            self.slots[i * 2 + 1] = s | 1u64 << group;
            s
        } else {
            self.slots[i * 2] = pack(line >> self.index_bits, NO_OWNER);
            self.slots[i * 2 + 1] = 1u64 << group;
            self.live += 1;
            0
        }
    }

    /// Returns `line`'s sharer bitset and makes `group` its sole sharer
    /// and owner — the write miss / upgrade fused update (the caller
    /// invalidates the other copies the returned bitset names).
    #[inline]
    pub fn take_exclusive(&mut self, line: u64, group: usize) -> u64 {
        let (slot, found) = self.probe(line);
        let i = slot.expect("directory set block overfull");
        let prior = if found {
            self.slots[i * 2 + 1]
        } else {
            self.live += 1;
            0
        };
        self.slots[i * 2] = pack(line >> self.index_bits, group as u64);
        self.slots[i * 2 + 1] = 1u64 << group;
        prior
    }

    /// Marks `group` as the dirty owner of `line`, which must already be
    /// tracked as a sharer (the silent E→M upgrade).
    #[inline]
    pub fn set_owner(&mut self, line: u64, group: usize) {
        let (slot, found) = self.probe(line);
        debug_assert!(found, "owner update for an untracked line");
        if let (Some(i), true) = (slot, found) {
            debug_assert_ne!(
                self.slots[i * 2 + 1] & 1u64 << group,
                0,
                "owner must be a sharer"
            );
            self.slots[i * 2] = (self.slots[i * 2] & !NO_OWNER) | group as u64;
        }
    }

    /// Removes `group` from `line`'s sharers; the owner hint is cleared
    /// when the owner leaves and the entry is deleted (backward-shift,
    /// no tombstones) when its last sharer leaves.
    #[inline]
    pub fn remove_sharer(&mut self, line: u64, group: usize) {
        let (slot, found) = self.probe(line);
        if !found {
            debug_assert!(false, "removing a sharer of an untracked line");
            return;
        }
        let i = slot.unwrap();
        let s = self.slots[i * 2 + 1] & !(1u64 << group);
        if s == 0 {
            self.live -= 1;
            self.delete(i);
            return;
        }
        let mut meta = self.slots[i * 2];
        if word_owner(meta) == group as u64 {
            meta |= NO_OWNER;
        }
        self.slots[i * 2] = meta;
        self.slots[i * 2 + 1] = s;
    }

    /// Backward-shift deletion for linear probing, confined to the
    /// hole's set block: walk the cluster after the hole and pull back
    /// any entry whose home does not lie strictly inside the gap —
    /// leaving every remaining entry reachable from its home without
    /// tombstones.
    fn delete(&mut self, slot: usize) {
        let base = slot & !self.bmask;
        let mut hole = slot - base;
        let mut j = hole;
        loop {
            self.slots[(base + hole) * 2] = EMPTY;
            self.slots[(base + hole) * 2 + 1] = EMPTY;
            loop {
                j = (j + 1) & self.bmask;
                let w = self.slots[(base + j) * 2];
                let k = word_key(w);
                if k == KEY_LIMIT {
                    return;
                }
                let h = k.wrapping_mul(HASH_MUL).wrapping_shr(self.shift) as usize;
                // The entry at j may stay iff its home lies cyclically in
                // (hole, j]; otherwise the probe chain breaks and it
                // must move into the hole.
                let stays = if hole <= j {
                    h > hole && h <= j
                } else {
                    h > hole || h <= j
                };
                if !stays {
                    self.slots[(base + hole) * 2] = w;
                    self.slots[(base + hole) * 2 + 1] = self.slots[(base + j) * 2 + 1];
                    hole = j;
                    break;
                }
            }
        }
    }

    /// Number of lines currently tracked (at least one sharer).
    pub fn lines(&self) -> usize {
        self.live
    }

    /// Iterates over `(line, sharers, owner)` for every tracked line
    /// (directory audits; walks the whole table).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, Option<usize>)> + '_ {
        let block = self.bmask + 1;
        (0..self.slots.len() / 2)
            .filter(move |&e| self.slots[e * 2] != EMPTY)
            .map(move |e| {
                let w = self.slots[e * 2];
                let set = (e / block) as u64;
                let owner = word_owner(w);
                (
                    word_key(w) << self.index_bits | set,
                    self.slots[e * 2 + 1],
                    (owner != NO_OWNER).then_some(owner as usize),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_and_add_tracks_sharers() {
        let mut d = Directory::new(8, 16, 4);
        assert_eq!(d.fetch_and_add(100, 3), 0);
        assert_eq!(d.fetch_and_add(100, 5), 0b1000);
        assert_eq!(d.sharers(100), 0b10_1000);
        assert_eq!(d.owner(100), None);
        assert_eq!(d.lines(), 1);
    }

    #[test]
    fn take_exclusive_returns_prior_and_owns() {
        let mut d = Directory::new(8, 16, 4);
        d.fetch_and_add(9, 0);
        d.fetch_and_add(9, 4);
        let prior = d.take_exclusive(9, 2);
        assert_eq!(prior, 0b1_0001);
        assert_eq!(d.sharers(9), 0b100);
        assert_eq!(d.owner(9), Some(2));
        // Untracked line: empty prior, requester installed dirty.
        assert_eq!(d.take_exclusive(77, 1), 0);
        assert_eq!(d.owner(77), Some(1));
    }

    #[test]
    fn owner_clears_when_owner_leaves() {
        let mut d = Directory::new(4, 16, 4);
        d.take_exclusive(1, 1);
        d.fetch_and_add(1, 0);
        d.remove_sharer(1, 1);
        assert_eq!(d.owner(1), None);
        assert_eq!(d.sharers(1), 0b1);
        // Removing a non-owner keeps the hint.
        d.set_owner(1, 0);
        d.fetch_and_add(1, 2);
        d.remove_sharer(1, 2);
        assert_eq!(d.owner(1), Some(0));
    }

    #[test]
    fn last_sharer_removal_deletes_the_entry() {
        let mut d = Directory::new(2, 16, 4);
        d.fetch_and_add(42, 1);
        assert_eq!(d.lines(), 1);
        d.remove_sharer(42, 1);
        assert_eq!(d.lines(), 0);
        assert_eq!(d.sharers(42), 0);
        assert_eq!(d.owner(42), None);
    }

    #[test]
    fn iter_reports_tracked_lines() {
        let mut d = Directory::new(3, 16, 4);
        d.take_exclusive(5, 2);
        d.fetch_and_add(9000, 0);
        let mut all: Vec<_> = d.iter().collect();
        all.sort();
        assert_eq!(all, vec![(5, 0b100, Some(2)), (9000, 0b1, None)]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_groups_panics() {
        Directory::new(65, 16, 4);
    }

    #[test]
    #[should_panic(expected = "57-bit")]
    fn oversized_line_tag_panics() {
        let mut d = Directory::new(2, 16, 4);
        d.fetch_and_add(KEY_LIMIT << 4, 0);
    }

    /// Groups past the old 16-bit sharer field: the wide (two-word)
    /// entry tracks them exactly.
    #[test]
    fn wide_group_ids_round_trip() {
        let mut d = Directory::new(64, 16, 4);
        assert_eq!(d.fetch_and_add(3, 17), 0);
        assert_eq!(d.fetch_and_add(3, 40), 1 << 17);
        assert_eq!(d.fetch_and_add(3, 63), 1 << 17 | 1 << 40);
        assert_eq!(d.sharers(3), 1 << 17 | 1 << 40 | 1 << 63);
        d.set_owner(3, 40);
        assert_eq!(d.owner(3), Some(40));
        let prior = d.take_exclusive(3, 63);
        assert_eq!(prior, 1 << 17 | 1 << 40 | 1 << 63);
        assert_eq!(d.sharers(3), 1 << 63);
        assert_eq!(d.owner(3), Some(63));
        d.remove_sharer(3, 63);
        assert_eq!(d.lines(), 0);
    }

    #[test]
    fn key_space_boundaries_roundtrip() {
        let mut d = Directory::new(Directory::MAX_GROUPS, 16, 4);
        let big = (KEY_LIMIT - 1) << 4 | 0b1011; // max tag, arbitrary set
        d.fetch_and_add(big, Directory::MAX_GROUPS - 1);
        d.set_owner(big, Directory::MAX_GROUPS - 1);
        assert_eq!(d.sharers(big), 1 << (Directory::MAX_GROUPS - 1));
        assert_eq!(d.owner(big), Some(Directory::MAX_GROUPS - 1));
        assert_eq!(
            d.iter().next(),
            Some((
                big,
                1 << (Directory::MAX_GROUPS - 1),
                Some(Directory::MAX_GROUPS - 1)
            ))
        );
        d.remove_sharer(big, Directory::MAX_GROUPS - 1);
        assert_eq!(d.lines(), 0);
    }

    /// A minimal one-line-per-group geometry: each set block holds two
    /// slots, and a fill that registers before its eviction retires
    /// fills the block completely. Probes for absent lines must still
    /// terminate, and the insert must still find its slot.
    #[test]
    fn transiently_full_block_stays_sound() {
        let mut d = Directory::new(1, 4, 1);
        // Two lines of set 2 tracked at once (fill-before-evict order).
        d.fetch_and_add(0b0010, 0);
        d.fetch_and_add(0b1_0010, 0);
        assert_eq!(d.sharers(0b0010), 1);
        assert_eq!(d.sharers(0b1_0010), 1);
        // Absent line in the full block: bounded probe, not found.
        assert_eq!(d.sharers(0b10_0010), 0);
        assert_eq!(d.owner(0b10_0010), None);
        d.remove_sharer(0b0010, 0);
        assert_eq!(d.sharers(0b1_0010), 1);
        assert_eq!(d.lines(), 1);
    }

    /// Churn the table against a straightforward model: backward-shift
    /// deletion must keep every surviving entry findable through heavy
    /// insert/remove cycling in a deliberately tiny (collision-rich)
    /// table.
    #[test]
    fn survives_churn_against_model() {
        use std::collections::HashMap;
        let mut d = Directory::new(4, 4, 4); // blocks of 32 slots
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut r = 0xDEAD_BEEFu64;
        for step in 0..100_000 {
            r = r
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (r >> 16) % 96; // 24 tags per set, blocks hold 32
            let g = (r >> 8) as usize % 4;
            if model.len() < 48 && r % 3 != 0 {
                d.fetch_and_add(line, g);
                *model.entry(line).or_insert(0) |= 1 << g;
            } else if let Some((&line, _)) = model.iter().next() {
                let bits = model[&line];
                let g = bits.trailing_zeros() as usize;
                d.remove_sharer(line, g);
                let left = bits & !(1 << g);
                if left == 0 {
                    model.remove(&line);
                } else {
                    model.insert(line, left);
                }
            }
            if step % 1024 == 0 {
                for (&line, &bits) in &model {
                    assert_eq!(d.sharers(line), u64::from(bits), "line {line} diverged");
                }
                assert_eq!(d.lines(), model.len());
            }
        }
        for (&line, &bits) in &model {
            assert_eq!(d.sharers(line), u64::from(bits));
        }
    }
}
