//! Reference-trace capture and replay.
//!
//! The paper's simulation methodology is trace-driven: Simics produced
//! per-processor memory reference streams that were fed to the Sumo
//! memory-system simulator, optionally *filtered* (their multiprocessor
//! ECperf runs kept only the application-server processors' references —
//! Section 3.3). This module reproduces that workflow at two levels:
//!
//! - [`Trace`] / [`TraceSink`] — a single logical processor's stream,
//!   recorded from any [`MemSink`] and replayed into any other;
//! - [`SystemTrace`] — a whole machine's interleaved stream, every
//!   reference tagged with its processor and [`AccessSource`], with
//!   window boundaries recorded in-stream so a replay from a cold system
//!   reproduces the live run's measurement-window statistics exactly.
//!
//! Filtering is a predicate over the tags — keeping one tier's
//! processors is exactly the paper's filter step — and replay order is
//! capture order, which is what makes the coherence outcomes (and
//! therefore miss/upgrade/cache-to-cache counts) bit-identical.

use std::io::{self, Read, Write};

use crate::addr::Addr;
use crate::sink::MemSink;
use crate::stats::AccessKind;
use crate::system::{BatchRef, MemorySystem};

/// Where a memory reference came from.
///
/// The simulation engine tags every reference it issues; traces carry
/// the tag so filtering by source (the paper keeps only the benchmark
/// tier's traffic for its cache sweeps) is a replay-time predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSource {
    /// A workload thread's step.
    Workload,
    /// The single-threaded stop-the-world collector.
    Collector,
    /// The background OS clock tick (kernel lines, every processor).
    KernelTick,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `n` instructions retired with no memory reference.
    Instructions(u64),
    /// A memory reference.
    Ref {
        /// Reference kind.
        kind: AccessKind,
        /// Byte address.
        addr: Addr,
    },
}

/// A captured reference stream for one logical processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events (instruction batches + references).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total memory references recorded.
    pub fn refs(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Ref { .. }))
            .count() as u64
    }

    /// Total instructions recorded.
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Instructions(n) => *n,
                TraceEvent::Ref { .. } => 0,
            })
            .sum()
    }

    /// Keeps only references matching `keep` (instruction batches are
    /// preserved) — the paper's filter-to-one-tier step.
    pub fn filtered(&self, mut keep: impl FnMut(AccessKind, Addr) -> bool) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| match e {
                    TraceEvent::Instructions(_) => true,
                    TraceEvent::Ref { kind, addr } => keep(*kind, *addr),
                })
                .copied()
                .collect(),
        }
    }

    /// Appends another trace.
    pub fn extend_from(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
    }

    /// Replays the trace into any sink (a cache sweep, a recording sink,
    /// a full memory system via [`SystemSink`]).
    pub fn replay(&self, sink: &mut (impl MemSink + ?Sized)) {
        for e in &self.events {
            match e {
                TraceEvent::Instructions(n) => sink.instructions(*n),
                TraceEvent::Ref { kind, addr } => sink.access(*kind, *addr),
            }
        }
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// One event of a whole-machine capture. Field widths are chosen so the
/// enum packs into 16 bytes — multiprocessor windows run to tens of
/// millions of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemTraceEvent {
    /// `n` instructions retired on `cpu` with no memory reference.
    Instructions {
        /// Issuing processor.
        cpu: u16,
        /// Instructions retired.
        n: u64,
    },
    /// A memory reference, in global (bus) order.
    Ref {
        /// Issuing processor.
        cpu: u16,
        /// Which part of the simulated system issued it.
        source: AccessSource,
        /// Reference kind.
        kind: AccessKind,
        /// Byte address.
        addr: Addr,
    },
    /// The live run's `begin_measurement`: statistics were reset here.
    /// Replays reset theirs at the same point, so a replay from a cold
    /// system reproduces the live measurement window exactly (the warm-up
    /// prefix re-warms the replay caches the same way it warmed the
    /// originals).
    WindowReset,
}

/// A whole machine's interleaved, tagged reference stream.
///
/// Events are recorded in the exact order the memory system consumed
/// them, which on a snooping bus *is* the coherence order: replaying
/// into a fresh [`MemorySystem`] of the same configuration reproduces
/// every hit level, upgrade and cache-to-cache transfer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemTrace {
    events: Vec<SystemTraceEvent>,
    cpus: usize,
}

impl SystemTrace {
    /// Creates an empty capture.
    pub fn new() -> Self {
        SystemTrace::default()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[SystemTraceEvent] {
        &self.events
    }

    /// One more than the highest processor index seen.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Records an instruction batch, coalescing with an immediately
    /// preceding batch from the same processor.
    pub fn record_instructions(&mut self, cpu: usize, n: u64) {
        self.cpus = self.cpus.max(cpu + 1);
        if let Some(SystemTraceEvent::Instructions { cpu: last, n: m }) = self.events.last_mut() {
            if *last as usize == cpu {
                *m += n;
                return;
            }
        }
        self.events
            .push(SystemTraceEvent::Instructions { cpu: cpu as u16, n });
    }

    /// Records one memory reference.
    pub fn record_ref(&mut self, cpu: usize, source: AccessSource, kind: AccessKind, addr: Addr) {
        self.cpus = self.cpus.max(cpu + 1);
        self.events.push(SystemTraceEvent::Ref {
            cpu: cpu as u16,
            source,
            kind,
            addr,
        });
    }

    /// Records a measurement-window boundary.
    pub fn record_window_reset(&mut self) {
        self.events.push(SystemTraceEvent::WindowReset);
    }

    /// Total references recorded.
    pub fn refs(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, SystemTraceEvent::Ref { .. }))
            .count() as u64
    }

    /// Total instructions recorded.
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SystemTraceEvent::Instructions { n, .. } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Instructions after the last window boundary (the whole trace when
    /// no boundary was recorded) — the denominator for per-1000-
    /// instruction replay metrics.
    pub fn window_instructions(&self) -> u64 {
        let start = self
            .events
            .iter()
            .rposition(|e| matches!(e, SystemTraceEvent::WindowReset))
            .map(|i| i + 1)
            .unwrap_or(0);
        self.events[start..]
            .iter()
            .map(|e| match e {
                SystemTraceEvent::Instructions { n, .. } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Keeps only references matching `keep`; instruction batches and
    /// window boundaries are preserved. This is the paper's Section 3.3
    /// step — filtering a multi-machine trace down to the tier under
    /// study is a predicate over `(cpu, source)`.
    pub fn filtered(&self, mut keep: impl FnMut(usize, AccessSource) -> bool) -> SystemTrace {
        let mut out = SystemTrace::new();
        out.cpus = self.cpus;
        out.events = self
            .events
            .iter()
            .filter(|e| match e {
                SystemTraceEvent::Ref { cpu, source, .. } => keep(*cpu as usize, *source),
                _ => true,
            })
            .copied()
            .collect();
        out
    }

    /// Drops *everything* (references and instructions) from processors
    /// `keep` rejects — projecting the capture onto one tier's processor
    /// set as a self-contained trace.
    pub fn filtered_cpus(&self, mut keep: impl FnMut(usize) -> bool) -> SystemTrace {
        let mut out = SystemTrace::new();
        for e in &self.events {
            match *e {
                SystemTraceEvent::Instructions { cpu, n } => {
                    if keep(cpu as usize) {
                        out.record_instructions(cpu as usize, n);
                    }
                }
                SystemTraceEvent::Ref {
                    cpu,
                    source,
                    kind,
                    addr,
                } => {
                    if keep(cpu as usize) {
                        out.record_ref(cpu as usize, source, kind, addr);
                    }
                }
                SystemTraceEvent::WindowReset => out.record_window_reset(),
            }
        }
        out.cpus = self.cpus;
        out
    }

    /// Projects one processor's stream as a plain [`Trace`] (for cache
    /// sweeps and other single-stream consumers). Window boundaries are
    /// dropped; the stream is the whole capture.
    pub fn cpu_stream(&self, cpu: usize) -> Trace {
        let mut sink = TraceSink::new();
        for e in &self.events {
            match *e {
                SystemTraceEvent::Instructions { cpu: c, n } if c as usize == cpu => {
                    sink.instructions(n);
                }
                SystemTraceEvent::Ref {
                    cpu: c, kind, addr, ..
                } if c as usize == cpu => {
                    sink.access(kind, addr);
                }
                _ => {}
            }
        }
        sink.into_trace()
    }

    /// Replays the capture into a memory system in recorded order,
    /// resetting the system's statistics at each recorded window
    /// boundary.
    ///
    /// Replay is where a trace-driven caller's one advantage over live
    /// execution pays off: the future is already known. References are
    /// handed down in chunks via [`MemorySystem::access_batch`], whose
    /// internal warm cursor runs a few records ahead of the issue point
    /// and announces each one to [`MemorySystem::warm`], overlapping the
    /// simulator's long metadata fetches across accesses. Warming is
    /// hint-only, so the replayed statistics are identical with or
    /// without it (the round-trip suite in `tests/trace_roundtrip.rs`
    /// holds this path to exact equality with live capture).
    ///
    /// # Panics
    ///
    /// Panics if the trace references a processor the system lacks.
    pub fn replay_into(&self, sys: &mut MemorySystem) {
        /// References per batch: enough to amortize the per-batch warm
        /// ramp to nothing, small enough that the staging buffer stays
        /// host-cache resident.
        const CHUNK: usize = 4096;
        let mut batch: Vec<BatchRef> = Vec::with_capacity(CHUNK);
        fn flush(sys: &mut MemorySystem, batch: &mut Vec<BatchRef>) {
            sys.access_batch(batch, |_, _| None);
            batch.clear();
        }
        for e in &self.events {
            match *e {
                SystemTraceEvent::Instructions { .. } => {}
                SystemTraceEvent::Ref {
                    cpu, kind, addr, ..
                } => {
                    batch.push(BatchRef {
                        cpu: cpu as u32,
                        kind,
                        addr,
                    });
                    if batch.len() == CHUNK {
                        flush(sys, &mut batch);
                    }
                }
                SystemTraceEvent::WindowReset => {
                    flush(sys, &mut batch);
                    sys.reset_stats();
                }
            }
        }
        flush(sys, &mut batch);
    }

    /// Writes the capture in the compact on-disk format: a
    /// magic+version header, then one varint-packed record per event.
    ///
    /// Multiprocessor windows run to tens of millions of events at 16
    /// in-memory bytes each; on disk a typical reference takes 5–7
    /// bytes (one tag byte folding source and kind, then LEB128 cpu
    /// and address). The writer buffers internally, so handing it an
    /// unbuffered `File` is fine.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut buf = Vec::with_capacity(DISK_BUF);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.push(TRACE_VERSION);
        put_varint(&mut buf, self.cpus as u64);
        put_varint(&mut buf, self.events.len() as u64);
        for e in &self.events {
            match *e {
                SystemTraceEvent::WindowReset => buf.push(TAG_WINDOW_RESET),
                SystemTraceEvent::Instructions { cpu, n } => {
                    buf.push(TAG_INSTRUCTIONS);
                    put_varint(&mut buf, cpu as u64);
                    put_varint(&mut buf, n);
                }
                SystemTraceEvent::Ref {
                    cpu,
                    source,
                    kind,
                    addr,
                } => {
                    buf.push(TAG_REF_BASE + 3 * source_code(source) + kind_code(kind));
                    put_varint(&mut buf, cpu as u64);
                    put_varint(&mut buf, addr.0);
                }
            }
            if buf.len() >= DISK_BUF - 16 {
                w.write_all(&buf)?;
                buf.clear();
            }
        }
        w.write_all(&buf)?;
        w.flush()
    }

    /// Reads a capture written by [`SystemTrace::write_to`].
    ///
    /// Rejects (with `InvalidData`) anything that is not a well-formed
    /// trace: wrong magic, unknown version, unknown record tag, a
    /// truncated stream, or trailing bytes after the declared events.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<SystemTrace> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let mut c = Cursor {
            bytes: &bytes,
            pos: 0,
        };
        let magic = c.take(TRACE_MAGIC.len())?;
        if magic != TRACE_MAGIC {
            return Err(bad_data("not a trace file (bad magic)"));
        }
        let version = c.byte()?;
        if version != TRACE_VERSION {
            return Err(bad_data("unsupported trace version"));
        }
        let cpus = c.varint()? as usize;
        let count = c.varint()?;
        let mut out = SystemTrace::new();
        out.events = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            let tag = c.byte()?;
            let event = match tag {
                TAG_WINDOW_RESET => SystemTraceEvent::WindowReset,
                TAG_INSTRUCTIONS => {
                    let cpu = cursor_cpu(&mut c)?;
                    let n = c.varint()?;
                    SystemTraceEvent::Instructions { cpu, n }
                }
                TAG_REF_BASE..=TAG_REF_LAST => {
                    let code = tag - TAG_REF_BASE;
                    let cpu = cursor_cpu(&mut c)?;
                    let addr = Addr(c.varint()?);
                    SystemTraceEvent::Ref {
                        cpu,
                        source: source_from(code / 3),
                        kind: kind_from(code % 3),
                        addr,
                    }
                }
                _ => return Err(bad_data("unknown trace record tag")),
            };
            if let SystemTraceEvent::Instructions { cpu, .. } | SystemTraceEvent::Ref { cpu, .. } =
                event
            {
                out.cpus = out.cpus.max(cpu as usize + 1);
            }
            out.events.push(event);
        }
        if c.pos != bytes.len() {
            return Err(bad_data("trailing bytes after the declared events"));
        }
        if out.cpus > cpus {
            return Err(bad_data("trace references a cpu beyond its header"));
        }
        out.cpus = cpus;
        Ok(out)
    }
}

/// On-disk format constants: `b"MTRC"` magic, a version byte, then the
/// varint-packed header and records [`SystemTrace::write_to`] describes.
const TRACE_MAGIC: [u8; 4] = *b"MTRC";
const TRACE_VERSION: u8 = 1;
const TAG_WINDOW_RESET: u8 = 0;
const TAG_INSTRUCTIONS: u8 = 1;
/// Ref tags fold `(source, kind)` into `TAG_REF_BASE + 3*source + kind`.
const TAG_REF_BASE: u8 = 2;
const TAG_REF_LAST: u8 = TAG_REF_BASE + 8;
/// Internal writer buffer: one syscall per ~64 KiB, not per event.
const DISK_BUF: usize = 64 << 10;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("SystemTrace: {msg}"))
}

fn source_code(s: AccessSource) -> u8 {
    match s {
        AccessSource::Workload => 0,
        AccessSource::Collector => 1,
        AccessSource::KernelTick => 2,
    }
}

fn source_from(code: u8) -> AccessSource {
    match code {
        0 => AccessSource::Workload,
        1 => AccessSource::Collector,
        _ => AccessSource::KernelTick,
    }
}

fn kind_code(k: AccessKind) -> u8 {
    match k {
        AccessKind::Ifetch => 0,
        AccessKind::Load => 1,
        AccessKind::Store => 2,
    }
}

fn kind_from(code: u8) -> AccessKind {
    match code {
        0 => AccessKind::Ifetch,
        1 => AccessKind::Load,
        _ => AccessKind::Store,
    }
}

/// LEB128: seven payload bits per byte, high bit = continuation.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn byte(&mut self) -> io::Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| bad_data("truncated stream"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad_data("truncated stream"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b < 0x80 {
                return Ok(v);
            }
        }
        Err(bad_data("varint overruns 64 bits"))
    }
}

fn cursor_cpu(c: &mut Cursor<'_>) -> io::Result<u16> {
    u16::try_from(c.varint()?).map_err(|_| bad_data("cpu index exceeds u16"))
}

/// A sink that records everything it sees into a [`Trace`], optionally
/// forwarding to an inner sink (tee).
#[derive(Debug, Default)]
pub struct TraceSink {
    trace: Trace,
}

impl TraceSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Consumes the sink, returning the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The trace captured so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl MemSink for TraceSink {
    fn instructions(&mut self, n: u64) {
        // Coalesce adjacent instruction batches.
        if let Some(TraceEvent::Instructions(last)) = self.trace.events.last_mut() {
            *last += n;
        } else {
            self.trace.events.push(TraceEvent::Instructions(n));
        }
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.trace.events.push(TraceEvent::Ref { kind, addr });
    }
}

/// Adapts a [`MemorySystem`] processor into a [`MemSink`], so traces can
/// be replayed straight into the coherent model.
#[derive(Debug)]
pub struct SystemSink<'a> {
    system: &'a mut MemorySystem,
    cpu: usize,
}

impl<'a> SystemSink<'a> {
    /// A sink feeding processor `cpu` of `system`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `cpu` at first access.
    pub fn new(system: &'a mut MemorySystem, cpu: usize) -> Self {
        SystemSink { system, cpu }
    }
}

impl MemSink for SystemSink<'_> {
    fn instructions(&mut self, _n: u64) {}

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.system.access(self.cpu, kind, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;

    fn sample() -> Trace {
        let mut t = TraceSink::new();
        t.instructions(10);
        t.load(Addr(0x100));
        t.instructions(5);
        t.instructions(5);
        t.store(Addr(0x200));
        t.ifetch(Addr(0x300));
        t.into_trace()
    }

    #[test]
    fn capture_and_counts() {
        let t = sample();
        assert_eq!(t.refs(), 3);
        assert_eq!(t.instructions(), 20);
        // Adjacent instruction batches coalesce.
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let t = sample();
        let mut c = CountingSink::new();
        t.replay(&mut c);
        assert_eq!(c.instructions, 20);
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.ifetches, 1);
    }

    #[test]
    fn filter_keeps_instruction_batches() {
        let t = sample();
        let f = t.filtered(|kind, _| kind == AccessKind::Load);
        assert_eq!(f.refs(), 1);
        assert_eq!(f.instructions(), 20);
    }

    #[test]
    fn replay_into_a_memory_system() {
        let t = sample();
        let mut sys = MemorySystem::e6000(2).unwrap();
        {
            let mut sink = SystemSink::new(&mut sys, 1);
            t.replay(&mut sink);
        }
        assert_eq!(sys.stats().total_accesses(), 3);
    }

    #[test]
    fn record_replay_roundtrip_is_identity() {
        let t = sample();
        let mut re = TraceSink::new();
        t.replay(&mut re);
        assert_eq!(re.into_trace(), t);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        let before = a.len();
        a.extend_from(&b);
        assert_eq!(a.len(), before + b.len());
    }

    fn system_sample() -> SystemTrace {
        let mut t = SystemTrace::new();
        t.record_instructions(0, 10);
        t.record_instructions(0, 5); // coalesces
        t.record_ref(0, AccessSource::Workload, AccessKind::Store, Addr(0x1000));
        t.record_instructions(1, 8);
        t.record_ref(1, AccessSource::KernelTick, AccessKind::Load, Addr(0x1000));
        t.record_window_reset();
        t.record_ref(1, AccessSource::Workload, AccessKind::Load, Addr(0x1000));
        t.record_instructions(1, 4);
        t
    }

    #[test]
    fn system_trace_events_pack_small() {
        assert!(std::mem::size_of::<SystemTraceEvent>() <= 16);
    }

    #[test]
    fn system_trace_counts_and_coalesces() {
        let t = system_sample();
        assert_eq!(t.cpus(), 2);
        assert_eq!(t.refs(), 3);
        assert_eq!(t.instructions(), 27);
        assert_eq!(t.window_instructions(), 4);
        // 3 instruction batches (one coalesced) + 3 refs + 1 reset.
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn system_trace_filter_by_source_keeps_instructions() {
        let t = system_sample();
        let f = t.filtered(|_, source| source != AccessSource::KernelTick);
        assert_eq!(f.refs(), 2);
        assert_eq!(f.instructions(), t.instructions());
        assert_eq!(f.cpus(), t.cpus());
    }

    #[test]
    fn system_trace_cpu_projection_drops_other_cpus() {
        let t = system_sample();
        let p0 = t.filtered_cpus(|cpu| cpu == 0);
        assert_eq!(p0.refs(), 1);
        assert_eq!(p0.instructions(), 15);
        let s1 = t.cpu_stream(1);
        assert_eq!(s1.refs(), 2);
        assert_eq!(s1.instructions(), 12);
    }

    #[test]
    fn system_replay_resets_stats_at_the_window_boundary() {
        let t = system_sample();
        let mut sys = MemorySystem::e6000(2).unwrap();
        t.replay_into(&mut sys);
        // Only the one post-reset reference is counted...
        assert_eq!(sys.stats().total_accesses(), 1);
        // ...but the pre-reset stores still warmed the caches: cpu 1's
        // load finds cpu 0's dirty line and takes a cache-to-cache
        // transfer, exactly as in the live run.
        assert_eq!(sys.stats().total_c2c(), 0);
        assert_eq!(sys.stats().load.accesses, 1);
    }

    #[test]
    fn disk_roundtrip_is_identity() {
        let t = system_sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        // Header (4+1+1+1) plus ~2-4 bytes per event: far below the
        // 16-byte in-memory representation.
        assert!(bytes.len() < t.len() * 16);
        let back = SystemTrace::read_from(&bytes[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn disk_roundtrip_preserves_empty_and_wide_values() {
        let mut t = SystemTrace::new();
        t.record_instructions(999, u64::MAX);
        t.record_ref(
            0,
            AccessSource::Collector,
            AccessKind::Store,
            Addr(u64::MAX),
        );
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        assert_eq!(SystemTrace::read_from(&bytes[..]).unwrap(), t);

        let empty = SystemTrace::new();
        let mut bytes = Vec::new();
        empty.write_to(&mut bytes).unwrap();
        assert_eq!(SystemTrace::read_from(&bytes[..]).unwrap(), empty);
    }

    #[test]
    fn disk_reader_rejects_corruption() {
        let t = system_sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();

        let err = |b: &[u8]| SystemTrace::read_from(b).unwrap_err().to_string();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(err(&bad).contains("bad magic"));
        // Unknown version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(err(&bad).contains("version"));
        // Truncation.
        assert!(err(&bytes[..bytes.len() - 1]).contains("truncated"));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(err(&bad).contains("trailing"));
        // Unknown tag (first record starts right after the header).
        let mut bad = bytes.clone();
        bad[7] = 0xff;
        assert!(err(&bad).contains("tag"));
    }

    #[test]
    fn system_replay_matches_direct_driving() {
        let t = system_sample();
        let mut replayed = MemorySystem::e6000(2).unwrap();
        t.replay_into(&mut replayed);
        let mut direct = MemorySystem::e6000(2).unwrap();
        direct.access(0, AccessKind::Store, Addr(0x1000));
        direct.access(1, AccessKind::Load, Addr(0x1000));
        direct.reset_stats();
        direct.access(1, AccessKind::Load, Addr(0x1000));
        assert_eq!(replayed.stats(), direct.stats());
    }
}
