//! Reference-trace capture and replay.
//!
//! The paper's simulation methodology is trace-driven: Simics produced
//! per-processor memory reference streams that were fed to the Sumo
//! memory-system simulator, optionally *filtered* (their multiprocessor
//! ECperf runs kept only the application-server processors' references —
//! Section 3.3). This module reproduces that workflow: a [`TraceSink`]
//! records any [`MemSink`] stream as a compact trace, traces can be
//! filtered and concatenated, and [`Trace::replay`] plays one into a
//! cache model or a fresh [`MemorySystem`].

use crate::addr::Addr;
use crate::sink::MemSink;
use crate::stats::AccessKind;
use crate::system::MemorySystem;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `n` instructions retired with no memory reference.
    Instructions(u64),
    /// A memory reference.
    Ref {
        /// Reference kind.
        kind: AccessKind,
        /// Byte address.
        addr: Addr,
    },
}

/// A captured reference stream for one logical processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events (instruction batches + references).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total memory references recorded.
    pub fn refs(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Ref { .. }))
            .count() as u64
    }

    /// Total instructions recorded.
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Instructions(n) => *n,
                TraceEvent::Ref { .. } => 0,
            })
            .sum()
    }

    /// Keeps only references matching `keep` (instruction batches are
    /// preserved) — the paper's filter-to-one-tier step.
    pub fn filtered(&self, mut keep: impl FnMut(AccessKind, Addr) -> bool) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| match e {
                    TraceEvent::Instructions(_) => true,
                    TraceEvent::Ref { kind, addr } => keep(*kind, *addr),
                })
                .copied()
                .collect(),
        }
    }

    /// Appends another trace.
    pub fn extend_from(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
    }

    /// Replays the trace into any sink (a cache sweep, a recording sink,
    /// a full memory system via [`SystemSink`]).
    pub fn replay(&self, sink: &mut (impl MemSink + ?Sized)) {
        for e in &self.events {
            match e {
                TraceEvent::Instructions(n) => sink.instructions(*n),
                TraceEvent::Ref { kind, addr } => sink.access(*kind, *addr),
            }
        }
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

/// A sink that records everything it sees into a [`Trace`], optionally
/// forwarding to an inner sink (tee).
#[derive(Debug, Default)]
pub struct TraceSink {
    trace: Trace,
}

impl TraceSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Consumes the sink, returning the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The trace captured so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl MemSink for TraceSink {
    fn instructions(&mut self, n: u64) {
        // Coalesce adjacent instruction batches.
        if let Some(TraceEvent::Instructions(last)) = self.trace.events.last_mut() {
            *last += n;
        } else {
            self.trace.events.push(TraceEvent::Instructions(n));
        }
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.trace.events.push(TraceEvent::Ref { kind, addr });
    }
}

/// Adapts a [`MemorySystem`] processor into a [`MemSink`], so traces can
/// be replayed straight into the coherent model.
#[derive(Debug)]
pub struct SystemSink<'a> {
    system: &'a mut MemorySystem,
    cpu: usize,
}

impl<'a> SystemSink<'a> {
    /// A sink feeding processor `cpu` of `system`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `cpu` at first access.
    pub fn new(system: &'a mut MemorySystem, cpu: usize) -> Self {
        SystemSink { system, cpu }
    }
}

impl MemSink for SystemSink<'_> {
    fn instructions(&mut self, _n: u64) {}

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.system.access(self.cpu, kind, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;

    fn sample() -> Trace {
        let mut t = TraceSink::new();
        t.instructions(10);
        t.load(Addr(0x100));
        t.instructions(5);
        t.instructions(5);
        t.store(Addr(0x200));
        t.ifetch(Addr(0x300));
        t.into_trace()
    }

    #[test]
    fn capture_and_counts() {
        let t = sample();
        assert_eq!(t.refs(), 3);
        assert_eq!(t.instructions(), 20);
        // Adjacent instruction batches coalesce.
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let t = sample();
        let mut c = CountingSink::new();
        t.replay(&mut c);
        assert_eq!(c.instructions, 20);
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.ifetches, 1);
    }

    #[test]
    fn filter_keeps_instruction_batches() {
        let t = sample();
        let f = t.filtered(|kind, _| kind == AccessKind::Load);
        assert_eq!(f.refs(), 1);
        assert_eq!(f.instructions(), 20);
    }

    #[test]
    fn replay_into_a_memory_system() {
        let t = sample();
        let mut sys = MemorySystem::e6000(2).unwrap();
        {
            let mut sink = SystemSink::new(&mut sys, 1);
            t.replay(&mut sink);
        }
        assert_eq!(sys.stats().total_accesses(), 3);
    }

    #[test]
    fn record_replay_roundtrip_is_identity() {
        let t = sample();
        let mut re = TraceSink::new();
        t.replay(&mut re);
        assert_eq!(re.into_trace(), t);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        let before = a.len();
        a.extend_from(&b);
        assert_eq!(a.len(), before + b.len());
    }
}
