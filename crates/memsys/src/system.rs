//! The coherent multiprocessor memory system.
//!
//! Models the paper's hardware: per-processor split L1 I/D caches backed by
//! unified L2 caches kept coherent with a MOESI write-invalidate snooping
//! protocol over a shared bus. L1 data caches are write-through and
//! no-write-allocate (as on the UltraSPARC II), so coherence state lives
//! entirely in the L2s; L1s hold clean copies and are kept inclusive by
//! invalidation on L2 eviction and remote ownership requests.
//!
//! The same type models the Figure 16 chip-multiprocessor topologies by
//! letting several processors share each L2 ([`HierarchyConfig::cpus_per_l2`]).

use crate::addr::Addr;
use crate::bus::BusStats;
use crate::cache::Cache;
use crate::config::{ConfigError, HierarchyConfig};
use crate::linestats::LineStats;
use crate::protocol::{BusOp, LineState};
use crate::stats::{AccessKind, AccessOutcome, HitLevel, SystemStats};

/// A full multiprocessor cache hierarchy with snooping coherence.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    stats: SystemStats,
    bus: BusStats,
    linestats: Option<LineStats>,
}

impl MemorySystem {
    /// Builds an empty memory system from a validated configuration.
    pub fn new(cfg: HierarchyConfig) -> Self {
        let l2_count = cfg.l2_count();
        MemorySystem {
            cfg,
            l1i: (0..cfg.cpus).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..cfg.cpus).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: (0..l2_count).map(|_| Cache::new(cfg.l2)).collect(),
            stats: SystemStats::new(cfg.cpus),
            bus: BusStats::new(),
            linestats: None,
        }
    }

    /// Convenience constructor: an E6000-like system with `cpus` processors.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cpus` is zero.
    pub fn e6000(cpus: usize) -> Result<Self, ConfigError> {
        Ok(MemorySystem::new(HierarchyConfig::e6000(cpus)?))
    }

    /// The system's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Bus transaction statistics.
    pub fn bus_stats(&self) -> &BusStats {
        &self.bus
    }

    /// Enables per-line communication tracking (Figures 14/15). Costs one
    /// hash update per reference.
    pub fn enable_line_stats(&mut self) {
        if self.linestats.is_none() {
            self.linestats = Some(LineStats::new());
        }
    }

    /// The per-line tracker, if enabled.
    pub fn line_stats(&self) -> Option<&LineStats> {
        self.linestats.as_ref()
    }

    /// Resets all statistics (caches keep their contents — use this to end
    /// a warm-up phase and start a measurement window).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.bus = BusStats::new();
        if let Some(ls) = &mut self.linestats {
            ls.reset();
        }
    }

    /// Number of processors.
    pub fn cpus(&self) -> usize {
        self.cfg.cpus
    }

    /// Performs one memory reference by processor `cpu` and returns its
    /// outcome. This is the simulator's hot path.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn access(&mut self, cpu: usize, kind: AccessKind, addr: Addr) -> AccessOutcome {
        assert!(cpu < self.cfg.cpus, "cpu {cpu} out of range");
        if let Some(ls) = &mut self.linestats {
            ls.record_touch(addr.line());
        }
        let outcome = match kind {
            AccessKind::Ifetch => self.access_through(cpu, addr, /* store: */ false, true),
            AccessKind::Load => self.access_through(cpu, addr, false, false),
            AccessKind::Store => self.access_through(cpu, addr, true, false),
        };
        self.stats.record(cpu, kind, &outcome);
        if outcome.c2c {
            if let Some(ls) = &mut self.linestats {
                ls.record_c2c(addr.line());
            }
        }
        outcome
    }

    fn access_through(
        &mut self,
        cpu: usize,
        addr: Addr,
        store: bool,
        ifetch: bool,
    ) -> AccessOutcome {
        let group = self.cfg.l2_group(cpu);
        let l1 = if ifetch {
            &mut self.l1i[cpu]
        } else {
            &mut self.l1d[cpu]
        };
        let l1_hit = l1.touch(addr).is_some();

        if !store {
            if l1_hit {
                return AccessOutcome::hit(HitLevel::L1);
            }
            let outcome = self.read_l2(group, addr);
            self.fill_l1(cpu, addr, ifetch);
            return outcome;
        }

        // Stores: write-through L1 (update only if present, no allocate),
        // then act on the L2 line's coherence state.
        match self.l2[group].touch(addr) {
            Some(LineState::Modified) => {
                if l1_hit {
                    AccessOutcome::hit(HitLevel::L1)
                } else {
                    AccessOutcome::hit(HitLevel::L2)
                }
            }
            Some(LineState::Exclusive) => {
                // Silent E -> M upgrade, no bus traffic.
                self.l2[group].set_state(addr, LineState::Modified);
                if l1_hit {
                    AccessOutcome::hit(HitLevel::L1)
                } else {
                    AccessOutcome::hit(HitLevel::L2)
                }
            }
            Some(LineState::Shared) | Some(LineState::Owned) => {
                // Bus upgrade: invalidate all other copies.
                self.invalidate_remote(group, addr);
                self.l2[group].set_state(addr, LineState::Modified);
                self.bus.record(BusOp::Upgrade, false);
                AccessOutcome::hit(HitLevel::Upgrade)
            }
            Some(LineState::Invalid) | None => self.write_miss(cpu, group, addr),
        }
    }

    fn read_l2(&mut self, group: usize, addr: Addr) -> AccessOutcome {
        if self.l2[group].touch(addr).is_some() {
            return AccessOutcome::hit(HitLevel::L2);
        }
        // L2 read miss: GetS on the bus.
        let (supplied, any_remote) = self.snoop_read(group, addr);
        self.bus.record(BusOp::GetS, supplied);
        let fill_state = if any_remote {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        let writeback = self.fill_l2(group, addr, fill_state);
        AccessOutcome {
            level: if supplied {
                HitLevel::CacheToCache
            } else {
                HitLevel::Memory
            },
            c2c: supplied,
            writeback,
        }
    }

    fn write_miss(&mut self, cpu: usize, group: usize, addr: Addr) -> AccessOutcome {
        // GetX: take ownership, invalidating every other copy. A dirty
        // remote owner supplies the data (snoop copyback).
        let supplied = self.snoop_write(group, addr);
        self.bus.record(BusOp::GetX, supplied);
        let writeback = self.fill_l2(group, addr, LineState::Modified);
        // No-write-allocate L1: the store completes in the L2. But if the
        // L1 happens to hold a stale copy it was already updated via the
        // write-through path (touch above found it).
        let _ = cpu;
        AccessOutcome {
            level: if supplied {
                HitLevel::CacheToCache
            } else {
                HitLevel::Memory
            },
            c2c: supplied,
            writeback,
        }
    }

    /// Snoops a read: downgrade remote holders, report whether a dirty
    /// remote cache supplied the data and whether any remote copy exists.
    fn snoop_read(&mut self, requester: usize, addr: Addr) -> (bool, bool) {
        let mut supplied = false;
        let mut any = false;
        for g in 0..self.l2.len() {
            if g == requester {
                continue;
            }
            if let Some(state) = self.l2[g].probe(addr) {
                any = true;
                if state.supplies_data() {
                    supplied = true;
                }
                let next = state.after_remote_read();
                if next != state {
                    self.l2[g].set_state(addr, next);
                }
            }
        }
        (supplied, any)
    }

    /// Snoops a write: invalidate all remote copies (L2 and the inclusive
    /// L1s above them); returns whether a dirty remote owner supplied data.
    fn snoop_write(&mut self, requester: usize, addr: Addr) -> bool {
        let mut supplied = false;
        for g in 0..self.l2.len() {
            if g == requester {
                continue;
            }
            if let Some(state) = self.l2[g].probe(addr) {
                if state.supplies_data() {
                    supplied = true;
                }
                self.l2[g].invalidate(addr);
                self.invalidate_l1s_of_group(g, addr);
            }
        }
        supplied
    }

    /// Invalidates remote L2 + L1 copies (upgrade path).
    fn invalidate_remote(&mut self, requester: usize, addr: Addr) {
        for g in 0..self.l2.len() {
            if g == requester {
                continue;
            }
            if self.l2[g].invalidate(addr).is_some() {
                self.invalidate_l1s_of_group(g, addr);
            }
        }
    }

    fn invalidate_l1s_of_group(&mut self, group: usize, addr: Addr) {
        let first = group * self.cfg.cpus_per_l2;
        for cpu in first..first + self.cfg.cpus_per_l2 {
            self.l1i[cpu].invalidate(addr);
            self.l1d[cpu].invalidate(addr);
        }
    }

    /// Fills the group's L2, handling the victim: dirty victims write back
    /// to memory; all victims are invalidated in the group's L1s to keep
    /// inclusion. Returns whether a writeback occurred.
    fn fill_l2(&mut self, group: usize, addr: Addr, state: LineState) -> bool {
        let evicted = self.l2[group].insert(addr, state);
        match evicted {
            Some(victim) => {
                self.invalidate_l1s_of_group(group, victim.line.base());
                if victim.state.is_dirty() {
                    self.bus.record_writeback();
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Fills the referencing processor's L1 with a clean copy after a read.
    /// L1 victims are clean (write-through), so eviction is silent.
    fn fill_l1(&mut self, cpu: usize, addr: Addr, ifetch: bool) {
        let l1 = if ifetch {
            &mut self.l1i[cpu]
        } else {
            &mut self.l1d[cpu]
        };
        if l1.probe(addr).is_none() {
            let _ = l1.insert(addr, LineState::Shared);
        }
    }

    /// Total bytes of L2 capacity in the system (for reporting).
    pub fn total_l2_capacity(&self) -> u64 {
        self.cfg.l2.capacity * self.l2.len() as u64
    }

    /// The coherence state of `addr` in every L2, by group — diagnostics
    /// and invariant checking (e.g. the single-writer property).
    pub fn l2_states(&self, addr: Addr) -> Vec<LineState> {
        self.l2
            .iter()
            .map(|c| c.probe(addr).unwrap_or(LineState::Invalid))
            .collect()
    }

    /// Whether `addr` is valid in the given processor's L1s (I or D).
    pub fn l1_holds(&self, cpu: usize, addr: Addr) -> bool {
        self.l1i[cpu].probe(addr).is_some() || self.l1d[cpu].probe(addr).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn sys(cpus: usize) -> MemorySystem {
        MemorySystem::e6000(cpus).unwrap()
    }

    #[test]
    fn cold_read_misses_to_memory_then_hits_l1() {
        let mut m = sys(2);
        let o = m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::Memory);
        assert!(!o.c2c);
        let o = m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::L1);
    }

    #[test]
    fn second_cpu_read_of_clean_line_comes_from_memory() {
        // First reader holds E (clean): no snoop copyback, memory supplies.
        let mut m = sys(2);
        m.access(0, AccessKind::Load, Addr(0x1000));
        let o = m.access(1, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::Memory);
        assert!(!o.c2c);
    }

    #[test]
    fn read_of_remotely_dirty_line_is_cache_to_cache() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, Addr(0x1000)); // cpu0: M
        let o = m.access(1, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::CacheToCache);
        assert!(o.c2c);
        assert_eq!(m.bus_stats().snoop_copybacks, 1);
    }

    #[test]
    fn write_to_shared_line_is_upgrade_and_invalidates_reader() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, Addr(0x40)); // cpu0: E
        m.access(1, AccessKind::Load, Addr(0x40)); // both S
        let o = m.access(0, AccessKind::Store, Addr(0x40));
        assert_eq!(o.level, HitLevel::Upgrade);
        assert_eq!(m.bus_stats().upgrades, 1);
        // cpu1 must now miss (its copy was invalidated) and receive the
        // dirty data cache-to-cache.
        let o = m.access(1, AccessKind::Load, Addr(0x40));
        assert!(o.c2c, "invalidated reader re-fetches from dirty owner");
    }

    #[test]
    fn silent_e_to_m_upgrade_costs_no_bus_transaction() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, Addr(0x40)); // E
        let before = m.bus_stats().total_transactions();
        let o = m.access(0, AccessKind::Store, Addr(0x40));
        assert_ne!(o.level, HitLevel::Upgrade);
        assert_eq!(m.bus_stats().total_transactions(), before);
    }

    #[test]
    fn write_miss_of_remote_dirty_line_transfers_and_invalidates() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, Addr(0x80)); // cpu0: M
        let o = m.access(1, AccessKind::Store, Addr(0x80)); // GetX
        assert_eq!(o.level, HitLevel::CacheToCache);
        // cpu0's copy is gone: reading it back must go c2c from cpu1.
        let o = m.access(0, AccessKind::Load, Addr(0x80));
        assert!(o.c2c);
    }

    #[test]
    fn ping_pong_write_sharing_counts_c2c_per_bounce() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, Addr(0xc0));
        for i in 0..10 {
            let cpu = 1 - (i % 2);
            let o = m.access(cpu, AccessKind::Store, Addr(0xc0));
            assert!(o.c2c, "bounce {i} should be a cache-to-cache transfer");
        }
        assert_eq!(m.stats().total_c2c(), 10);
    }

    #[test]
    fn shared_l2_eliminates_coherence_traffic_within_group() {
        let mut b = HierarchyConfig::builder(2);
        let cfg = b.cpus_per_l2(2).build().unwrap();
        let mut m = MemorySystem::new(cfg);
        m.access(0, AccessKind::Store, Addr(0x100));
        let o = m.access(1, AccessKind::Load, Addr(0x100));
        assert_eq!(o.level, HitLevel::L2, "same-L2 neighbor hits shared cache");
        assert_eq!(m.stats().total_c2c(), 0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        // Tiny L2 to force evictions quickly.
        let mut b = HierarchyConfig::builder(1);
        b.l2(CacheConfig::new(512, 2, 64).unwrap());
        b.l1i(CacheConfig::new(256, 2, 64).unwrap());
        b.l1d(CacheConfig::new(256, 2, 64).unwrap());
        let mut m = MemorySystem::new(b.build().unwrap());
        // Dirty a line, then stream conflicting lines through its set.
        m.access(0, AccessKind::Store, Addr(0));
        let sets = 512 / (2 * 64);
        let stride = (sets * 64) as u64;
        for i in 1..=3u64 {
            m.access(0, AccessKind::Load, Addr(i * stride));
        }
        assert!(
            m.bus_stats().writebacks >= 1,
            "dirty victim must write back"
        );
    }

    #[test]
    fn l1_inclusion_after_l2_eviction() {
        let mut b = HierarchyConfig::builder(1);
        b.l2(CacheConfig::new(512, 2, 64).unwrap());
        b.l1i(CacheConfig::new(256, 2, 64).unwrap());
        b.l1d(CacheConfig::new(256, 2, 64).unwrap());
        let mut m = MemorySystem::new(b.build().unwrap());
        m.access(0, AccessKind::Load, Addr(0));
        let sets = 512 / (2 * 64);
        let stride = (sets * 64) as u64;
        // Evict line 0 from L2 via conflicting fills.
        for i in 1..=2u64 {
            m.access(0, AccessKind::Load, Addr(i * stride));
        }
        // The L1 copy must have been invalidated with it: this access
        // cannot be an L1 hit.
        let o = m.access(0, AccessKind::Load, Addr(0));
        assert_ne!(o.level, HitLevel::L1, "inclusion violated");
    }

    #[test]
    fn line_stats_track_touches_and_c2c() {
        let mut m = sys(2);
        m.enable_line_stats();
        m.access(0, AccessKind::Store, Addr(0x1000));
        m.access(1, AccessKind::Load, Addr(0x1000));
        m.access(0, AccessKind::Load, Addr(0x2000));
        let ls = m.line_stats().unwrap();
        assert_eq!(ls.touched_lines(), 2);
        assert_eq!(ls.total_c2c(), 1);
    }

    #[test]
    fn reset_stats_keeps_cache_contents() {
        let mut m = sys(1);
        m.access(0, AccessKind::Load, Addr(0x40));
        m.reset_stats();
        assert_eq!(m.stats().total_accesses(), 0);
        let o = m.access(0, AccessKind::Load, Addr(0x40));
        assert_eq!(o.level, HitLevel::L1, "warm cache survives stats reset");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_panics() {
        let mut m = sys(1);
        m.access(1, AccessKind::Load, Addr(0));
    }
}
