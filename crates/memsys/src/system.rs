//! The coherent multiprocessor memory system.
//!
//! Models the paper's hardware: per-processor split L1 I/D caches backed by
//! unified L2 caches kept coherent with a MOESI write-invalidate snooping
//! protocol over a shared bus. L1 data caches are write-through and
//! no-write-allocate (as on the UltraSPARC II), so coherence state lives
//! entirely in the L2s; L1s hold clean copies and are kept inclusive by
//! invalidation on L2 eviction and remote ownership requests.
//!
//! The same type models the Figure 16 chip-multiprocessor topologies by
//! letting several processors share each L2 ([`HierarchyConfig::cpus_per_l2`]).
//!
//! ## Hot path
//!
//! [`MemorySystem::access`] is the simulator's throughput ceiling, so it is
//! built around two structural optimizations that change no statistic:
//!
//! - **Single-lookup accesses.** Each address is decomposed into its
//!   `(set, tag)` key once per cache level ([`Cache::locate`]) and the key
//!   is threaded through every protocol step, so multi-step actions (touch
//!   then upgrade, miss then fill) never walk a set twice. Because every
//!   L2 shares one geometry, the *same* key drives all snoop probes.
//! - **An exact sharer directory** ([`Directory`], the duplicate-tag snoop
//!   filter). Instead of broadcasting every miss to every L2 group, the
//!   system consults a per-line bitset of groups holding a valid copy and
//!   probes only those. Broadcast probes of non-holders are no-ops, so the
//!   filter is bit-identical to broadcast MOESI; [`BusStats::snoops_sent`]
//!   and [`BusStats::snoops_filtered`] record its effectiveness, and
//!   [`MemorySystem::new_broadcast`] builds the unfiltered reference
//!   implementation the differential oracle checks against. Per-line L1
//!   presence masks play the same role one level up: inclusion
//!   invalidations skip processors that never held the line.

use probes::Histogram;

use crate::addr::Addr;
use crate::backend::{Backend, DramStats, MemoryBackend};
use crate::bus::BusStats;
use crate::cache::Cache;
use crate::config::{ConfigError, HierarchyConfig};
use crate::directory::Directory;
use crate::filter::MruFilter;
use crate::linestats::LineStats;
use crate::protocol::{BusOp, LineState};
use crate::stats::{AccessKind, AccessOutcome, HitLevel, SystemStats};

/// Caller-supplied per-outcome access costs for latency histogramming.
///
/// The memory system models *what happened* to each reference; how many
/// cycles that costs is the CPU model's business (`simcpu::LatencyTable`),
/// so the costs arrive from outside and this crate stays latency-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyCosts {
    /// Cycles for an L1 hit.
    pub l1: u64,
    /// Cycles for an L2 hit.
    pub l2: u64,
    /// Cycles for a bus upgrade (invalidate-only transaction).
    pub upgrade: u64,
    /// Cycles for a cache-to-cache transfer (snoop copyback).
    pub c2c: u64,
    /// Cycles for a memory fetch.
    pub memory: u64,
}

impl LatencyCosts {
    /// The cost of one outcome level.
    pub fn cost(&self, level: HitLevel) -> u64 {
        match level {
            HitLevel::L1 => self.l1,
            HitLevel::L2 => self.l2,
            HitLevel::Upgrade => self.upgrade,
            HitLevel::CacheToCache => self.c2c,
            HitLevel::Memory => self.memory,
        }
    }
}

/// One reference of a batched run (see [`MemorySystem::access_batch`]).
///
/// Kept to 16 bytes so a few thousand of them stream through the host
/// cache like the trace events they usually come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRef {
    /// Issuing processor.
    pub cpu: u32,
    /// Reference kind.
    pub kind: AccessKind,
    /// Byte address.
    pub addr: Addr,
}

/// A full multiprocessor cache hierarchy with snooping coherence.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    /// Exact sharer directory; `None` on broadcast systems and trivial
    /// topologies (a single L2 group has nobody to snoop).
    dir: Option<Directory>,
    /// Per-CPU MRU line filter short-circuiting repeated hits; `None` on
    /// reference implementations ([`MemorySystem::new_unfiltered`],
    /// [`MemorySystem::new_broadcast`]) and on geometries it cannot
    /// serve (see [`MruFilter::new`]).
    filter: Option<MruFilter>,
    /// Precomputed L2 geometry for directory keys (`tag << index_bits | set`
    /// is the raw line index every group agrees on).
    l2_index_bits: u32,
    l2_block_bits: u32,
    stats: SystemStats,
    bus: BusStats,
    linestats: Option<LineStats>,
    /// Access-latency histogram (costs supplied by the caller); `None`
    /// until [`MemorySystem::enable_latency_hist`].
    lat_hist: Option<(LatencyCosts, Histogram)>,
    /// The main-memory timing model consulted on every memory fill.
    backend: Backend,
    /// The requesting side's current cycle, fed by [`Self::set_now`] when
    /// the backend's timing depends on it ([`Self::needs_clock`]).
    now: u64,
}

impl MemorySystem {
    /// Builds an empty memory system from a validated configuration, with
    /// the sharer-directory snoop filter and L1 presence tracking enabled
    /// where the topology permits.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemorySystem::build(cfg, /* filtered: */ true, /* mru: */ true)
    }

    /// Builds the broadcast reference implementation: every bus
    /// transaction probes every remote L2, and inclusion invalidations
    /// visit every processor of a group — the pre-filter behavior, kept as
    /// the differential oracle for the snoop filter's exactness claim.
    /// No MRU line filter either: this is the ground truth everything
    /// else must match.
    pub fn new_broadcast(cfg: HierarchyConfig) -> Self {
        MemorySystem::build(cfg, false, false)
    }

    /// Builds the system with the sharer directory but *without* the MRU
    /// line filter: every reference walks the full hierarchy. This is the
    /// reference implementation the filter's differential oracle
    /// (`tests/mru_filter.rs`) compares against — one knob away from
    /// [`MemorySystem::new`], so any divergence indicts the filter alone.
    pub fn new_unfiltered(cfg: HierarchyConfig) -> Self {
        MemorySystem::build(cfg, true, false)
    }

    fn build(cfg: HierarchyConfig, filtered: bool, mru: bool) -> Self {
        let l2_count = cfg.l2_count();
        // Presence masks index CPUs within a group by bit; the directory
        // indexes groups by bit. Either falls back to exhaustive loops
        // (broadcast) where it cannot help — presence for private L2s
        // (the loop is one cpu) or more sharers than a u64 tracks —
        // without affecting results.
        let track_presence = filtered && cfg.cpus_per_l2 > 1 && cfg.cpus_per_l2 <= 64;
        let dir = (filtered && l2_count > 1 && l2_count <= Directory::MAX_GROUPS)
            .then(|| Directory::new(l2_count, cfg.l2.sets() as usize, cfg.l2.ways as usize));
        MemorySystem {
            cfg,
            l1i: (0..cfg.cpus).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..cfg.cpus).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: (0..l2_count)
                .map(|_| {
                    if track_presence {
                        Cache::with_presence(cfg.l2)
                    } else {
                        Cache::new(cfg.l2)
                    }
                })
                .collect(),
            dir,
            filter: mru.then(|| MruFilter::new(&cfg)).flatten(),
            l2_index_bits: cfg.l2.sets().trailing_zeros(),
            l2_block_bits: cfg.l2.block_bits(),
            stats: SystemStats::new(cfg.cpus),
            bus: BusStats::new(),
            linestats: None,
            lat_hist: None,
            backend: Backend::from_config(&cfg.memory),
            now: 0,
        }
    }

    /// Convenience constructor: an E6000-like system with `cpus` processors.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cpus` is zero.
    pub fn e6000(cpus: usize) -> Result<Self, ConfigError> {
        Ok(MemorySystem::new(HierarchyConfig::e6000(cpus)?))
    }

    /// The system's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Whether the sharer-directory snoop filter is active.
    pub fn snoop_filter_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Whether the per-CPU MRU line filter is active.
    pub fn mru_filter_enabled(&self) -> bool {
        self.filter.is_some()
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Bus transaction statistics.
    pub fn bus_stats(&self) -> &BusStats {
        &self.bus
    }

    /// Enables per-line communication tracking (Figures 14/15). Costs one
    /// hash update per reference.
    pub fn enable_line_stats(&mut self) {
        if self.linestats.is_none() {
            self.linestats = Some(LineStats::new());
        }
    }

    /// The per-line tracker, if enabled.
    pub fn line_stats(&self) -> Option<&LineStats> {
        self.linestats.as_ref()
    }

    /// Enables access-latency histogramming: every reference records the
    /// supplied cost of its hit level into a log2-bucketed histogram.
    /// Costs one array increment per reference.
    pub fn enable_latency_hist(&mut self, costs: LatencyCosts) {
        self.lat_hist = Some((costs, Histogram::new()));
    }

    /// The access-latency histogram, if enabled.
    pub fn latency_hist(&self) -> Option<&Histogram> {
        self.lat_hist.as_ref().map(|(_, h)| h)
    }

    /// Whether the memory backend's timing depends on request arrival
    /// times. When `true`, drive [`Self::set_now`] with the requesting
    /// processor's cycle before each [`Self::access`]; when `false`
    /// (flat backends) the clock plumbing can be skipped entirely.
    pub fn needs_clock(&self) -> bool {
        self.backend.needs_clock()
    }

    /// Advances the memory backend's notion of the requester-side clock.
    /// Non-monotonic values are fine (interleaved processor clocks):
    /// backends only ever move forward.
    #[inline]
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// The DRAM backend's event counters, if that backend is configured.
    pub fn dram_stats(&self) -> Option<&DramStats> {
        self.backend.dram_stats()
    }

    /// The DRAM backend's per-fill latency histogram, if kept.
    pub fn dram_queue_hist(&self) -> Option<&Histogram> {
        self.backend.queue_hist()
    }

    /// Drains the memory backend's buffered queue-stall episodes
    /// `(start, end)` for the run-observatory timeline. Empty for
    /// backends without a request queue.
    pub fn take_dram_stall_episodes(&mut self) -> Vec<(u64, u64)> {
        self.backend.take_stall_episodes()
    }

    /// Resets all statistics (caches keep their contents — use this to end
    /// a warm-up phase and start a measurement window).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.bus = BusStats::new();
        if let Some(ls) = &mut self.linestats {
            ls.reset();
        }
        if let Some((_, h)) = &mut self.lat_hist {
            *h = Histogram::new();
        }
        if let Some(f) = &mut self.filter {
            f.clear();
        }
        self.backend.reset_stats();
    }

    /// Number of processors.
    pub fn cpus(&self) -> usize {
        self.cfg.cpus
    }

    /// The directory key for an L2 `(set, tag)` pair: the raw line index,
    /// identical across groups because all L2s share one geometry.
    #[inline]
    fn l2_line_key(&self, set: usize, tag: u64) -> u64 {
        (tag << self.l2_index_bits) | set as u64
    }

    /// Starts the long memory fetches a future `access(cpu, kind, addr)`
    /// will depend on — the referencing L1's set words, the group's L2
    /// set words, and the line's sharer-directory slot — without
    /// changing any state.
    ///
    /// `access` is latency-bound, not bandwidth-bound: each reference
    /// chases two or three *dependent* loads into multi-megabyte tables
    /// (set words, then directory), and nothing inside a single call can
    /// overlap the first of them. A trace-driven caller, though, knows
    /// its future references; warming a handful of records ahead of the
    /// replay cursor lets those fetches proceed concurrently across
    /// accesses, which is worth more than any single-access tuning. Both
    /// the `bench_memsys` example and the trace-replay path drive the
    /// system this way. Purely a hint: skipping it, or warming addresses
    /// that are never accessed, affects no statistic.
    ///
    /// Unlike the access path's own entry prefetches (which *must* run,
    /// so they use discarded real loads), warming uses non-binding
    /// prefetch instructions: a hint issued several records early has
    /// time to complete when it lands, and when it doesn't (the page
    /// translation missed, or the guess was wasted) it costs nothing —
    /// binding loads here were measured to give back more in retire
    /// pressure than their warming won.
    pub fn warm(&self, cpu: usize, kind: AccessKind, addr: Addr) {
        // A reference the MRU filter will short-circuit never touches
        // the hierarchy's metadata — hinting it would only waste
        // bandwidth. The prediction can go stale (an invalidation may
        // erase the entry before the reference issues), but a wrong
        // skip costs one cold metadata fetch and nothing else: warming
        // is hint-only either way.
        if let Some(f) = &self.filter {
            let fast = match kind {
                AccessKind::Ifetch => f.lookup_load(cpu, true, addr),
                AccessKind::Load => f.lookup_load(cpu, false, addr),
                AccessKind::Store => f.lookup_store(cpu, self.cfg.l2_group(cpu), addr).is_some(),
            };
            if fast {
                return;
            }
        }
        let l1 = match kind {
            AccessKind::Ifetch => &self.l1i[cpu],
            _ => &self.l1d[cpu],
        };
        let (l1_set, _) = l1.locate(addr);
        l1.hint_set(l1_set);
        let group = self.cfg.l2_group(cpu);
        let (set, _) = self.l2[group].locate(addr);
        self.l2[group].hint_set(set);
        if let Some(dir) = &self.dir {
            dir.hint(addr.0 >> self.l2_block_bits);
        }
    }

    /// Performs one memory reference by processor `cpu` and returns its
    /// outcome. This is the simulator's hot path.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn access(&mut self, cpu: usize, kind: AccessKind, addr: Addr) -> AccessOutcome {
        assert!(cpu < self.cfg.cpus, "cpu {cpu} out of range");
        // MRU-filter fast path: a recorded repeated hit resolves here
        // without walking the hierarchy. The filter's invariants (see
        // `crate::filter`) guarantee the skipped walk would have been an
        // architectural no-op, so only the bookkeeping every access pays
        // — line stats, system stats, the latency histogram — runs.
        if let Some(f) = &self.filter {
            let level = match kind {
                AccessKind::Ifetch if f.lookup_load(cpu, true, addr) => Some(HitLevel::L1),
                AccessKind::Load if f.lookup_load(cpu, false, addr) => Some(HitLevel::L1),
                AccessKind::Store => f.lookup_store(cpu, self.cfg.l2_group(cpu), addr),
                _ => None,
            };
            if let Some(level) = level {
                let outcome = AccessOutcome::hit(level);
                if let Some(ls) = &mut self.linestats {
                    ls.record_touch(addr.line());
                }
                self.stats.record(cpu, kind, &outcome);
                if let Some((costs, h)) = &mut self.lat_hist {
                    h.record(costs.cost(level));
                }
                return outcome;
            }
        }
        if let Some(ls) = &mut self.linestats {
            ls.record_touch(addr.line());
        }
        let outcome = match kind {
            AccessKind::Ifetch => self.access_through(cpu, addr, /* store: */ false, true),
            AccessKind::Load => self.access_through(cpu, addr, false, false),
            AccessKind::Store => self.access_through(cpu, addr, true, false),
        };
        self.stats.record(cpu, kind, &outcome);
        if let Some((costs, h)) = &mut self.lat_hist {
            h.record(
                outcome
                    .mem_cycles
                    .unwrap_or_else(|| costs.cost(outcome.level)),
            );
        }
        if outcome.c2c {
            if let Some(ls) = &mut self.linestats {
                ls.record_c2c(addr.line());
            }
        }
        outcome
    }

    /// Performs a run of references in order, warming each one a few
    /// records ahead of its issue point (the lookahead-replay structure
    /// [`Self::warm`] describes, packaged so every batched caller gets it
    /// for free instead of hand-rolling a warming ring).
    ///
    /// `each(i, outcome)` runs after reference `i` completes, exactly as
    /// if the caller had invoked [`Self::access`] itself; returning
    /// `Some(now)` advances the backend clock ([`Self::set_now`]) before
    /// reference `i + 1` issues, which is how clocked (DRAM) callers
    /// thread per-reference timestamps through a batch. The clock for
    /// reference 0 is whatever the caller last set.
    ///
    /// Bit-identical to the scalar loop by construction: warming is
    /// hint-only and the issue order is the slice order.
    ///
    /// # Panics
    ///
    /// Panics if any reference's `cpu` is out of range.
    pub fn access_batch<F>(&mut self, refs: &[BatchRef], mut each: F)
    where
        F: FnMut(usize, &AccessOutcome) -> Option<u64>,
    {
        /// Records the warm cursor keeps ahead of the issue cursor —
        /// enough lead for a metadata fetch to land; hints are free, so
        /// the exact depth is uncritical.
        const LOOKAHEAD: usize = 8;
        for r in refs.iter().take(LOOKAHEAD) {
            self.warm(r.cpu as usize, r.kind, r.addr);
        }
        for i in 0..refs.len() {
            if let Some(r) = refs.get(i + LOOKAHEAD) {
                self.warm(r.cpu as usize, r.kind, r.addr);
            }
            let r = refs[i];
            let outcome = self.access(r.cpu as usize, r.kind, r.addr);
            if let Some(now) = each(i, &outcome) {
                self.set_now(now);
            }
        }
    }

    fn access_through(
        &mut self,
        cpu: usize,
        addr: Addr,
        store: bool,
        ifetch: bool,
    ) -> AccessOutcome {
        let group = self.cfg.l2_group(cpu);
        // Start the two long fetches of this access — the group's L2 set
        // words and (on filtered systems) the line's directory slot —
        // before the L1 probe, so they overlap it instead of following it.
        let (set, tag) = self.l2[group].locate(addr);
        self.l2[group].prefetch_set(set);
        if let Some(dir) = &self.dir {
            dir.prefetch(addr.0 >> self.l2_block_bits);
        }

        if !store {
            let l1 = if ifetch {
                &mut self.l1i[cpu]
            } else {
                &mut self.l1d[cpu]
            };
            let (l1_set, l1_tag) = l1.locate(addr);
            if l1.touch_at(l1_set, l1_tag).is_some() {
                if let Some(f) = &mut self.filter {
                    f.note_load(cpu, ifetch, addr);
                }
                return AccessOutcome::hit(HitLevel::L1);
            }
            let outcome = self.read_l2(group, addr, set, tag);
            // The line is now MRU in the group's L2 (hit-promoted or just
            // filled). Fill the L1 — the touch above proved it absent, so
            // insert directly, no probe — and mark this cpu present.
            let l1 = if ifetch {
                &mut self.l1i[cpu]
            } else {
                &mut self.l1d[cpu]
            };
            let _ = l1.insert_at(l1_set, l1_tag, LineState::Shared);
            let bit = 1u64 << (cpu - group * self.cfg.cpus_per_l2);
            self.l2[group].or_presence_mru(set, tag, bit);
            if let Some(f) = &mut self.filter {
                f.note_load(cpu, ifetch, addr);
            }
            return outcome;
        }

        // Stores: write-through L1 (update only if present, no allocate),
        // then act on the L2 line's coherence state. A touch hit leaves
        // the line MRU, so the E→M and S/O→M rewrites are O(1).
        //
        // Every store branch touches the group's L2 (a promote at least),
        // so dirty filter entries stamped before this access can no
        // longer prove their lines MRU: bump the epoch first, then stamp
        // the new entry with the bumped value once the path completes.
        if let Some(f) = &mut self.filter {
            f.bump_epoch(group);
        }
        let l1_hit = self.l1d[cpu].touch(addr).is_some();
        let outcome = match self.l2[group].touch_at(set, tag) {
            Some(LineState::Modified) => {
                if l1_hit {
                    AccessOutcome::hit(HitLevel::L1)
                } else {
                    AccessOutcome::hit(HitLevel::L2)
                }
            }
            Some(LineState::Exclusive) => {
                // Silent E -> M upgrade, no bus traffic.
                self.l2[group].set_state_mru(set, tag, LineState::Modified);
                if self.dir.is_some() {
                    let key = self.l2_line_key(set, tag);
                    self.dir.as_mut().expect("filtered").set_owner(key, group);
                }
                if l1_hit {
                    AccessOutcome::hit(HitLevel::L1)
                } else {
                    AccessOutcome::hit(HitLevel::L2)
                }
            }
            Some(LineState::Shared) | Some(LineState::Owned) => {
                // Bus upgrade: invalidate all other copies. The snoop
                // updates the directory too (requester becomes sole
                // sharer and owner).
                self.invalidate_remote(group, addr, set, tag);
                self.l2[group].set_state_mru(set, tag, LineState::Modified);
                self.bus.record(BusOp::Upgrade, false);
                AccessOutcome::hit(HitLevel::Upgrade)
            }
            Some(LineState::Invalid) | None => self.write_miss(group, addr, set, tag),
        };
        // Whatever branch ran, the line is now Modified and MRU in the
        // group's L2; record the store entry under the current epoch.
        if let Some(f) = &mut self.filter {
            f.note_store(cpu, group, addr, l1_hit);
        }
        outcome
    }

    fn read_l2(&mut self, group: usize, addr: Addr, set: usize, tag: u64) -> AccessOutcome {
        // Both arms perturb the group's L2 MRU order (promote or fill):
        // older dirty filter entries lose their claim.
        if let Some(f) = &mut self.filter {
            f.bump_epoch(group);
        }
        if self.l2[group].touch_at(set, tag).is_some() {
            return AccessOutcome::hit(HitLevel::L2);
        }
        // L2 read miss: GetS on the bus.
        self.prefetch_victim_dir(group, set);
        let (supplied, any_remote) = self.snoop_read(group, set, tag);
        self.bus.record(BusOp::GetS, supplied);
        let fill_state = if any_remote {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        let writeback = self.fill_l2(group, set, tag, fill_state);
        AccessOutcome {
            level: if supplied {
                HitLevel::CacheToCache
            } else {
                HitLevel::Memory
            },
            c2c: supplied,
            writeback,
            mem_cycles: if supplied {
                None
            } else {
                self.backend.fetch(addr, self.now)
            },
        }
    }

    fn write_miss(&mut self, group: usize, addr: Addr, set: usize, tag: u64) -> AccessOutcome {
        // GetX: take ownership, invalidating every other copy. A dirty
        // remote owner supplies the data (snoop copyback). No-write-allocate
        // L1: the store completes in the L2 (a stale L1 copy was already
        // updated via the write-through touch).
        self.prefetch_victim_dir(group, set);
        let supplied = self.snoop_write(group, addr, set, tag);
        self.bus.record(BusOp::GetX, supplied);
        let writeback = self.fill_l2(group, set, tag, LineState::Modified);
        AccessOutcome {
            level: if supplied {
                HitLevel::CacheToCache
            } else {
                HitLevel::Memory
            },
            c2c: supplied,
            writeback,
            mem_cycles: if supplied {
                None
            } else {
                self.backend.fetch(addr, self.now)
            },
        }
    }

    /// Starts fetching the directory slot of the line the coming
    /// [`Self::fill_l2`] will evict from `(group, set)`, so the victim's
    /// `remove_sharer` — a second random table line, unrelated to the one
    /// the access-entry prefetch warmed — overlaps with the snoop instead
    /// of stalling the fill. A hint only; no architectural effect.
    #[inline]
    fn prefetch_victim_dir(&self, group: usize, set: usize) {
        if let Some(dir) = &self.dir {
            if let Some(victim) = self.l2[group].victim_line_index(set) {
                dir.prefetch(victim);
            }
        }
    }

    /// Snoops a read: downgrade remote holders, report whether a dirty
    /// remote cache supplied the data and whether any remote copy exists.
    ///
    /// On filtered systems this also registers the requester's imminent
    /// fill: reading the sharer set and adding the requester is one fused
    /// directory access ([`Directory::fetch_and_add`]), since a separate
    /// update would touch the very same entry again.
    fn snoop_read(&mut self, requester: usize, set: usize, tag: u64) -> (bool, bool) {
        let remote = (self.l2.len() - 1) as u64;
        let mut supplied = false;
        if self.dir.is_some() {
            let key = self.l2_line_key(set, tag);
            let sharers = self
                .dir
                .as_mut()
                .expect("filtered")
                .fetch_and_add(key, requester);
            // The requester just missed; an exact directory cannot list
            // it as a prior sharer.
            debug_assert_eq!(sharers & (1 << requester), 0, "missed line has own bit");
            let count = u64::from(sharers.count_ones());
            self.bus.record_snoops(count, remote - count);
            let mut rest = sharers;
            while rest != 0 {
                let g = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let state = self.l2[g]
                    .update_at(set, tag, LineState::after_remote_read)
                    .expect("directory sharer must hold the line");
                if state.supplies_data() {
                    supplied = true;
                }
                // The sharer's copy was (possibly) downgraded M→O/E→S:
                // its CPUs' dirty filter entries must die, but their L1
                // copies — and load entries — survive a remote read.
                if let Some(f) = &mut self.filter {
                    f.downgrade_line(g, key);
                }
            }
            (supplied, sharers != 0)
        } else {
            self.bus.record_snoops(remote, 0);
            let line = self.l2_line_key(set, tag);
            let mut any = false;
            for g in 0..self.l2.len() {
                if g == requester {
                    continue;
                }
                if let Some(state) = self.l2[g].update_at(set, tag, LineState::after_remote_read) {
                    any = true;
                    if state.supplies_data() {
                        supplied = true;
                    }
                    if let Some(f) = &mut self.filter {
                        f.downgrade_line(g, line);
                    }
                }
            }
            (supplied, any)
        }
    }

    /// Snoops a write: invalidate all remote copies (L2 and the inclusive
    /// L1s above them); returns whether a dirty remote owner supplied data.
    ///
    /// On filtered systems the directory transition is one fused access
    /// ([`Directory::take_exclusive`]): the prior sharer set comes back
    /// for the invalidation loop and the entry is left naming the
    /// requester as sole sharer and owner — no per-remote removals, no
    /// separate fill-side update.
    fn snoop_write(&mut self, requester: usize, addr: Addr, set: usize, tag: u64) -> bool {
        let remote = (self.l2.len() - 1) as u64;
        let mut supplied = false;
        if self.dir.is_some() {
            let key = self.l2_line_key(set, tag);
            let sharers = self
                .dir
                .as_mut()
                .expect("filtered")
                .take_exclusive(key, requester);
            debug_assert_eq!(sharers & (1 << requester), 0, "missed line has own bit");
            let count = u64::from(sharers.count_ones());
            self.bus.record_snoops(count, remote - count);
            let mut rest = sharers;
            while rest != 0 {
                let g = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let (state, presence) = self.l2[g]
                    .invalidate_at(set, tag)
                    .expect("directory sharer must hold the line");
                if state.supplies_data() {
                    supplied = true;
                }
                self.invalidate_l1s_of_group(g, addr, presence);
            }
        } else {
            self.bus.record_snoops(remote, 0);
            for g in 0..self.l2.len() {
                if g == requester {
                    continue;
                }
                if let Some((state, _)) = self.l2[g].invalidate_at(set, tag) {
                    if state.supplies_data() {
                        supplied = true;
                    }
                    self.invalidate_l1s_of_group(g, addr, u64::MAX);
                }
            }
        }
        supplied
    }

    /// Invalidates remote L2 + L1 copies (upgrade path). Unlike the miss
    /// snoops, the requester holds the line here, so its directory bit is
    /// legitimately set and masked off the invalidation set; the same
    /// fused [`Directory::take_exclusive`] access leaves the entry
    /// correct (requester sole sharer, now the owner).
    fn invalidate_remote(&mut self, requester: usize, addr: Addr, set: usize, tag: u64) {
        let remote = (self.l2.len() - 1) as u64;
        if self.dir.is_some() {
            let key = self.l2_line_key(set, tag);
            let prior = self
                .dir
                .as_mut()
                .expect("filtered")
                .take_exclusive(key, requester);
            debug_assert_ne!(prior & (1 << requester), 0, "upgrading holder not a sharer");
            let sharers = prior & !(1 << requester);
            let count = u64::from(sharers.count_ones());
            self.bus.record_snoops(count, remote - count);
            let mut rest = sharers;
            while rest != 0 {
                let g = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let (_, presence) = self.l2[g]
                    .invalidate_at(set, tag)
                    .expect("directory sharer must hold the line");
                self.invalidate_l1s_of_group(g, addr, presence);
            }
        } else {
            self.bus.record_snoops(remote, 0);
            for g in 0..self.l2.len() {
                if g == requester {
                    continue;
                }
                if self.l2[g].invalidate_at(set, tag).is_some() {
                    self.invalidate_l1s_of_group(g, addr, u64::MAX);
                }
            }
        }
    }

    /// Invalidates `addr` in the L1s of one group's processors, guided by
    /// the L2 line's presence mask: only CPUs whose bit is set are
    /// visited (`u64::MAX` — tracking disabled — visits all of them, the
    /// broadcast behavior). The mask may over-approximate (bits survive
    /// silent L1 evictions); it never under-approximates, which is what
    /// inclusion needs.
    fn invalidate_l1s_of_group(&mut self, group: usize, addr: Addr, mask: u64) {
        // The line is leaving the group's L2 (snoop invalidation or
        // eviction): every filter entry for it dies with it. This must
        // sweep all of the group's CPUs regardless of the presence mask —
        // a dirty entry exists without L1 residency, so `mask` (even 0)
        // does not bound where entries live.
        if let Some(f) = &mut self.filter {
            f.clear_line(group, addr.0 >> self.l2_block_bits);
        }
        if mask == 0 {
            return;
        }
        let per = self.cfg.cpus_per_l2;
        let first = group * per;
        let (si, ti) = self.l1i[first].locate(addr);
        let (sd, td) = self.l1d[first].locate(addr);
        if mask == u64::MAX {
            for cpu in first..first + per {
                let _ = self.l1i[cpu].invalidate_at(si, ti);
                let _ = self.l1d[cpu].invalidate_at(sd, td);
            }
        } else {
            debug_assert_eq!(mask >> (per - 1) >> 1, 0, "presence bit beyond the group");
            let mut rest = mask;
            while rest != 0 {
                let cpu = first + rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let _ = self.l1i[cpu].invalidate_at(si, ti);
                let _ = self.l1d[cpu].invalidate_at(sd, td);
            }
        }
    }

    /// Fills the group's L2, handling the victim: dirty victims write back
    /// to memory; all victims are invalidated in the group's L1s to keep
    /// inclusion. Returns whether a writeback occurred.
    ///
    /// The fill side of the directory update already happened inside the
    /// preceding snoop's fused access; the victim's removal is the one
    /// residency change only this function sees.
    fn fill_l2(&mut self, group: usize, set: usize, tag: u64, state: LineState) -> bool {
        let evicted = self.l2[group].insert_at(set, tag, state);
        match evicted {
            Some(victim) => {
                if let Some(dir) = &mut self.dir {
                    dir.remove_sharer(victim.line.base().0 >> self.l2_block_bits, group);
                }
                self.invalidate_l1s_of_group(group, victim.line.base(), victim.presence);
                if victim.state.is_dirty() {
                    self.bus.record_writeback();
                    self.backend.writeback(victim.line.base(), self.now);
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Total bytes of L2 capacity in the system (for reporting).
    pub fn total_l2_capacity(&self) -> u64 {
        self.cfg.l2.capacity * self.l2.len() as u64
    }

    /// The coherence state of `addr` in every L2, by group — diagnostics
    /// and invariant checking (e.g. the single-writer property).
    pub fn l2_states(&self, addr: Addr) -> Vec<LineState> {
        self.l2
            .iter()
            .map(|c| c.probe(addr).unwrap_or(LineState::Invalid))
            .collect()
    }

    /// Whether `addr` is valid in the given processor's L1s (I or D).
    pub fn l1_holds(&self, cpu: usize, addr: Addr) -> bool {
        self.l1i[cpu].probe(addr).is_some() || self.l1d[cpu].probe(addr).is_some()
    }

    /// Audits the sharer directory against the ground truth of the L2
    /// contents: every tracked line's sharer bitset must equal the set of
    /// groups actually holding it valid, and the owner hint must name the
    /// group holding it dirty. O(total L2 capacity) — tests and
    /// diagnostics only. No-op on broadcast systems.
    ///
    /// # Panics
    ///
    /// Panics if the directory and the caches disagree.
    pub fn audit_directory(&self) {
        let Some(dir) = &self.dir else { return };
        let mut expected: std::collections::HashMap<u64, (u64, Option<usize>)> =
            std::collections::HashMap::new();
        for (g, l2) in self.l2.iter().enumerate() {
            for (line, state) in l2.resident() {
                let key = line.base().0 >> self.l2_block_bits;
                let e = expected.entry(key).or_insert((0, None));
                e.0 |= 1 << g;
                if state.is_dirty() {
                    assert!(e.1.is_none(), "two dirty copies of line {key:#x}");
                    e.1 = Some(g);
                }
            }
        }
        assert_eq!(
            dir.lines(),
            expected.len(),
            "directory tracks a different line population than the caches hold"
        );
        for (line, sharers, owner) in dir.iter() {
            let (want_sharers, want_owner) = expected.get(&line).copied().unwrap_or((0, None));
            assert_eq!(sharers, want_sharers, "sharer bitset wrong for {line:#x}");
            assert_eq!(owner, want_owner, "owner hint wrong for {line:#x}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn sys(cpus: usize) -> MemorySystem {
        MemorySystem::e6000(cpus).unwrap()
    }

    #[test]
    fn cold_read_misses_to_memory_then_hits_l1() {
        let mut m = sys(2);
        let o = m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::Memory);
        assert!(!o.c2c);
        let o = m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::L1);
    }

    #[test]
    fn second_cpu_read_of_clean_line_comes_from_memory() {
        // First reader holds E (clean): no snoop copyback, memory supplies.
        let mut m = sys(2);
        m.access(0, AccessKind::Load, Addr(0x1000));
        let o = m.access(1, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::Memory);
        assert!(!o.c2c);
    }

    #[test]
    fn read_of_remotely_dirty_line_is_cache_to_cache() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, Addr(0x1000)); // cpu0: M
        let o = m.access(1, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::CacheToCache);
        assert!(o.c2c);
        assert_eq!(m.bus_stats().snoop_copybacks, 1);
    }

    #[test]
    fn write_to_shared_line_is_upgrade_and_invalidates_reader() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, Addr(0x40)); // cpu0: E
        m.access(1, AccessKind::Load, Addr(0x40)); // both S
        let o = m.access(0, AccessKind::Store, Addr(0x40));
        assert_eq!(o.level, HitLevel::Upgrade);
        assert_eq!(m.bus_stats().upgrades, 1);
        // cpu1 must now miss (its copy was invalidated) and receive the
        // dirty data cache-to-cache.
        let o = m.access(1, AccessKind::Load, Addr(0x40));
        assert!(o.c2c, "invalidated reader re-fetches from dirty owner");
    }

    #[test]
    fn silent_e_to_m_upgrade_costs_no_bus_transaction() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, Addr(0x40)); // E
        let before = m.bus_stats().total_transactions();
        let o = m.access(0, AccessKind::Store, Addr(0x40));
        assert_ne!(o.level, HitLevel::Upgrade);
        assert_eq!(m.bus_stats().total_transactions(), before);
    }

    #[test]
    fn write_miss_of_remote_dirty_line_transfers_and_invalidates() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, Addr(0x80)); // cpu0: M
        let o = m.access(1, AccessKind::Store, Addr(0x80)); // GetX
        assert_eq!(o.level, HitLevel::CacheToCache);
        // cpu0's copy is gone: reading it back must go c2c from cpu1.
        let o = m.access(0, AccessKind::Load, Addr(0x80));
        assert!(o.c2c);
    }

    #[test]
    fn ping_pong_write_sharing_counts_c2c_per_bounce() {
        let mut m = sys(2);
        m.access(0, AccessKind::Store, Addr(0xc0));
        for i in 0..10 {
            let cpu = 1 - (i % 2);
            let o = m.access(cpu, AccessKind::Store, Addr(0xc0));
            assert!(o.c2c, "bounce {i} should be a cache-to-cache transfer");
        }
        assert_eq!(m.stats().total_c2c(), 10);
    }

    #[test]
    fn shared_l2_eliminates_coherence_traffic_within_group() {
        let mut b = HierarchyConfig::builder(2);
        let cfg = b.cpus_per_l2(2).build().unwrap();
        let mut m = MemorySystem::new(cfg);
        m.access(0, AccessKind::Store, Addr(0x100));
        let o = m.access(1, AccessKind::Load, Addr(0x100));
        assert_eq!(o.level, HitLevel::L2, "same-L2 neighbor hits shared cache");
        assert_eq!(m.stats().total_c2c(), 0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        // Tiny L2 to force evictions quickly.
        let mut b = HierarchyConfig::builder(1);
        b.l2(CacheConfig::new(512, 2, 64).unwrap());
        b.l1i(CacheConfig::new(256, 2, 64).unwrap());
        b.l1d(CacheConfig::new(256, 2, 64).unwrap());
        let mut m = MemorySystem::new(b.build().unwrap());
        // Dirty a line, then stream conflicting lines through its set.
        m.access(0, AccessKind::Store, Addr(0));
        let sets = 512 / (2 * 64);
        let stride = (sets * 64) as u64;
        for i in 1..=3u64 {
            m.access(0, AccessKind::Load, Addr(i * stride));
        }
        assert!(
            m.bus_stats().writebacks >= 1,
            "dirty victim must write back"
        );
    }

    #[test]
    fn l1_inclusion_after_l2_eviction() {
        let mut b = HierarchyConfig::builder(1);
        b.l2(CacheConfig::new(512, 2, 64).unwrap());
        b.l1i(CacheConfig::new(256, 2, 64).unwrap());
        b.l1d(CacheConfig::new(256, 2, 64).unwrap());
        let mut m = MemorySystem::new(b.build().unwrap());
        m.access(0, AccessKind::Load, Addr(0));
        let sets = 512 / (2 * 64);
        let stride = (sets * 64) as u64;
        // Evict line 0 from L2 via conflicting fills.
        for i in 1..=2u64 {
            m.access(0, AccessKind::Load, Addr(i * stride));
        }
        // The L1 copy must have been invalidated with it: this access
        // cannot be an L1 hit.
        let o = m.access(0, AccessKind::Load, Addr(0));
        assert_ne!(o.level, HitLevel::L1, "inclusion violated");
    }

    #[test]
    fn line_stats_track_touches_and_c2c() {
        let mut m = sys(2);
        m.enable_line_stats();
        m.access(0, AccessKind::Store, Addr(0x1000));
        m.access(1, AccessKind::Load, Addr(0x1000));
        m.access(0, AccessKind::Load, Addr(0x2000));
        let ls = m.line_stats().unwrap();
        assert_eq!(ls.touched_lines(), 2);
        assert_eq!(ls.total_c2c(), 1);
    }

    #[test]
    fn latency_hist_records_caller_supplied_costs() {
        let costs = LatencyCosts {
            l1: 1,
            l2: 10,
            upgrade: 20,
            c2c: 105,
            memory: 75,
        };
        let mut m = sys(2);
        m.enable_latency_hist(costs);
        m.access(0, AccessKind::Store, Addr(0x1000)); // memory (GetX miss)
        m.access(1, AccessKind::Load, Addr(0x1000)); // c2c
        m.access(1, AccessKind::Load, Addr(0x1000)); // L1 hit
        let h = m.latency_hist().unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 75 + 105 + 1);
        assert!(h.p99() >= 105, "slowest access dominates the tail");
        // A stats reset clears the histogram but keeps it enabled.
        m.reset_stats();
        let h = m.latency_hist().unwrap();
        assert!(h.is_empty());
        m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(m.latency_hist().unwrap().count(), 1);
    }

    #[test]
    fn reset_stats_keeps_cache_contents() {
        let mut m = sys(1);
        m.access(0, AccessKind::Load, Addr(0x40));
        m.reset_stats();
        assert_eq!(m.stats().total_accesses(), 0);
        let o = m.access(0, AccessKind::Load, Addr(0x40));
        assert_eq!(o.level, HitLevel::L1, "warm cache survives stats reset");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_panics() {
        let mut m = sys(1);
        m.access(1, AccessKind::Load, Addr(0));
    }

    #[test]
    fn filter_skips_uncontended_misses() {
        let mut m = sys(16);
        assert!(m.snoop_filter_enabled());
        // Nobody holds this line: the GetS probes zero remote L2s and the
        // filter absorbs all 15 would-be snoops.
        m.access(0, AccessKind::Load, Addr(0x4000));
        assert_eq!(m.bus_stats().snoops_sent, 0);
        assert_eq!(m.bus_stats().snoops_filtered, 15);
        // One actual sharer: exactly one probe goes out.
        m.access(1, AccessKind::Load, Addr(0x4000));
        assert_eq!(m.bus_stats().snoops_sent, 1);
        assert_eq!(m.bus_stats().snoops_filtered, 29);
        assert!(m.bus_stats().snoop_filter_rate() > 0.9);
        m.audit_directory();
    }

    #[test]
    fn broadcast_system_filters_nothing() {
        let mut m = MemorySystem::new_broadcast(HierarchyConfig::e6000(4).unwrap());
        assert!(!m.snoop_filter_enabled());
        m.access(0, AccessKind::Load, Addr(0x4000));
        m.access(1, AccessKind::Store, Addr(0x4000));
        assert_eq!(m.bus_stats().snoops_filtered, 0);
        assert_eq!(m.bus_stats().snoops_sent, 6);
        m.audit_directory(); // no-op, must not panic
    }

    #[test]
    fn directory_stays_exact_through_upgrades_and_evictions() {
        let mut b = HierarchyConfig::builder(4);
        b.l2(CacheConfig::new(512, 2, 64).unwrap());
        b.l1i(CacheConfig::new(256, 2, 64).unwrap());
        b.l1d(CacheConfig::new(256, 2, 64).unwrap());
        let mut m = MemorySystem::new(b.build().unwrap());
        // Share a line everywhere, upgrade it, then churn the set to force
        // evictions; the directory must match the caches at every stage.
        for cpu in 0..4 {
            m.access(cpu, AccessKind::Load, Addr(0x40));
        }
        m.audit_directory();
        m.access(2, AccessKind::Store, Addr(0x40));
        m.audit_directory();
        for i in 1..=6u64 {
            m.access(0, AccessKind::Load, Addr(0x40 + i * 256));
        }
        m.audit_directory();
    }

    #[test]
    fn flat_backend_defers_memory_cost() {
        let mut m = sys(1);
        assert!(!m.needs_clock());
        let o = m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(o.mem_cycles, None, "default backend defers to the table");
        assert!(m.dram_stats().is_none());
    }

    #[test]
    fn fixed_backend_stamps_memory_fills_only() {
        use crate::config::MemoryConfig;
        let mut b = HierarchyConfig::builder(2);
        b.memory(MemoryConfig::FlatFixed(75));
        let mut m = MemorySystem::new(b.build().unwrap());
        let o = m.access(0, AccessKind::Load, Addr(0x1000));
        assert_eq!(o.mem_cycles, Some(75));
        let o = m.access(0, AccessKind::Load, Addr(0x1000)); // L1 hit
        assert_eq!(o.mem_cycles, None);
        m.access(0, AccessKind::Store, Addr(0x2000)); // dirty it
        let o = m.access(1, AccessKind::Load, Addr(0x2000)); // c2c
        assert_eq!(o.level, HitLevel::CacheToCache);
        assert_eq!(o.mem_cycles, None, "cache-supplied data skips memory");
    }

    #[test]
    fn dram_backend_stamps_load_dependent_costs_and_counts() {
        use crate::config::{DramConfig, MemoryConfig};
        let mut b = HierarchyConfig::builder(1);
        b.memory(MemoryConfig::BankedDram(DramConfig::default()));
        let mut m = MemorySystem::new(b.build().unwrap());
        assert!(m.needs_clock());
        let mut now = 0;
        for i in 0..64u64 {
            m.set_now(now);
            let o = m.access(0, AccessKind::Load, Addr(0x10_0000 + i * 64));
            assert_eq!(o.level, HitLevel::Memory);
            assert!(o.mem_cycles.is_some(), "DRAM stamps every memory fill");
            now += 200;
        }
        let d = m.dram_stats().unwrap();
        assert_eq!(d.reads, 64);
        assert!(d.row_hits > 0, "sequential lines share rows");
        assert_eq!(m.dram_queue_hist().unwrap().count(), 64);
        // reset_stats clears the DRAM panel with everything else.
        m.reset_stats();
        assert_eq!(m.dram_stats().unwrap().reads, 0);
        assert!(m.dram_queue_hist().unwrap().is_empty());
    }

    #[test]
    fn presence_mask_limits_inclusion_invalidations() {
        // Shared L2 among 4 cpus: only cpu 3 reads the line, so only its
        // L1 may hold it; a remote write must still invalidate it.
        let mut b = HierarchyConfig::builder(8);
        b.cpus_per_l2(4);
        let mut m = MemorySystem::new(b.build().unwrap());
        m.access(3, AccessKind::Load, Addr(0x2000));
        assert!(m.l1_holds(3, Addr(0x2000)));
        m.access(4, AccessKind::Store, Addr(0x2000)); // remote group GetX
        assert!(!m.l1_holds(3, Addr(0x2000)), "inclusion invalidation lost");
        m.audit_directory();
    }
}
