//! Configuration for caches and cache hierarchies.

use std::fmt;

use crate::addr::LINE_BYTES;

/// Errors produced when validating a cache or hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A numeric parameter must be a power of two but was not.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The cache capacity is not divisible into `ways * block_bytes` sets.
    Indivisible {
        /// Total capacity in bytes.
        capacity: u64,
        /// Associativity.
        ways: u32,
        /// Block size in bytes.
        block: u64,
    },
    /// The processor count is not divisible by the sharing degree.
    BadSharing {
        /// Number of processors.
        cpus: usize,
        /// Processors per shared L2.
        per_cache: usize,
    },
    /// A memory-backend parameter is out of range (zero where at least
    /// one is required, or inconsistent timing).
    BadMemory {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::Indivisible {
                capacity,
                ways,
                block,
            } => write!(
                f,
                "capacity {capacity} B is not divisible by ways ({ways}) x block ({block} B)"
            ),
            ConfigError::BadSharing { cpus, per_cache } => write!(
                f,
                "cpu count {cpus} is not divisible by processors-per-cache {per_cache}"
            ),
            ConfigError::BadMemory { what, value } => {
                write!(f, "memory backend: {what} is invalid ({value})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of one set-associative cache.
///
/// The default corresponds to the paper's simulated configuration:
/// 4-way set-associative with 64-byte blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Block (line) size in bytes.
    pub block: u64,
}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is not a power of two or the
    /// capacity does not divide evenly into sets.
    pub fn new(capacity: u64, ways: u32, block: u64) -> Result<Self, ConfigError> {
        let cfg = CacheConfig {
            capacity,
            ways,
            block,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// A `capacity`-byte cache with the paper's 4-way/64-B geometry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than one 4-way set of 64-B blocks
    /// or not a power of two.
    pub fn paper_geometry(capacity: u64) -> Self {
        CacheConfig::new(capacity, 4, LINE_BYTES).expect("invalid paper-geometry capacity")
    }

    fn validate(&self) -> Result<(), ConfigError> {
        for (what, value) in [
            ("capacity", self.capacity),
            ("ways", self.ways as u64),
            ("block size", self.block),
        ] {
            if !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { what, value });
            }
        }
        let set_bytes = self.ways as u64 * self.block;
        if !self.capacity.is_multiple_of(set_bytes) || self.capacity < set_bytes {
            return Err(ConfigError::Indivisible {
                capacity: self.capacity,
                ways: self.ways,
                block: self.block,
            });
        }
        if (self.capacity / set_bytes) == 0 {
            return Err(ConfigError::Indivisible {
                capacity: self.capacity,
                ways: self.ways,
                block: self.block,
            });
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.ways as u64 * self.block)
    }

    /// Log2 of the block size.
    pub fn block_bits(&self) -> u32 {
        self.block.trailing_zeros()
    }
}

impl Default for CacheConfig {
    /// The paper's baseline L2: 1 MB, 4-way, 64-byte blocks.
    fn default() -> Self {
        CacheConfig {
            capacity: 1 << 20,
            ways: 4,
            block: LINE_BYTES,
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity;
        if cap >= 1 << 20 && cap.is_multiple_of(1 << 20) {
            write!(f, "{}MB/{}way/{}B", cap >> 20, self.ways, self.block)
        } else {
            write!(f, "{}KB/{}way/{}B", cap >> 10, self.ways, self.block)
        }
    }
}

/// Timing parameters of the banked-DRAM memory backend.
///
/// The model is a channels x banks DRAM with an open-row policy: a
/// request to a bank's open row pays `t_row_hit` cycles, any other row
/// pays `t_row_conflict` (precharge + activate + CAS). Each channel's
/// data bus moves one line per `channel_cycles`, which caps bandwidth,
/// and admits at most `queue_depth` outstanding requests — a full queue
/// backpressures the requester. All cycle values are processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Independent memory channels (power of two).
    pub channels: u32,
    /// Banks per channel (power of two).
    pub banks: u32,
    /// Consecutive cache lines per DRAM row (power of two) — the unit of
    /// open-row locality.
    pub row_lines: u32,
    /// Per-channel request-queue depth (>= 1).
    pub queue_depth: u32,
    /// Cycles for a request hitting the bank's open row.
    pub t_row_hit: u64,
    /// Cycles for a row conflict (precharge + activate + CAS).
    pub t_row_conflict: u64,
    /// Channel data-bus occupancy per line transfer (bandwidth cap).
    pub channel_cycles: u64,
}

impl Default for DramConfig {
    /// E6000-flavored defaults: unloaded row-hit latency below the flat
    /// 75-cycle model (the flat number folds queueing in), conflicts
    /// well above it, 2 KB rows, and enough banks that bandwidth — not
    /// bank availability — is the saturating resource.
    fn default() -> Self {
        DramConfig {
            channels: 2,
            banks: 8,
            row_lines: 32, // 2 KB rows of 64-B lines
            queue_depth: 8,
            t_row_hit: 60,
            t_row_conflict: 135,
            channel_cycles: 12,
        }
    }
}

impl DramConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 {
            return Err(ConfigError::BadMemory {
                what: "banks per channel (must be nonzero)",
                value: 0,
            });
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::BadMemory {
                what: "queue depth (must be nonzero)",
                value: 0,
            });
        }
        for (what, value) in [
            ("memory channels", self.channels as u64),
            ("banks per channel", self.banks as u64),
            ("row lines", self.row_lines as u64),
        ] {
            if !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { what, value });
            }
        }
        for (what, value) in [
            ("row-hit latency", self.t_row_hit),
            ("channel cycles", self.channel_cycles),
        ] {
            if value == 0 {
                return Err(ConfigError::BadMemory { what, value });
            }
        }
        if self.t_row_conflict < self.t_row_hit {
            return Err(ConfigError::BadMemory {
                what: "row-conflict latency (must be >= row-hit latency)",
                value: self.t_row_conflict,
            });
        }
        Ok(())
    }
}

/// Which memory backend sits below the L2s, and its parameters.
///
/// The default is the original flat model with the latency owned by the
/// CPU side (`simcpu::LatencyTable`), which keeps this crate
/// latency-agnostic and is bit-identical to the pre-backend behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryConfig {
    /// Constant-latency memory. `None` defers the cost to the caller's
    /// latency table (the historical behavior); `Some(cycles)` makes the
    /// backend supply that constant with every fill.
    #[default]
    Flat,
    /// Flat memory that stamps every fill with an explicit constant
    /// cost, exercising the backend-supplied-latency path end to end.
    FlatFixed(u64),
    /// The banked-DRAM timing model.
    BankedDram(DramConfig),
}

impl MemoryConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            MemoryConfig::Flat => Ok(()),
            MemoryConfig::FlatFixed(cycles) => {
                if *cycles == 0 {
                    return Err(ConfigError::BadMemory {
                        what: "flat memory latency",
                        value: 0,
                    });
                }
                Ok(())
            }
            MemoryConfig::BankedDram(d) => d.validate(),
        }
    }
}

/// Full hierarchy configuration for a multiprocessor memory system.
///
/// Models the E6000-style two-level hierarchy of the paper: per-processor
/// split L1 instruction/data caches, and L2 caches each shared by
/// `cpus_per_l2` processors (1 = private L2s, the paper's base case;
/// 2/4/8 reproduce the Figure 16 chip-multiprocessor topologies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of processors.
    pub cpus: usize,
    /// Per-processor L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-processor L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache (one per sharing group).
    pub l2: CacheConfig,
    /// How many processors share each L2 cache.
    pub cpus_per_l2: usize,
    /// The memory backend below the L2s.
    pub memory: MemoryConfig,
}

impl HierarchyConfig {
    /// E6000-like configuration: 16 KB L1I, 16 KB L1D, private 1 MB L2.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadSharing`] if `cpus == 0`.
    pub fn e6000(cpus: usize) -> Result<Self, ConfigError> {
        HierarchyConfig::builder(cpus).build()
    }

    /// Starts building a hierarchy for `cpus` processors with E6000-like
    /// defaults.
    pub fn builder(cpus: usize) -> HierarchyBuilder {
        HierarchyBuilder {
            cpus,
            l1i: CacheConfig::new(16 << 10, 2, LINE_BYTES).expect("static L1I config"),
            l1d: CacheConfig::new(16 << 10, 2, LINE_BYTES).expect("static L1D config"),
            l2: CacheConfig::default(),
            cpus_per_l2: 1,
            memory: MemoryConfig::default(),
        }
    }

    /// Number of L2 caches in the system.
    pub fn l2_count(&self) -> usize {
        self.cpus / self.cpus_per_l2
    }

    /// The L2 group (cache index) serving processor `cpu`.
    pub fn l2_group(&self, cpu: usize) -> usize {
        cpu / self.cpus_per_l2
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.cpus == 0 || self.cpus_per_l2 == 0 || !self.cpus.is_multiple_of(self.cpus_per_l2) {
            return Err(ConfigError::BadSharing {
                cpus: self.cpus,
                per_cache: self.cpus_per_l2,
            });
        }
        self.memory.validate()
    }
}

/// Builder for [`HierarchyConfig`].
#[derive(Debug, Clone)]
pub struct HierarchyBuilder {
    cpus: usize,
    l1i: CacheConfig,
    l1d: CacheConfig,
    l2: CacheConfig,
    cpus_per_l2: usize,
    memory: MemoryConfig,
}

impl HierarchyBuilder {
    /// Sets the L1 instruction-cache configuration.
    pub fn l1i(&mut self, cfg: CacheConfig) -> &mut Self {
        self.l1i = cfg;
        self
    }

    /// Sets the L1 data-cache configuration.
    pub fn l1d(&mut self, cfg: CacheConfig) -> &mut Self {
        self.l1d = cfg;
        self
    }

    /// Sets the L2 configuration.
    pub fn l2(&mut self, cfg: CacheConfig) -> &mut Self {
        self.l2 = cfg;
        self
    }

    /// Sets how many processors share each L2 (1 = private).
    pub fn cpus_per_l2(&mut self, n: usize) -> &mut Self {
        self.cpus_per_l2 = n;
        self
    }

    /// Selects the memory backend below the L2s.
    pub fn memory(&mut self, cfg: MemoryConfig) -> &mut Self {
        self.memory = cfg;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid sharing degrees.
    pub fn build(&self) -> Result<HierarchyConfig, ConfigError> {
        let cfg = HierarchyConfig {
            cpus: self.cpus,
            l1i: self.l1i,
            l1d: self.l1d,
            l2: self.l2,
            cpus_per_l2: self.cpus_per_l2,
            memory: self.memory,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_has_expected_sets() {
        let c = CacheConfig::new(1 << 20, 4, 64).unwrap();
        assert_eq!(c.sets(), (1 << 20) / (4 * 64));
        assert_eq!(c.block_bits(), 6);
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(matches!(
            CacheConfig::new(3 << 10, 4, 64),
            Err(ConfigError::NotPowerOfTwo { .. })
        ));
        assert!(matches!(
            CacheConfig::new(1 << 20, 3, 64),
            Err(ConfigError::NotPowerOfTwo { .. })
        ));
        assert!(matches!(
            CacheConfig::new(1 << 20, 4, 48),
            Err(ConfigError::NotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn capacity_smaller_than_one_set_rejected() {
        assert!(matches!(
            CacheConfig::new(128, 4, 64),
            Err(ConfigError::Indivisible { .. })
        ));
    }

    #[test]
    fn default_is_paper_l2() {
        let c = CacheConfig::default();
        assert_eq!(c.capacity, 1 << 20);
        assert_eq!(c.ways, 4);
        assert_eq!(c.block, 64);
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(CacheConfig::default().to_string(), "1MB/4way/64B");
        assert_eq!(
            CacheConfig::new(256 << 10, 4, 64).unwrap().to_string(),
            "256KB/4way/64B"
        );
    }

    #[test]
    fn hierarchy_sharing_groups() {
        let mut b = HierarchyConfig::builder(8);
        let cfg = b.cpus_per_l2(4).build().unwrap();
        assert_eq!(cfg.l2_count(), 2);
        assert_eq!(cfg.l2_group(0), 0);
        assert_eq!(cfg.l2_group(3), 0);
        assert_eq!(cfg.l2_group(4), 1);
        assert_eq!(cfg.l2_group(7), 1);
    }

    #[test]
    fn hierarchy_bad_sharing_rejected() {
        let mut b = HierarchyConfig::builder(8);
        assert!(b.cpus_per_l2(3).build().is_err());
        let b0 = HierarchyConfig::builder(0);
        assert!(b0.build().is_err());
    }

    #[test]
    fn default_memory_backend_is_flat() {
        let cfg = HierarchyConfig::e6000(2).unwrap();
        assert_eq!(cfg.memory, MemoryConfig::Flat);
    }

    fn build_with_dram(d: DramConfig) -> Result<HierarchyConfig, ConfigError> {
        let mut b = HierarchyConfig::builder(2);
        b.memory(MemoryConfig::BankedDram(d));
        b.build()
    }

    #[test]
    fn dram_zero_banks_rejected() {
        let d = DramConfig {
            banks: 0,
            ..DramConfig::default()
        };
        assert!(matches!(
            build_with_dram(d),
            Err(ConfigError::BadMemory { value: 0, .. })
        ));
    }

    #[test]
    fn dram_non_power_of_two_channels_rejected() {
        let d = DramConfig {
            channels: 3,
            ..DramConfig::default()
        };
        assert!(matches!(
            build_with_dram(d),
            Err(ConfigError::NotPowerOfTwo {
                what: "memory channels",
                value: 3
            })
        ));
    }

    #[test]
    fn dram_zero_queue_depth_rejected() {
        let d = DramConfig {
            queue_depth: 0,
            ..DramConfig::default()
        };
        let err = build_with_dram(d).unwrap_err();
        assert!(matches!(err, ConfigError::BadMemory { value: 0, .. }));
        assert!(err.to_string().contains("queue depth"));
    }

    #[test]
    fn dram_inverted_latencies_rejected() {
        let d = DramConfig {
            t_row_hit: 100,
            t_row_conflict: 50,
            ..DramConfig::default()
        };
        assert!(matches!(
            build_with_dram(d),
            Err(ConfigError::BadMemory { value: 50, .. })
        ));
    }

    #[test]
    fn dram_defaults_validate() {
        assert!(build_with_dram(DramConfig::default()).is_ok());
        let mut b = HierarchyConfig::builder(2);
        b.memory(MemoryConfig::FlatFixed(75));
        assert!(b.build().is_ok());
        let mut b = HierarchyConfig::builder(2);
        b.memory(MemoryConfig::FlatFixed(0));
        assert!(matches!(
            b.build(),
            Err(ConfigError::BadMemory {
                what: "flat memory latency",
                ..
            })
        ));
    }
}
