//! Address-region classification for cycle attribution.
//!
//! The paper's analysis hinges on knowing *what data* a stall was paid on
//! — lock words, the shared heap, compiled code (Sections 5.1-5.2). A
//! [`RegionMap`] is a set of named, non-overlapping address ranges (heap
//! generations, code cache, lock words, stacks, kernel structures) built
//! once at machine construction; classifying an access is then a binary
//! search, cheap enough to run on every reference the attribution
//! profiler observes.

use crate::addr::{Addr, AddrRange};

/// The label returned for addresses no registered region covers.
pub const OTHER_REGION: &str = "other";

/// A sorted set of named, disjoint address regions.
#[derive(Debug, Clone, Default)]
pub struct RegionMap {
    /// Sorted by range start; disjoint by construction.
    entries: Vec<(AddrRange, &'static str)>,
}

impl RegionMap {
    /// Creates an empty map (everything classifies as [`OTHER_REGION`]).
    pub fn new() -> Self {
        RegionMap::default()
    }

    /// Registers `range` under `name`, keeping the map sorted.
    ///
    /// Empty ranges are ignored (scaled configurations may shrink a
    /// region to nothing).
    ///
    /// # Panics
    ///
    /// Panics if `range` overlaps a region already in the map.
    pub fn insert(&mut self, range: AddrRange, name: &'static str) {
        if range.is_empty() {
            return;
        }
        let at = self
            .entries
            .partition_point(|(r, _)| r.start() < range.start());
        if let Some((prev, n)) = at.checked_sub(1).and_then(|i| self.entries.get(i)) {
            assert!(!prev.overlaps(&range), "region {name} overlaps {n}");
        }
        if let Some((next, n)) = self.entries.get(at) {
            assert!(!next.overlaps(&range), "region {name} overlaps {n}");
        }
        self.entries.insert(at, (range, name));
    }

    /// The region containing `addr`, or [`OTHER_REGION`].
    #[inline]
    pub fn classify(&self, addr: Addr) -> &'static str {
        let at = self.entries.partition_point(|(r, _)| r.start() <= addr);
        match at.checked_sub(1).and_then(|i| self.entries.get(i)) {
            Some((r, name)) if r.contains(addr) => name,
            _ => OTHER_REGION,
        }
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered regions in address order.
    pub fn entries(&self) -> &[(AddrRange, &'static str)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> RegionMap {
        let mut m = RegionMap::new();
        m.insert(AddrRange::new(Addr(0x1000), 0x1000), "code");
        m.insert(AddrRange::new(Addr(0x4000), 0x100), "lock");
        m.insert(AddrRange::new(Addr(0x2000), 0x800), "eden");
        m
    }

    #[test]
    fn classifies_interior_and_boundary_addresses() {
        let m = map();
        assert_eq!(m.classify(Addr(0x1000)), "code");
        assert_eq!(m.classify(Addr(0x1fff)), "code");
        assert_eq!(m.classify(Addr(0x2000)), "eden");
        assert_eq!(m.classify(Addr(0x40ff)), "lock");
    }

    #[test]
    fn gaps_and_extremes_fall_back_to_other() {
        let m = map();
        assert_eq!(m.classify(Addr(0)), OTHER_REGION);
        assert_eq!(m.classify(Addr(0x2800)), OTHER_REGION);
        assert_eq!(m.classify(Addr(0x4100)), OTHER_REGION);
        assert_eq!(m.classify(Addr(u64::MAX)), OTHER_REGION);
    }

    #[test]
    fn entries_are_kept_sorted() {
        let m = map();
        let starts: Vec<u64> = m.entries().iter().map(|(r, _)| r.start().0).collect();
        assert_eq!(starts, vec![0x1000, 0x2000, 0x4000]);
    }

    #[test]
    fn empty_ranges_are_ignored() {
        let mut m = RegionMap::new();
        m.insert(AddrRange::new(Addr(0x1000), 0), "nothing");
        assert!(m.is_empty());
        assert_eq!(m.classify(Addr(0x1000)), OTHER_REGION);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_insert_panics() {
        let mut m = map();
        m.insert(AddrRange::new(Addr(0x1800), 0x1000), "bad");
    }

    #[test]
    fn empty_map_classifies_everything_as_other() {
        let m = RegionMap::new();
        assert_eq!(m.classify(Addr(0x1234)), OTHER_REGION);
    }
}
