//! Single-pass cache-size sweeps (Figures 12 and 13).
//!
//! The paper reports uniprocessor instruction- and data-cache miss rates
//! across cache sizes from 64 KB to 16 MB (4-way set-associative, 64-byte
//! blocks). A [`CacheSweep`] holds one cache per size and feeds every
//! reference to all of them in a single pass over the reference stream, so a
//! whole figure's worth of points costs one simulation.

use crate::addr::Addr;
use crate::cache::Cache;
use crate::config::{CacheConfig, ConfigError};
use crate::protocol::LineState;

/// The paper's Figure 12/13 cache-size axis: 64 KB to 16 MB by powers of 2.
pub const PAPER_SIZES: [u64; 9] = [
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
];

/// Miss statistics for one cache size in a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepPoint {
    /// References observed.
    pub accesses: u64,
    /// Misses observed.
    pub misses: u64,
}

impl SweepPoint {
    /// Misses per reference.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per 1000 *instructions* — the paper's y-axis — given the
    /// total instruction count of the measurement window.
    pub fn misses_per_kilo_instr(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// A bank of caches of different sizes fed by one reference stream.
#[derive(Debug, Clone)]
pub struct CacheSweep {
    caches: Vec<Cache>,
    points: Vec<SweepPoint>,
    sizes: Vec<u64>,
}

impl CacheSweep {
    /// Builds a sweep over the given capacities with the paper's 4-way /
    /// 64-byte geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any capacity is invalid.
    pub fn new(sizes: &[u64]) -> Result<Self, ConfigError> {
        let mut caches = Vec::with_capacity(sizes.len());
        for &s in sizes {
            caches.push(Cache::new(CacheConfig::new(s, 4, 64)?));
        }
        Ok(CacheSweep {
            points: vec![SweepPoint::default(); sizes.len()],
            sizes: sizes.to_vec(),
            caches,
        })
    }

    /// A sweep over the paper's 64 KB–16 MB axis.
    pub fn paper() -> Self {
        CacheSweep::new(&PAPER_SIZES).expect("paper sizes are valid")
    }

    /// Feeds one reference to every cache in the bank.
    #[inline]
    pub fn access(&mut self, addr: Addr) {
        for (cache, point) in self.caches.iter_mut().zip(&mut self.points) {
            point.accesses += 1;
            if cache.touch(addr).is_none() {
                point.misses += 1;
                let _ = cache.insert(addr, LineState::Shared);
            }
        }
    }

    /// `(capacity_bytes, point)` pairs in ascending capacity order.
    pub fn results(&self) -> Vec<(u64, SweepPoint)> {
        self.sizes
            .iter()
            .copied()
            .zip(self.points.iter().copied())
            .collect()
    }

    /// Resets statistics but keeps cache contents (for warm-up windows).
    pub fn reset_stats(&mut self) {
        for p in &mut self.points {
            *p = SweepPoint::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_caches_never_miss_more_on_looping_stream() {
        // A cyclic working set of 2048 lines (128 KB): caches >= 256 KB
        // should capture it entirely after the first lap; 64 KB cannot.
        let mut sweep = CacheSweep::new(&[64 << 10, 256 << 10, 1 << 20]).unwrap();
        for lap in 0..4 {
            for i in 0..2048u64 {
                sweep.access(Addr(i * 64));
            }
            if lap == 0 {
                sweep.reset_stats();
            }
        }
        let r = sweep.results();
        let small = r[0].1.miss_rate();
        let mid = r[1].1.miss_rate();
        let big = r[2].1.miss_rate();
        assert!(small > 0.9, "64 KB thrashes on a 128 KB loop: {small}");
        assert_eq!(mid, 0.0, "256 KB holds the loop");
        assert_eq!(big, 0.0);
    }

    #[test]
    fn misses_per_kilo_instr_uses_instruction_base() {
        let p = SweepPoint {
            accesses: 500,
            misses: 50,
        };
        assert!((p.misses_per_kilo_instr(10_000) - 5.0).abs() < 1e-12);
        assert_eq!(p.misses_per_kilo_instr(0), 0.0);
    }

    #[test]
    fn paper_sweep_has_nine_sizes() {
        let s = CacheSweep::paper();
        let r = s.results();
        assert_eq!(r.len(), 9);
        assert_eq!(r[0].0, 64 << 10);
        assert_eq!(r[8].0, 16 << 20);
    }

    #[test]
    fn cold_misses_counted_once_per_line() {
        let mut s = CacheSweep::new(&[1 << 20]).unwrap();
        for i in 0..100u64 {
            s.access(Addr(i * 64));
        }
        for i in 0..100u64 {
            s.access(Addr(i * 64));
        }
        let (_, p) = s.results()[0];
        assert_eq!(p.accesses, 200);
        assert_eq!(p.misses, 100, "second lap hits everywhere");
    }
}
