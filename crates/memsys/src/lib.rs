//! # memsys — multiprocessor memory-system simulator
//!
//! The instrument half of the reproduction of *"Memory System Behavior of
//! Java-Based Middleware"* (Karlsson, Moore, Hagersten, Wood — HPCA 2003):
//! a trace-driven model of the Sun E6000's cache hierarchy.
//!
//! The crate provides:
//!
//! - [`cache::Cache`] — a set-associative, true-LRU cache of coherence tags;
//! - [`system::MemorySystem`] — per-processor split L1 I/D caches over
//!   unified L2s kept coherent with a MOESI snooping protocol, including the
//!   shared-L2 chip-multiprocessor topologies of the paper's Figure 16;
//! - [`sweep::CacheSweep`] — single-pass multi-size miss-rate sweeps
//!   (Figures 12/13);
//! - [`linestats::LineStats`] — per-line communication footprints
//!   (Figures 14/15).
//!
//! ## Example
//!
//! ```
//! use memsys::{Addr, AccessKind, HitLevel, MemorySystem};
//!
//! # fn main() -> Result<(), memsys::ConfigError> {
//! let mut sys = MemorySystem::e6000(2)?;
//! sys.access(0, AccessKind::Store, Addr(0x1000));        // cpu 0 dirties a line
//! let o = sys.access(1, AccessKind::Load, Addr(0x1000)); // cpu 1 reads it
//! assert_eq!(o.level, HitLevel::CacheToCache);           // snoop copyback
//! assert_eq!(sys.stats().total_c2c(), 1);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod backend;
pub mod bus;
pub mod cache;
pub mod config;
pub mod directory;
mod filter;
pub mod linestats;
mod mem;
pub mod probe;
pub mod protocol;
pub mod region;
pub mod sink;
pub mod stats;
pub mod sweep;
pub mod system;
pub mod trace;

pub use addr::{Addr, AddrRange, LineAddr, LINE_BITS, LINE_BYTES};
pub use backend::{Backend, BankedDram, DramStats, FlatLatency, MemoryBackend};
pub use bus::BusStats;
pub use cache::{Cache, Evicted};
pub use config::{CacheConfig, ConfigError, DramConfig, HierarchyConfig, MemoryConfig};
pub use directory::Directory;
pub use linestats::LineStats;
pub use protocol::{BusOp, LineState};
pub use region::{RegionMap, OTHER_REGION};
pub use sink::{CountingSink, MemSink, RecordingSink, TeeSink};
pub use stats::{AccessKind, AccessOutcome, HitLevel, KindCounters, SystemStats};
pub use sweep::{CacheSweep, SweepPoint, PAPER_SIZES};
pub use system::{BatchRef, LatencyCosts, MemorySystem};
pub use trace::{
    AccessSource, SystemSink, SystemTrace, SystemTraceEvent, Trace, TraceEvent, TraceSink,
};
