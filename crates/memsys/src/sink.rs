//! The [`MemSink`] trait: where generated reference streams go.
//!
//! Workload models and the JVM substrate *produce* instruction counts and
//! memory references; the simulation harness *consumes* them (driving a
//! [`crate::MemorySystem`] and a processor timer), while unit tests consume
//! them with simple recording sinks. This trait is the seam between the
//! two halves.

use crate::addr::Addr;
use crate::stats::AccessKind;

/// A consumer of one thread's execution stream.
///
/// Implementations decide what "executing" means: the full simulator feeds
/// caches and charges cycles; test sinks record or count.
pub trait MemSink {
    /// Retires `n` instructions that make no (further) memory references.
    fn instructions(&mut self, n: u64);

    /// Performs one memory reference.
    fn access(&mut self, kind: AccessKind, addr: Addr);

    /// Convenience: a load.
    fn load(&mut self, addr: Addr) {
        self.access(AccessKind::Load, addr);
    }

    /// Convenience: a store.
    fn store(&mut self, addr: Addr) {
        self.access(AccessKind::Store, addr);
    }

    /// Convenience: an instruction fetch.
    fn ifetch(&mut self, addr: Addr) {
        self.access(AccessKind::Ifetch, addr);
    }

    /// Touches every line of `range` with `kind` (bulk copy/scan helper).
    fn sweep(&mut self, kind: AccessKind, range: crate::addr::AddrRange) {
        if range.is_empty() {
            return;
        }
        let mut line = range.start().line();
        for _ in 0..range.line_count() {
            self.access(kind, line.base());
            line = line.step(1);
        }
    }
}

impl<S: MemSink + ?Sized> MemSink for &mut S {
    fn instructions(&mut self, n: u64) {
        (**self).instructions(n);
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        (**self).access(kind, addr);
    }
}

/// A sink that forwards every event to two sinks — capture a stream
/// (e.g. into a [`crate::TraceSink`]) while still driving its consumer.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// The first receiver.
    pub a: A,
    /// The second receiver.
    pub b: B,
}

impl<A: MemSink, B: MemSink> TeeSink<A, B> {
    /// Tees one stream into both sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: MemSink, B: MemSink> MemSink for TeeSink<A, B> {
    fn instructions(&mut self, n: u64) {
        self.a.instructions(n);
        self.b.instructions(n);
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.a.access(kind, addr);
        self.b.access(kind, addr);
    }
}

/// A sink that only counts, for tests and dry runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Instructions retired.
    pub instructions: u64,
    /// Loads seen.
    pub loads: u64,
    /// Stores seen.
    pub stores: u64,
    /// Instruction fetches seen.
    pub ifetches: u64,
}

impl CountingSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total references of all kinds.
    pub fn refs(&self) -> u64 {
        self.loads + self.stores + self.ifetches
    }
}

impl MemSink for CountingSink {
    fn instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    fn access(&mut self, kind: AccessKind, _addr: Addr) {
        match kind {
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
            AccessKind::Ifetch => self.ifetches += 1,
        }
    }
}

/// A sink that records every event, for fine-grained assertions.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// Recorded `(kind, addr)` pairs in order.
    pub refs: Vec<(AccessKind, Addr)>,
    /// Instructions retired.
    pub instructions: u64,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }
}

impl MemSink for RecordingSink {
    fn instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.refs.push((kind, addr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrRange;

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::new();
        s.instructions(10);
        s.load(Addr(0));
        s.store(Addr(64));
        s.ifetch(Addr(128));
        s.ifetch(Addr(128));
        assert_eq!(s.instructions, 10);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.ifetches, 2);
        assert_eq!(s.refs(), 4);
    }

    #[test]
    fn sweep_touches_every_line_once() {
        let mut s = CountingSink::new();
        s.sweep(AccessKind::Store, AddrRange::new(Addr(10), 130));
        // Bytes 10..140 span lines 0,1,2.
        assert_eq!(s.stores, 3);
    }

    #[test]
    fn sweep_of_empty_range_is_noop() {
        let mut s = CountingSink::new();
        s.sweep(AccessKind::Load, AddrRange::new(Addr(0), 0));
        assert_eq!(s.refs(), 0);
    }

    #[test]
    fn tee_sink_feeds_both_receivers() {
        let mut t = TeeSink::new(CountingSink::new(), RecordingSink::new());
        t.instructions(7);
        t.load(Addr(0x40));
        assert_eq!(t.a.instructions, 7);
        assert_eq!(t.a.loads, 1);
        assert_eq!(t.b.instructions, 7);
        assert_eq!(t.b.refs, vec![(AccessKind::Load, Addr(0x40))]);
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut s = RecordingSink::new();
        s.load(Addr(1));
        s.store(Addr(2));
        assert_eq!(
            s.refs,
            vec![(AccessKind::Load, Addr(1)), (AccessKind::Store, Addr(2))]
        );
    }
}
