//! Snooping-bus transaction accounting.
//!
//! The E6000's Gigaplane bus broadcasts every L2 miss and upgrade to all
//! other caches. This module counts those transactions and the snoop
//! copybacks they trigger; the actual snoop *logic* lives in
//! [`crate::system::MemorySystem`], which owns the caches.

use crate::protocol::BusOp;

/// Counters for one snooping bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// `GetS` transactions (read misses).
    pub gets: u64,
    /// `GetX` transactions (write misses).
    pub getx: u64,
    /// Ownership upgrades (no data transfer).
    pub upgrades: u64,
    /// Snoop copybacks: transactions answered by a dirty remote cache.
    pub snoop_copybacks: u64,
    /// Writebacks of dirty victims to memory.
    pub writebacks: u64,
}

impl BusStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        BusStats::default()
    }

    /// Records a transaction and whether a remote cache supplied the data.
    pub fn record(&mut self, op: BusOp, supplied_by_cache: bool) {
        match op {
            BusOp::GetS => self.gets += 1,
            BusOp::GetX => self.getx += 1,
            BusOp::Upgrade => self.upgrades += 1,
        }
        if supplied_by_cache {
            self.snoop_copybacks += 1;
        }
    }

    /// Records a dirty-victim writeback.
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Total address transactions (data-carrying or not).
    pub fn total_transactions(&self) -> u64 {
        self.gets + self.getx + self.upgrades + self.writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_op() {
        let mut b = BusStats::new();
        b.record(BusOp::GetS, false);
        b.record(BusOp::GetS, true);
        b.record(BusOp::GetX, true);
        b.record(BusOp::Upgrade, false);
        b.record_writeback();
        assert_eq!(b.gets, 2);
        assert_eq!(b.getx, 1);
        assert_eq!(b.upgrades, 1);
        assert_eq!(b.snoop_copybacks, 2);
        assert_eq!(b.writebacks, 1);
        assert_eq!(b.total_transactions(), 5);
    }
}
