//! Snooping-bus transaction accounting.
//!
//! The E6000's Gigaplane bus broadcasts every L2 miss and upgrade to all
//! other caches. This module counts those transactions and the snoop
//! copybacks they trigger; the actual snoop *logic* lives in
//! [`crate::system::MemorySystem`], which owns the caches.

use crate::protocol::BusOp;

/// Counters for one snooping bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// `GetS` transactions (read misses).
    pub gets: u64,
    /// `GetX` transactions (write misses).
    pub getx: u64,
    /// Ownership upgrades (no data transfer).
    pub upgrades: u64,
    /// Snoop copybacks: transactions answered by a dirty remote cache.
    pub snoop_copybacks: u64,
    /// Writebacks of dirty victims to memory.
    pub writebacks: u64,
    /// Remote L2 probes actually performed for bus transactions.
    ///
    /// Diagnostics, not protocol state: with the sharer directory enabled
    /// only actual sharers are probed; a broadcast system probes every
    /// remote group. All protocol-visible counters above are identical
    /// either way.
    pub snoops_sent: u64,
    /// Remote L2 probes skipped because the sharer directory proved the
    /// group holds no copy. Always zero on a broadcast system.
    pub snoops_filtered: u64,
}

impl BusStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        BusStats::default()
    }

    /// Records a transaction and whether a remote cache supplied the data.
    pub fn record(&mut self, op: BusOp, supplied_by_cache: bool) {
        match op {
            BusOp::GetS => self.gets += 1,
            BusOp::GetX => self.getx += 1,
            BusOp::Upgrade => self.upgrades += 1,
        }
        if supplied_by_cache {
            self.snoop_copybacks += 1;
        }
    }

    /// Records a dirty-victim writeback.
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Records one bus transaction's snoop fan-out: how many remote L2s
    /// were probed and how many the filter let skip.
    pub fn record_snoops(&mut self, sent: u64, filtered: u64) {
        self.snoops_sent += sent;
        self.snoops_filtered += filtered;
    }

    /// Fraction of would-be remote probes the snoop filter eliminated
    /// (0 when no transaction has snooped yet, and on broadcast systems).
    pub fn snoop_filter_rate(&self) -> f64 {
        let total = self.snoops_sent + self.snoops_filtered;
        if total == 0 {
            0.0
        } else {
            self.snoops_filtered as f64 / total as f64
        }
    }

    /// Total address transactions (data-carrying or not).
    pub fn total_transactions(&self) -> u64 {
        self.gets + self.getx + self.upgrades + self.writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_op() {
        let mut b = BusStats::new();
        b.record(BusOp::GetS, false);
        b.record(BusOp::GetS, true);
        b.record(BusOp::GetX, true);
        b.record(BusOp::Upgrade, false);
        b.record_writeback();
        assert_eq!(b.gets, 2);
        assert_eq!(b.getx, 1);
        assert_eq!(b.upgrades, 1);
        assert_eq!(b.snoop_copybacks, 2);
        assert_eq!(b.writebacks, 1);
        assert_eq!(b.total_transactions(), 5);
    }

    #[test]
    fn snoop_counters_and_filter_rate() {
        let mut b = BusStats::new();
        assert_eq!(b.snoop_filter_rate(), 0.0);
        b.record_snoops(1, 14);
        b.record_snoops(0, 15);
        assert_eq!(b.snoops_sent, 1);
        assert_eq!(b.snoops_filtered, 29);
        assert!((b.snoop_filter_rate() - 29.0 / 30.0).abs() < 1e-12);
    }
}
