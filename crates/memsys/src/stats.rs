//! Aggregate and per-processor access/miss counters.

use std::fmt;

/// The kind of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    Ifetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Whether the reference is a data access (load or store).
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::Ifetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Ifetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// Where a reference was satisfied, and at what coherence cost.
///
/// Latencies are deliberately *not* attached here; the [`simcpu`] crate owns
/// the latency table so the memory system stays a purely functional model.
///
/// [`simcpu`]: https://docs.rs/simcpu
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Satisfied by the referencing processor's L1.
    L1,
    /// Satisfied by the processor's (possibly shared) L2.
    L2,
    /// A store to a Shared/Owned line: bus upgrade, no data transfer.
    Upgrade,
    /// L2 miss satisfied by another L2 cache (snoop copyback).
    CacheToCache,
    /// L2 miss satisfied by main memory.
    Memory,
}

impl HitLevel {
    /// Whether the access missed in the L2 and required data from beyond it.
    pub fn is_l2_data_miss(self) -> bool {
        matches!(self, HitLevel::CacheToCache | HitLevel::Memory)
    }
}

/// The complete outcome of one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Where the data came from.
    pub level: HitLevel,
    /// Whether another cache supplied the data (snoop copyback).
    pub c2c: bool,
    /// Whether the fill evicted a dirty line (writeback to memory).
    pub writeback: bool,
    /// Backend-supplied cost of a memory fill, in cycles. `None` means
    /// the memory backend defers to the CPU model's flat latency table;
    /// `Some` overrides it (the banked-DRAM model's load-dependent cost).
    pub mem_cycles: Option<u64>,
}

impl AccessOutcome {
    pub(crate) fn hit(level: HitLevel) -> Self {
        AccessOutcome {
            level,
            c2c: level == HitLevel::CacheToCache,
            writeback: false,
            mem_cycles: None,
        }
    }
}

/// Per-kind counter block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Total references of this kind.
    pub accesses: u64,
    /// References that missed the L1.
    pub l1_misses: u64,
    /// References that missed the L2 (demand fetches from bus/memory).
    pub l2_misses: u64,
    /// Stores that required an ownership upgrade of a cached line.
    pub upgrades: u64,
    /// L2 misses satisfied by another cache.
    pub c2c: u64,
}

impl KindCounters {
    fn record(&mut self, outcome: &AccessOutcome) {
        self.accesses += 1;
        match outcome.level {
            HitLevel::L1 => {}
            HitLevel::L2 => self.l1_misses += 1,
            HitLevel::Upgrade => {
                self.l1_misses += 1;
                self.upgrades += 1;
            }
            HitLevel::CacheToCache | HitLevel::Memory => {
                self.l1_misses += 1;
                self.l2_misses += 1;
            }
        }
        if outcome.c2c {
            self.c2c += 1;
        }
    }
}

/// System-wide statistics, aggregated and per processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Instruction-fetch counters.
    pub ifetch: KindCounters,
    /// Load counters.
    pub load: KindCounters,
    /// Store counters.
    pub store: KindCounters,
    /// Dirty-line writebacks to memory (evictions and replacement).
    pub writebacks: u64,
    /// Per-processor L2 demand misses (all kinds).
    pub l2_misses_by_cpu: Vec<u64>,
    /// Per-processor cache-to-cache transfers received.
    pub c2c_by_cpu: Vec<u64>,
}

impl SystemStats {
    pub(crate) fn new(cpus: usize) -> Self {
        SystemStats {
            l2_misses_by_cpu: vec![0; cpus],
            c2c_by_cpu: vec![0; cpus],
            ..SystemStats::default()
        }
    }

    pub(crate) fn record(&mut self, cpu: usize, kind: AccessKind, outcome: &AccessOutcome) {
        let counters = match kind {
            AccessKind::Ifetch => &mut self.ifetch,
            AccessKind::Load => &mut self.load,
            AccessKind::Store => &mut self.store,
        };
        counters.record(outcome);
        if outcome.writeback {
            self.writebacks += 1;
        }
        if outcome.level.is_l2_data_miss() {
            self.l2_misses_by_cpu[cpu] += 1;
        }
        if outcome.c2c {
            self.c2c_by_cpu[cpu] += 1;
        }
    }

    /// Total references of all kinds.
    pub fn total_accesses(&self) -> u64 {
        self.ifetch.accesses + self.load.accesses + self.store.accesses
    }

    /// Total L2 demand misses of all kinds.
    pub fn total_l2_misses(&self) -> u64 {
        self.ifetch.l2_misses + self.load.l2_misses + self.store.l2_misses
    }

    /// Total cache-to-cache transfers.
    pub fn total_c2c(&self) -> u64 {
        self.ifetch.c2c + self.load.c2c + self.store.c2c
    }

    /// Fraction of L2 demand misses satisfied by another cache —
    /// the paper's Figure 8 metric.
    ///
    /// Returns 0 when there were no L2 misses.
    pub fn c2c_ratio(&self) -> f64 {
        let misses = self.total_l2_misses();
        if misses == 0 {
            0.0
        } else {
            self.total_c2c() as f64 / misses as f64
        }
    }

    /// Data-reference (load + store) counters combined.
    pub fn data(&self) -> KindCounters {
        KindCounters {
            accesses: self.load.accesses + self.store.accesses,
            l1_misses: self.load.l1_misses + self.store.l1_misses,
            l2_misses: self.load.l2_misses + self.store.l2_misses,
            upgrades: self.load.upgrades + self.store.upgrades,
            c2c: self.load.c2c + self.store.c2c,
        }
    }

    /// Resets all counters while keeping per-cpu vector sizes.
    pub fn reset(&mut self) {
        let cpus = self.l2_misses_by_cpu.len();
        *self = SystemStats::new(cpus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_counters_classify_levels() {
        let mut k = KindCounters::default();
        k.record(&AccessOutcome::hit(HitLevel::L1));
        k.record(&AccessOutcome::hit(HitLevel::L2));
        k.record(&AccessOutcome::hit(HitLevel::Memory));
        k.record(&AccessOutcome::hit(HitLevel::CacheToCache));
        k.record(&AccessOutcome::hit(HitLevel::Upgrade));
        assert_eq!(k.accesses, 5);
        assert_eq!(k.l1_misses, 4);
        assert_eq!(k.l2_misses, 2);
        assert_eq!(k.upgrades, 1);
        assert_eq!(k.c2c, 1);
    }

    #[test]
    fn c2c_ratio_of_empty_stats_is_zero() {
        let s = SystemStats::new(2);
        assert_eq!(s.c2c_ratio(), 0.0);
    }

    #[test]
    fn system_stats_attribute_per_cpu() {
        let mut s = SystemStats::new(2);
        s.record(
            1,
            AccessKind::Load,
            &AccessOutcome::hit(HitLevel::CacheToCache),
        );
        s.record(0, AccessKind::Store, &AccessOutcome::hit(HitLevel::Memory));
        assert_eq!(s.l2_misses_by_cpu, vec![1, 1]);
        assert_eq!(s.c2c_by_cpu, vec![0, 1]);
        assert_eq!(s.total_l2_misses(), 2);
        assert_eq!(s.total_c2c(), 1);
        assert!((s.c2c_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn data_combines_loads_and_stores() {
        let mut s = SystemStats::new(1);
        s.record(0, AccessKind::Load, &AccessOutcome::hit(HitLevel::L2));
        s.record(0, AccessKind::Store, &AccessOutcome::hit(HitLevel::Memory));
        s.record(0, AccessKind::Ifetch, &AccessOutcome::hit(HitLevel::Memory));
        let d = s.data();
        assert_eq!(d.accesses, 2);
        assert_eq!(d.l1_misses, 2);
        assert_eq!(d.l2_misses, 1);
    }
}
