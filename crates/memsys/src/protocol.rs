//! MOESI snooping-coherence line states and transition helpers.
//!
//! The Sun E6000 of the paper keeps its UltraSPARC II L2 caches coherent
//! with a MOESI write-invalidate snooping protocol over a shared bus.
//! "Snoop copyback" events — a processor copying a line back onto the bus in
//! response to another processor's request — occur when the responding cache
//! holds the line in a dirty state (Modified or Owned). Those events are the
//! paper's cache-to-cache transfers (Section 4.3).

use std::fmt;

/// Coherence state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// Not present (or invalidated).
    #[default]
    Invalid,
    /// Clean, possibly present in other caches.
    Shared,
    /// Clean, guaranteed the only cached copy; silently upgradable to M.
    Exclusive,
    /// Dirty and shared: this cache owns the only up-to-date copy and must
    /// supply it on snoops and write it back on eviction.
    Owned,
    /// Dirty, the only cached copy.
    Modified,
}

impl LineState {
    /// Whether the line holds usable data.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// Whether this cache must write the line back when evicting it.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// Whether a store can proceed without a bus transaction.
    #[inline]
    pub fn can_write_silently(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// State after a snooped read (`GetS`) from another cache.
    ///
    /// Dirty owners retain ownership as [`LineState::Owned`] and supply the
    /// data (a snoop copyback); clean holders fall to [`LineState::Shared`].
    #[inline]
    pub fn after_remote_read(self) -> LineState {
        match self {
            LineState::Invalid => LineState::Invalid,
            LineState::Shared => LineState::Shared,
            LineState::Exclusive => LineState::Shared,
            LineState::Owned | LineState::Modified => LineState::Owned,
        }
    }

    /// Whether responding to a remote read from this state puts the data on
    /// the bus from this cache (a snoop copyback / cache-to-cache transfer).
    #[inline]
    pub fn supplies_data(self) -> bool {
        self.is_dirty()
    }

    /// Inverse of `self as u64` over the enum's discriminants — the decode
    /// half of the packed tag+state words the cache stores (see `cache.rs`).
    /// Unknown codes decode to [`LineState::Invalid`].
    #[inline]
    pub(crate) fn from_code(code: u64) -> LineState {
        match code {
            1 => LineState::Shared,
            2 => LineState::Exclusive,
            3 => LineState::Owned,
            4 => LineState::Modified,
            _ => LineState::Invalid,
        }
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            LineState::Invalid => 'I',
            LineState::Shared => 'S',
            LineState::Exclusive => 'E',
            LineState::Owned => 'O',
            LineState::Modified => 'M',
        };
        write!(f, "{c}")
    }
}

/// Bus transaction kinds issued by an L2 miss or upgrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Read for sharing (load or instruction-fetch miss).
    GetS,
    /// Read for ownership (store miss).
    GetX,
    /// Ownership upgrade of an already-cached shared line (no data needed).
    Upgrade,
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusOp::GetS => "GetS",
            BusOp::GetX => "GetX",
            BusOp::Upgrade => "Upg",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_states_supply_data() {
        assert!(LineState::Modified.supplies_data());
        assert!(LineState::Owned.supplies_data());
        assert!(!LineState::Exclusive.supplies_data());
        assert!(!LineState::Shared.supplies_data());
        assert!(!LineState::Invalid.supplies_data());
    }

    #[test]
    fn remote_read_transitions() {
        assert_eq!(
            LineState::Modified.after_remote_read(),
            LineState::Owned,
            "dirty owner retains ownership as O"
        );
        assert_eq!(LineState::Owned.after_remote_read(), LineState::Owned);
        assert_eq!(LineState::Exclusive.after_remote_read(), LineState::Shared);
        assert_eq!(LineState::Shared.after_remote_read(), LineState::Shared);
        assert_eq!(LineState::Invalid.after_remote_read(), LineState::Invalid);
    }

    #[test]
    fn silent_write_only_from_m_or_e() {
        assert!(LineState::Modified.can_write_silently());
        assert!(LineState::Exclusive.can_write_silently());
        assert!(!LineState::Owned.can_write_silently());
        assert!(!LineState::Shared.can_write_silently());
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(LineState::Modified.to_string(), "M");
        assert_eq!(BusOp::Upgrade.to_string(), "Upg");
    }
}
