//! The banked-DRAM timing model: load-dependent memory latency.
//!
//! Structure follows real DDR controllers at the granularity the Mess
//! methodology needs: `channels` independent data buses, each owning
//! `banks` banks and a bounded FIFO request queue. Latency decomposes
//! into three waits, each a `max` against state left by earlier
//! requests:
//!
//! 1. **Admission** — a full channel queue backpressures the requester
//!    until the oldest in-flight request completes;
//! 2. **Bank** — an open-row hit pays `t_row_hit`, any other row pays
//!    `t_row_conflict` (precharge + activate + CAS), and the bank is
//!    busy for the duration;
//! 3. **Data bus** — one line transfer per `channel_cycles` per channel,
//!    the bandwidth cap that bends the latency curve upward as applied
//!    load approaches it.
//!
//! The model is a pure state machine over `(address, arrival time)`
//! pairs: no randomness, no wall clock, so identical access streams cost
//! identically — the property `tests/determinism.rs` holds the whole
//! stack to. Arrival times may jump backwards between processors; the
//! internal clock only advances.

use std::collections::VecDeque;

use probes::Histogram;

use crate::addr::{Addr, LINE_BITS};
use crate::config::DramConfig;

use super::MemoryBackend;

/// Row tag meaning "no row open" (after power-up; never a real row).
const CLOSED: u64 = u64::MAX;

/// Cap on buffered stall episodes between drains. Stalls are rare by
/// construction (the queue must be full), but a pathological stream
/// must not turn the timeline buffer into a memory leak; beyond the
/// cap the *counters* keep counting and only the episode log saturates
/// — deterministically, since admission order is deterministic.
const MAX_STALL_EPISODES: usize = 1 << 16;

/// Event counters of one [`BankedDram`] — the `dram.*` panel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Demand fills serviced.
    pub reads: u64,
    /// Dirty-victim writebacks serviced.
    pub writebacks: u64,
    /// Requests hitting a bank's open row.
    pub row_hits: u64,
    /// Requests paying a row conflict (precharge + activate).
    pub row_conflicts: u64,
    /// Requests that found their channel queue full.
    pub queue_stalls: u64,
    /// Total cycles requesters waited for a queue slot.
    pub stalled_cycles: u64,
    /// Sum over requests of the queue occupancy found on arrival
    /// (divide by requests for the mean).
    pub occupancy_sum: u64,
}

impl DramStats {
    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.reads + self.writebacks
    }

    /// Fraction of requests hitting an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean channel-queue occupancy seen by arriving requests.
    pub fn mean_occupancy(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / n as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: u64,
    busy_until: u64,
}

#[derive(Debug, Clone)]
struct Channel {
    /// When the data bus finishes its last accepted transfer.
    bus_free: u64,
    /// Completion times of in-flight requests, FIFO (the bus serializes
    /// completions, so this stays sorted).
    queue: VecDeque<u64>,
    banks: Vec<Bank>,
}

/// The banked-DRAM backend. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct BankedDram {
    cfg: DramConfig,
    chan_mask: u64,
    chan_bits: u32,
    col_bits: u32,
    bank_mask: u64,
    bank_bits: u32,
    /// Internal monotonic clock: the latest arrival time seen.
    clock: u64,
    channels: Vec<Channel>,
    stats: DramStats,
    hist: Histogram,
    /// Queue-stall episodes `(start, end)` in sim cycles, buffered for
    /// the run-observatory timeline and drained per job.
    stall_episodes: Vec<(u64, u64)>,
}

impl BankedDram {
    /// Builds an idle DRAM from a validated configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                bus_free: 0,
                queue: VecDeque::with_capacity(cfg.queue_depth as usize + 1),
                banks: (0..cfg.banks)
                    .map(|_| Bank {
                        open_row: CLOSED,
                        busy_until: 0,
                    })
                    .collect(),
            })
            .collect();
        BankedDram {
            chan_mask: (cfg.channels - 1) as u64,
            chan_bits: cfg.channels.trailing_zeros(),
            col_bits: cfg.row_lines.trailing_zeros(),
            bank_mask: (cfg.banks - 1) as u64,
            bank_bits: cfg.banks.trailing_zeros(),
            clock: 0,
            channels,
            stats: DramStats::default(),
            hist: Histogram::new(),
            stall_episodes: Vec::new(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Event counters so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-fill total latency (queue wait + bank + bus) histogram.
    pub fn hist(&self) -> &Histogram {
        &self.hist
    }

    /// Aggregate service bandwidth in lines per cycle — the load the
    /// channel buses can sustain; applied loads are fractions of it.
    pub fn peak_lines_per_cycle(&self) -> f64 {
        self.cfg.channels as f64 / self.cfg.channel_cycles as f64
    }

    /// Address mapping `row : bank : column : channel` over line
    /// addresses: consecutive lines interleave across channels, and
    /// within a channel walk the columns of one bank row — the layout
    /// that gives streams their open-row locality.
    #[inline]
    fn map(&self, addr: Addr) -> (usize, usize, u64) {
        let line = addr.0 >> LINE_BITS;
        let chan = (line & self.chan_mask) as usize;
        let in_chan = (line >> self.chan_bits) >> self.col_bits;
        let bank = (in_chan & self.bank_mask) as usize;
        let row = in_chan >> self.bank_bits;
        (chan, bank, row)
    }

    /// Services one request arriving at `now`; returns its total latency.
    fn request(&mut self, addr: Addr, now: u64, is_read: bool) -> u64 {
        self.clock = self.clock.max(now);
        let t = self.clock;
        let (c, b, row) = self.map(addr);
        let ch = &mut self.channels[c];

        // Retire completed requests, then admit (or stall on a full
        // queue until the oldest in-flight request completes).
        while ch.queue.front().is_some_and(|&done| done <= t) {
            ch.queue.pop_front();
        }
        self.stats.occupancy_sum += ch.queue.len() as u64;
        let admit = if ch.queue.len() >= self.cfg.queue_depth as usize {
            let slot_free = ch.queue.pop_front().expect("nonempty full queue");
            self.stats.queue_stalls += 1;
            self.stats.stalled_cycles += slot_free - t;
            if self.stall_episodes.len() < MAX_STALL_EPISODES {
                self.stall_episodes.push((t, slot_free));
            }
            slot_free
        } else {
            t
        };

        // Bank access under the open-row policy.
        let bank = &mut ch.banks[b];
        let service = if bank.open_row == row {
            self.stats.row_hits += 1;
            self.cfg.t_row_hit
        } else {
            self.stats.row_conflicts += 1;
            bank.open_row = row;
            self.cfg.t_row_conflict
        };
        let bank_done = admit.max(bank.busy_until) + service;
        bank.busy_until = bank_done;

        // Data-bus transfer: one line per `channel_cycles`, serialized.
        let done = bank_done.max(ch.bus_free) + self.cfg.channel_cycles;
        ch.bus_free = done;
        ch.queue.push_back(done);

        let latency = done - t;
        if is_read {
            self.stats.reads += 1;
            self.hist.record(latency);
        } else {
            self.stats.writebacks += 1;
        }
        latency
    }
}

impl MemoryBackend for BankedDram {
    #[inline]
    fn fetch(&mut self, addr: Addr, now: u64) -> Option<u64> {
        Some(self.request(addr, now, true))
    }

    #[inline]
    fn writeback(&mut self, addr: Addr, now: u64) {
        self.request(addr, now, false);
    }

    fn needs_clock(&self) -> bool {
        true
    }

    fn dram_stats(&self) -> Option<&DramStats> {
        Some(&self.stats)
    }

    fn queue_hist(&self) -> Option<&Histogram> {
        Some(&self.hist)
    }

    fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.hist = Histogram::new();
        self.stall_episodes.clear();
    }

    fn take_stall_episodes(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.stall_episodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> BankedDram {
        BankedDram::new(DramConfig::default())
    }

    /// Line `i` of a pure stream: walks channels, columns, then banks.
    fn line(i: u64) -> Addr {
        Addr(i << LINE_BITS)
    }

    #[test]
    fn idle_requests_pay_conflict_then_hits_within_a_row() {
        let mut d = dram();
        let cfg = *d.config();
        // First touch of a bank: closed row, conflict timing.
        let first = d.fetch(line(0), 0).unwrap();
        assert_eq!(first, cfg.t_row_conflict + cfg.channel_cycles);
        // Same row, much later (bank idle again): open-row hit.
        let hit = d.fetch(line(0), 100_000).unwrap();
        assert_eq!(hit, cfg.t_row_hit + cfg.channel_cycles);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn far_apart_rows_conflict_every_time() {
        let mut d = dram();
        let cfg = *d.config();
        // Same bank, alternating rows: every access precharges.
        let row_stride = (cfg.channels * cfg.row_lines * cfg.banks) as u64;
        let mut t = 0;
        for i in 0..10 {
            d.fetch(line((i % 2) * row_stride), t).unwrap();
            t += 10_000;
        }
        assert_eq!(d.stats().row_conflicts, 10);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn back_to_back_bursts_queue_behind_the_bus() {
        let mut d = dram();
        let cfg = *d.config();
        // A burst of same-cycle requests to one channel: each waits for
        // every predecessor's transfer, so latency grows linearly.
        let lat: Vec<u64> = (0..6)
            .map(|i| {
                d.fetch(line(i * (cfg.channels as u64) * cfg.row_lines as u64), 0)
                    .unwrap()
            })
            .collect();
        for w in lat.windows(2) {
            assert!(w[1] > w[0], "queued requests must wait longer: {lat:?}");
        }
    }

    #[test]
    fn full_queue_backpressures_and_counts_stall_cycles() {
        let mut d = BankedDram::new(DramConfig {
            queue_depth: 2,
            ..DramConfig::default()
        });
        for i in 0..8 {
            d.fetch(line(i * 64), 0);
        }
        let s = *d.stats();
        assert!(s.queue_stalls > 0, "a 2-deep queue must refuse a burst");
        assert!(s.stalled_cycles > 0);
        assert!(s.mean_occupancy() > 0.0);
    }

    #[test]
    fn stall_episodes_record_the_backpressure_intervals() {
        let mut d = BankedDram::new(DramConfig {
            queue_depth: 2,
            ..DramConfig::default()
        });
        for i in 0..8 {
            d.fetch(line(i * 64), 0);
        }
        let stalls = d.stats().queue_stalls;
        let episodes = d.take_stall_episodes();
        assert_eq!(episodes.len() as u64, stalls);
        // Each episode spans the counted wait and drains exactly once.
        let total: u64 = episodes.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, d.stats().stalled_cycles);
        assert!(episodes.iter().all(|(s, e)| e > s));
        assert!(d.take_stall_episodes().is_empty());
    }

    #[test]
    fn writebacks_consume_bandwidth_but_record_no_latency() {
        let mut d = dram();
        d.writeback(line(0), 0);
        let read = d.fetch(line(0), 0).unwrap();
        assert_eq!(d.stats().writebacks, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.hist().count(), 1, "only reads enter the histogram");
        // The writeback occupied the bus first, delaying the read past
        // its unloaded hit time.
        let cfg = *d.config();
        assert!(read > cfg.t_row_hit + cfg.channel_cycles);
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut d = dram();
        d.fetch(line(0), 1_000_000);
        // An older processor clock arrives late: serviced at the DRAM's
        // present, exactly as if it had arrived at the current clock.
        let mut at_present = d.clone();
        let late = d.fetch(line(0), 10).unwrap();
        let now = at_present.fetch(line(0), 1_000_000).unwrap();
        assert_eq!(late, now);
    }

    #[test]
    fn identical_streams_cost_identically() {
        let mut a = dram();
        let mut b = dram();
        let mut t = 0;
        for i in 0..1_000u64 {
            let addr = line((i * 37) % 4096);
            assert_eq!(a.fetch(addr, t), b.fetch(addr, t));
            t += 17;
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.hist().sum(), b.hist().sum());
    }

    #[test]
    fn reset_keeps_timing_state_but_clears_counters() {
        let mut d = dram();
        d.fetch(line(0), 0);
        d.reset_stats();
        assert_eq!(d.stats().requests(), 0);
        assert!(d.hist().is_empty());
        // The open row survived the reset: the next touch is a hit.
        d.fetch(line(0), 100_000);
        assert_eq!(d.stats().row_hits, 1);
    }
}
