//! Pluggable main-memory backends below the L2s.
//!
//! The coherence protocol decides *whether* a reference goes to memory;
//! a [`MemoryBackend`] decides *what that fetch costs*. The seam sits
//! exactly where [`crate::system::MemorySystem`] produces a
//! [`HitLevel::Memory`](crate::HitLevel::Memory) outcome: the backend is
//! consulted once per memory fill (and notified of every dirty-victim
//! writeback, which consumes memory bandwidth without stalling anyone),
//! and its answer rides on the outcome as
//! [`AccessOutcome::mem_cycles`](crate::AccessOutcome::mem_cycles) for
//! the CPU model to consume.
//!
//! Two implementations:
//!
//! - [`FlatLatency`] — the default. With no configured cost it returns
//!   `None` and the CPU side keeps charging its constant table entry,
//!   which is *bit-identical* to the pre-backend simulator (the
//!   `mem_backend` differential test holds it to that). With an explicit
//!   cost it stamps every fill, exercising the variable-cost plumbing
//!   with a constant.
//! - [`BankedDram`] — a channels x banks timing model with an open-row
//!   policy, per-bank busy windows and a bounded per-channel request
//!   queue, so latency becomes a function of applied load (the Mess-style
//!   bandwidth–latency curves) instead of a constant.
//!
//! Backends are deterministic state machines over the access stream:
//! identical streams (addresses, kinds, arrival times) produce identical
//! costs, which is what keeps parallel experiment plans bit-identical to
//! serial runs with either backend.

mod dram;
mod flat;

pub use dram::{BankedDram, DramStats};
pub use flat::FlatLatency;

use probes::Histogram;

use crate::addr::Addr;
use crate::config::MemoryConfig;

/// One main-memory timing model below the L2s.
///
/// `now` is the requesting processor's cycle clock at issue. Backends
/// must tolerate non-monotonic `now` values (different processors'
/// clocks interleave): time only ever advances internally.
pub trait MemoryBackend {
    /// Cost in cycles of a demand fill from memory issued at `now`, or
    /// `None` to defer to the caller's flat latency table.
    fn fetch(&mut self, addr: Addr, now: u64) -> Option<u64>;

    /// A dirty-victim writeback issued at `now`: consumes bandwidth and
    /// queue slots, stalls nobody directly.
    fn writeback(&mut self, addr: Addr, now: u64);

    /// Whether the backend's timing depends on request arrival times.
    /// When `false` the driver may skip clock plumbing entirely.
    fn needs_clock(&self) -> bool {
        false
    }

    /// DRAM event counters, if this backend keeps them.
    fn dram_stats(&self) -> Option<&DramStats> {
        None
    }

    /// Per-fill total-latency histogram (queue wait + service), if kept.
    fn queue_hist(&self) -> Option<&Histogram> {
        None
    }

    /// Clears statistics while keeping timing state (open rows, queue
    /// backlog) — the measurement-window contract of
    /// [`MemorySystem::reset_stats`](crate::MemorySystem::reset_stats).
    fn reset_stats(&mut self) {}

    /// Drains the buffered queue-stall episodes `(start, end)` in sim
    /// cycles, for the run-observatory timeline. Backends without a
    /// queue have none.
    fn take_stall_episodes(&mut self) -> Vec<(u64, u64)> {
        Vec::new()
    }
}

/// The backend a [`MemorySystem`](crate::MemorySystem) actually holds:
/// closed enum dispatch keeps the hot path static and the system
/// `Clone`, while the [`MemoryBackend`] trait defines the contract both
/// variants (and external models) implement.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Flat memory (optionally with an explicit constant cost).
    Flat(FlatLatency),
    /// The banked-DRAM timing model.
    Dram(Box<BankedDram>),
}

impl Backend {
    /// Builds the backend a validated [`MemoryConfig`] names.
    pub fn from_config(cfg: &MemoryConfig) -> Self {
        match cfg {
            MemoryConfig::Flat => Backend::Flat(FlatLatency::deferred()),
            MemoryConfig::FlatFixed(cycles) => Backend::Flat(FlatLatency::fixed(*cycles)),
            MemoryConfig::BankedDram(d) => Backend::Dram(Box::new(BankedDram::new(*d))),
        }
    }
}

impl MemoryBackend for Backend {
    #[inline]
    fn fetch(&mut self, addr: Addr, now: u64) -> Option<u64> {
        match self {
            Backend::Flat(b) => b.fetch(addr, now),
            Backend::Dram(b) => b.fetch(addr, now),
        }
    }

    #[inline]
    fn writeback(&mut self, addr: Addr, now: u64) {
        match self {
            Backend::Flat(b) => b.writeback(addr, now),
            Backend::Dram(b) => b.writeback(addr, now),
        }
    }

    fn needs_clock(&self) -> bool {
        match self {
            Backend::Flat(b) => b.needs_clock(),
            Backend::Dram(b) => b.needs_clock(),
        }
    }

    fn dram_stats(&self) -> Option<&DramStats> {
        match self {
            Backend::Flat(b) => b.dram_stats(),
            Backend::Dram(b) => b.dram_stats(),
        }
    }

    fn queue_hist(&self) -> Option<&Histogram> {
        match self {
            Backend::Flat(b) => b.queue_hist(),
            Backend::Dram(b) => b.queue_hist(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            Backend::Flat(b) => b.reset_stats(),
            Backend::Dram(b) => b.reset_stats(),
        }
    }

    fn take_stall_episodes(&mut self) -> Vec<(u64, u64)> {
        match self {
            Backend::Flat(b) => b.take_stall_episodes(),
            Backend::Dram(b) => b.take_stall_episodes(),
        }
    }
}
