//! The constant-latency backend — the pre-backend behavior as a plugin.

use crate::addr::Addr;

use super::MemoryBackend;

/// Flat main memory.
///
/// In its default *deferred* form the backend supplies no cost at all:
/// every fill returns `None` and the CPU model keeps charging its
/// latency-table constant, exactly as before the backend seam existed.
/// The *fixed* form stamps every fill with an explicit constant, which
/// drives the same variable-cost path [`BankedDram`](super::BankedDram)
/// uses — configure it with the table's memory latency and the two forms
/// are bit-identical end to end (the differential test's claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatLatency {
    latency: Option<u64>,
}

impl FlatLatency {
    /// Defers every fill's cost to the caller's latency table.
    pub fn deferred() -> Self {
        FlatLatency { latency: None }
    }

    /// Stamps every fill with a constant `cycles` cost.
    pub fn fixed(cycles: u64) -> Self {
        FlatLatency {
            latency: Some(cycles),
        }
    }
}

impl MemoryBackend for FlatLatency {
    #[inline]
    fn fetch(&mut self, _addr: Addr, _now: u64) -> Option<u64> {
        self.latency
    }

    #[inline]
    fn writeback(&mut self, _addr: Addr, _now: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_supplies_nothing() {
        let mut b = FlatLatency::deferred();
        assert_eq!(b.fetch(Addr(0x40), 0), None);
        assert!(!b.needs_clock());
        assert!(b.dram_stats().is_none());
    }

    #[test]
    fn fixed_supplies_its_constant_at_any_time() {
        let mut b = FlatLatency::fixed(75);
        assert_eq!(b.fetch(Addr(0x40), 0), Some(75));
        assert_eq!(b.fetch(Addr(0x9000), 1 << 40), Some(75));
        b.writeback(Addr(0x40), 5); // no-op, no state
        assert_eq!(b.fetch(Addr(0x40), 6), Some(75));
    }
}
