//! A single set-associative cache with true-LRU replacement.
//!
//! The cache tracks tags and coherence states only (the simulator never
//! stores data). Storage is flattened into contiguous per-set way arrays
//! kept in MRU-first order, so a hit is a short scan and an LRU update is a
//! small rotate — fast enough to stream hundreds of millions of references.
//!
//! Each way is one packed `u64` word, `tag << 3 | state` ([`LineState`]
//! discriminants fit in three bits and `Invalid` is 0, so an empty slot is
//! simply 0). Splitting tags and states into parallel arrays reads more
//! naturally but doubles the *random cache lines* a set walk touches, and
//! on big-footprint shapes (16 L2s of metadata overflow a host L2) those
//! line fetches — not instructions — are what a probe costs.
//!
//! The hot-path contract is *decompose once, reuse everywhere*: callers
//! split an address into its `(set, tag)` key with [`Cache::locate`] and
//! thread that key through [`Cache::touch_at`], [`Cache::insert_at`],
//! [`Cache::set_state_at`] and friends, so a multi-step protocol action
//! (touch, then upgrade; miss, then fill) never re-derives the index and
//! never walks a set twice where one walk suffices. Because every cache in
//! one level of a [`MemorySystem`](crate::system::MemorySystem) shares a
//! geometry, the same key addresses the same line in *all* of them — the
//! snoop paths decompose once per bus transaction, not once per cache.
//!
//! Caches built with [`Cache::with_presence`] additionally carry a per-line
//! presence bitmask maintained by the level above (the memory system uses
//! it to remember which L1s above an inclusive L2 may hold each line, so
//! inclusion invalidations skip processors that never touched it).

use crate::addr::{Addr, LineAddr};
use crate::config::CacheConfig;
use crate::protocol::LineState;

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The victim's line address.
    pub line: LineAddr,
    /// Its state at eviction (dirty states require a writeback).
    pub state: LineState,
    /// The presence mask tracked for the victim ([`Cache::with_presence`]);
    /// `u64::MAX` ("assume everywhere") when tracking is disabled.
    pub presence: u64,
}

/// Bits of a packed way word holding the [`LineState`] discriminant.
const STATE_BITS: u32 = 3;
const STATE_MASK: u64 = (1 << STATE_BITS) - 1;

/// Packs a way word. The tag is the line address above the index bits, so
/// even at the minimum 8-byte block size it fits the remaining 61 bits.
#[inline]
fn pack(tag: u64, state: LineState) -> u64 {
    debug_assert!(tag >> (64 - STATE_BITS) == 0, "tag overflows packed word");
    (tag << STATE_BITS) | state as u64
}

#[inline]
fn word_state(word: u64) -> LineState {
    LineState::from_code(word & STATE_MASK)
}

#[inline]
fn word_tag(word: u64) -> u64 {
    word >> STATE_BITS
}

/// A set-associative, true-LRU cache of coherence states.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    block_bits: u32,
    /// Log2 of the set count, precomputed so `locate`/`line_addr` never
    /// pay a `count_ones` per reference.
    index_bits: u32,
    set_mask: u64,
    ways: usize,
    /// `sets * ways` packed `tag << 3 | state` words, MRU-first within
    /// each set; 0 (tag 0, [`LineState::Invalid`]) is an empty way.
    meta: Vec<u64>,
    /// Optional per-line presence masks (same slot layout as `meta`),
    /// moved with their lines on LRU rotates and cleared on fill and
    /// invalidation. `None` unless built via [`Cache::with_presence`].
    presence: Option<Box<[u64]>>,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        Cache {
            cfg,
            block_bits: cfg.block_bits(),
            index_bits: (sets as u64).trailing_zeros(),
            set_mask: (sets as u64) - 1,
            ways,
            meta: crate::mem::huge_vec(sets * ways, 0), // big caches only; see `crate::mem`
            presence: None,
        }
    }

    /// Creates an empty cache that also tracks a per-line presence mask
    /// (see [`Cache::or_presence_mru`]).
    pub fn with_presence(cfg: CacheConfig) -> Self {
        let mut c = Cache::new(cfg);
        c.presence = Some(vec![0; c.meta.len()].into_boxed_slice());
        c
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Decomposes an address into this geometry's `(set, tag)` key.
    ///
    /// Every cache built from the same [`CacheConfig`] decomposes
    /// identically, so one key drives lookups in a whole bank of caches
    /// (the snoop paths rely on this).
    #[inline]
    pub fn locate(&self, addr: Addr) -> (usize, u64) {
        let line = addr.0 >> self.block_bits;
        ((line & self.set_mask) as usize, line >> self.index_bits)
    }

    /// Recombines a `(set, tag)` key into the raw line index
    /// (`byte address >> block_bits`) — the key the sharer directory is
    /// indexed by.
    #[inline]
    pub fn line_index(&self, set: usize, tag: u64) -> u64 {
        (tag << self.index_bits) | set as u64
    }

    #[inline]
    fn line_addr(&self, set: usize, tag: u64) -> LineAddr {
        // Reconstruct a line address in units of *this cache's* block size,
        // then convert to coherence-unit line addressing via the base().
        Addr(self.line_index(set, tag) << self.block_bits).line()
    }

    /// Finds the slot holding `(set, tag)`, valid lines only.
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        for w in 0..self.ways {
            let word = self.meta[base + w];
            if word_tag(word) == tag && word & STATE_MASK != 0 {
                return Some(base + w);
            }
        }
        None
    }

    /// Looks up `addr` without disturbing LRU order.
    ///
    /// Returns the line's state if present and valid.
    pub fn probe(&self, addr: Addr) -> Option<LineState> {
        let (set, tag) = self.locate(addr);
        self.probe_at(set, tag)
    }

    /// Keyed [`Cache::probe`].
    #[inline]
    pub fn probe_at(&self, set: usize, tag: u64) -> Option<LineState> {
        self.find(set, tag).map(|slot| word_state(self.meta[slot]))
    }

    /// Looks up `addr`, promoting it to MRU on a hit.
    pub fn touch(&mut self, addr: Addr) -> Option<LineState> {
        let (set, tag) = self.locate(addr);
        self.touch_at(set, tag)
    }

    /// Keyed [`Cache::touch`]. After a hit the line occupies the set's
    /// MRU way, which is what makes [`Cache::set_state_mru`] O(1).
    #[inline]
    pub fn touch_at(&mut self, set: usize, tag: u64) -> Option<LineState> {
        let slot = self.find(set, tag)?;
        let st = word_state(self.meta[slot]);
        let base = set * self.ways;
        self.promote(base, slot - base);
        Some(st)
    }

    #[inline]
    fn promote(&mut self, base: usize, way: usize) {
        if way == 0 {
            return;
        }
        let word = self.meta[base + way];
        self.meta.copy_within(base..base + way, base + 1);
        self.meta[base] = word;
        if let Some(p) = &mut self.presence {
            let pv = p[base + way];
            p.copy_within(base..base + way, base + 1);
            p[base] = pv;
        }
    }

    /// Inserts (fills) `addr` with `state`, evicting the LRU way if the set
    /// is full. Returns the evicted line, if any. The filled line becomes
    /// MRU.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already present — fills must
    /// follow a miss.
    pub fn insert(&mut self, addr: Addr, state: LineState) -> Option<Evicted> {
        let (set, tag) = self.locate(addr);
        self.insert_at(set, tag, state)
    }

    /// Keyed [`Cache::insert`]. The filled line's presence mask starts
    /// empty.
    pub fn insert_at(&mut self, set: usize, tag: u64, state: LineState) -> Option<Evicted> {
        debug_assert!(
            self.find(set, tag).is_none(),
            "fill of already-present line (set {set}, tag {tag:#x})"
        );
        let base = set * self.ways;
        // Prefer filling an invalid way (the LRU-most one to keep order tidy).
        let mut victim = self.ways - 1;
        for w in (0..self.ways).rev() {
            if word_state(self.meta[base + w]) == LineState::Invalid {
                victim = w;
                break;
            }
        }
        let old = self.meta[base + victim];
        let evicted = if word_state(old) != LineState::Invalid {
            Some(Evicted {
                line: self.line_addr(set, word_tag(old)),
                state: word_state(old),
                presence: self
                    .presence
                    .as_ref()
                    .map_or(u64::MAX, |p| p[base + victim]),
            })
        } else {
            None
        };
        self.meta[base + victim] = pack(tag, state);
        if let Some(p) = &mut self.presence {
            p[base + victim] = 0;
        }
        self.promote(base, victim);
        evicted
    }

    /// Hints the CPU to pull `set`'s way words toward L1 — the L2 arrays
    /// of a many-processor system overflow the host's caches, and this
    /// fetch is the longest dependent load on the access path. Issued at
    /// access entry so it overlaps the (small, cache-resident) L1 probe.
    /// A hint only; no architectural effect.
    #[inline]
    pub fn prefetch_set(&self, set: usize) {
        // Discarded volatile load, not a prefetch instruction: prefetches
        // whose translation misses the TLB are dropped, and big L2 arrays
        // are where that happens (see `Directory::prefetch`).
        unsafe {
            let p = self.meta.as_ptr().add(set * self.ways);
            std::ptr::read_volatile(p.cast::<u8>());
            crate::mem::prefetch_write(p.cast());
        }
    }

    /// Non-binding variant of [`Cache::prefetch_set`], for speculative
    /// warming well ahead of use (see `MemorySystem::warm`): a plain
    /// prefetch-instruction hint that is free when dropped, where the
    /// volatile-load form above would bind a real load into the
    /// pipeline.
    #[inline]
    pub fn hint_set(&self, set: usize) {
        unsafe {
            let p = self.meta.as_ptr().add(set * self.ways);
            crate::mem::prefetch_hint(p.cast());
        }
    }

    /// The line index ([`Cache::line_index`]) that [`Cache::insert_at`]
    /// would evict from `set` right now, or `None` while a free way
    /// remains. Lets the miss path start fetching eviction-side metadata
    /// (the sharer directory's slot for the victim) before the snoop and
    /// fill that will actually retire it.
    #[inline]
    pub fn victim_line_index(&self, set: usize) -> Option<u64> {
        let base = set * self.ways;
        for w in (0..self.ways).rev() {
            if word_state(self.meta[base + w]) == LineState::Invalid {
                return None;
            }
        }
        Some(self.line_index(set, word_tag(self.meta[base + self.ways - 1])))
    }

    /// Overwrites the state of a present line; returns the old state, or
    /// `None` if the line is not cached.
    pub fn set_state(&mut self, addr: Addr, state: LineState) -> Option<LineState> {
        let (set, tag) = self.locate(addr);
        self.set_state_at(set, tag, state)
    }

    /// Keyed [`Cache::set_state`]. Setting [`LineState::Invalid`] clears
    /// the line's presence mask.
    pub fn set_state_at(&mut self, set: usize, tag: u64, state: LineState) -> Option<LineState> {
        let slot = self.find(set, tag)?;
        let old = word_state(self.meta[slot]);
        self.meta[slot] = pack(tag, state);
        if !state.is_valid() {
            if let Some(p) = &mut self.presence {
                p[slot] = 0;
            }
        }
        Some(old)
    }

    /// Rewrites the state of the line a [`Cache::touch_at`] hit just
    /// promoted to MRU — the O(1) second half of a touch-then-upgrade
    /// (the store path's E→M and S/O→M transitions), replacing what used
    /// to be a second full set walk.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the MRU way does not hold `(set, tag)`.
    #[inline]
    pub fn set_state_mru(&mut self, set: usize, tag: u64, state: LineState) {
        let base = set * self.ways;
        debug_assert!(
            word_state(self.meta[base]).is_valid() && word_tag(self.meta[base]) == tag,
            "set_state_mru without a preceding touch hit"
        );
        self.meta[base] = pack(tag, state);
    }

    /// Reads, transforms and (if changed) rewrites a line's state in one
    /// walk, returning the *old* state — the snoop paths' read-downgrade
    /// in a single probe. `f` must not produce [`LineState::Invalid`]
    /// (use [`Cache::invalidate_at`] for that, which also harvests the
    /// presence mask).
    #[inline]
    pub fn update_at(
        &mut self,
        set: usize,
        tag: u64,
        f: impl FnOnce(LineState) -> LineState,
    ) -> Option<LineState> {
        let slot = self.find(set, tag)?;
        let old = word_state(self.meta[slot]);
        let next = f(old);
        debug_assert!(next.is_valid(), "update_at must not invalidate");
        if next != old {
            self.meta[slot] = pack(tag, next);
        }
        Some(old)
    }

    /// Invalidates a line if present; returns its prior state.
    pub fn invalidate(&mut self, addr: Addr) -> Option<LineState> {
        let (set, tag) = self.locate(addr);
        self.invalidate_at(set, tag).map(|(state, _)| state)
    }

    /// Keyed [`Cache::invalidate`] that also harvests the line's presence
    /// mask (`u64::MAX` when tracking is disabled) — one walk gives the
    /// snoop-write path the old state *and* which upper caches to purge.
    pub fn invalidate_at(&mut self, set: usize, tag: u64) -> Option<(LineState, u64)> {
        let slot = self.find(set, tag)?;
        let old = word_state(self.meta[slot]);
        self.meta[slot] = 0;
        let mask = match &mut self.presence {
            Some(p) => std::mem::take(&mut p[slot]),
            None => u64::MAX,
        };
        Some((old, mask))
    }

    /// ORs `bits` into the MRU line's presence mask (no-op when the cache
    /// does not track presence). The caller must have just touched or
    /// inserted `(set, tag)` so it occupies the MRU way.
    #[inline]
    pub fn or_presence_mru(&mut self, set: usize, tag: u64, bits: u64) {
        let base = set * self.ways;
        let _ = tag;
        if let Some(p) = &mut self.presence {
            debug_assert!(
                word_state(self.meta[base]).is_valid() && word_tag(self.meta[base]) == tag,
                "or_presence_mru without a preceding touch or fill"
            );
            p[base] |= bits;
        }
    }

    /// The presence mask tracked for `addr`, if the cache tracks presence
    /// and holds the line (tests and diagnostics).
    pub fn presence_of(&self, addr: Addr) -> Option<u64> {
        let p = self.presence.as_ref()?;
        let (set, tag) = self.locate(addr);
        self.find(set, tag).map(|slot| p[slot])
    }

    /// Iterates over every valid resident line and its state (O(capacity);
    /// directory audits, tests and diagnostics).
    pub fn resident(&self) -> impl Iterator<Item = (LineAddr, LineState)> + '_ {
        (0..self.meta.len()).filter_map(move |slot| {
            let word = self.meta[slot];
            let st = word_state(word);
            st.is_valid()
                .then(|| (self.line_addr(slot / self.ways, word_tag(word)), st))
        })
    }

    /// Number of valid lines currently resident (O(capacity); for tests and
    /// diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.meta.iter().filter(|w| *w & STATE_MASK != 0).count()
    }

    /// Clears the cache to the empty state.
    pub fn clear(&mut self) {
        self.meta.fill(0);
        if let Some(p) = &mut self.presence {
            p.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B = 256B cache.
        Cache::new(CacheConfig::new(256, 2, 64).unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.probe(Addr(0)), None);
        assert_eq!(c.insert(Addr(0), LineState::Shared), None);
        assert_eq!(c.probe(Addr(0)), Some(LineState::Shared));
        assert_eq!(c.probe(Addr(63)), Some(LineState::Shared), "same line");
        assert_eq!(c.probe(Addr(64)), None, "next line maps to other set");
    }

    #[test]
    fn locate_matches_geometry() {
        let c = Cache::new(CacheConfig::new(1 << 14, 4, 64).unwrap());
        // 64 sets: index bits 6..12, block bits 0..6.
        let (set, tag) = c.locate(Addr(0xdead_b000));
        assert_eq!(set, (0xdead_b000u64 >> 6) as usize & 63);
        assert_eq!(tag, 0xdead_b000u64 >> 12);
        assert_eq!(c.line_index(set, tag), 0xdead_b000u64 >> 6);
    }

    #[test]
    fn keyed_entry_points_agree_with_addressed_ones() {
        let mut a = small();
        let mut b = small();
        let addr = Addr(0x140);
        let (set, tag) = a.locate(addr);
        assert_eq!(a.insert_at(set, tag, LineState::Exclusive), None);
        assert_eq!(b.insert(addr, LineState::Exclusive), None);
        assert_eq!(a.probe_at(set, tag), b.probe(addr));
        assert_eq!(a.touch_at(set, tag), b.touch(addr));
        assert_eq!(
            a.set_state_at(set, tag, LineState::Owned),
            b.set_state(addr, LineState::Owned)
        );
        assert_eq!(
            a.invalidate_at(set, tag).map(|(s, _)| s),
            b.invalidate(addr)
        );
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines whose (line % 2 == 0): byte addrs 0, 128, 256...
        c.insert(Addr(0), LineState::Shared);
        c.insert(Addr(128), LineState::Shared);
        // Touch line 0 so line at 128 becomes LRU.
        assert!(c.touch(Addr(0)).is_some());
        let ev = c.insert(Addr(256), LineState::Shared).unwrap();
        assert_eq!(ev.line, Addr(128).line());
        assert_eq!(c.probe(Addr(0)), Some(LineState::Shared));
        assert_eq!(c.probe(Addr(128)), None);
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = small();
        c.insert(Addr(0), LineState::Modified);
        c.insert(Addr(128), LineState::Shared);
        c.touch(Addr(128));
        let ev = c.insert(Addr(256), LineState::Shared).unwrap();
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(ev.line, Addr(0).line());
    }

    #[test]
    fn invalid_way_preferred_over_eviction() {
        let mut c = small();
        c.insert(Addr(0), LineState::Shared);
        assert_eq!(c.insert(Addr(128), LineState::Shared), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = small();
        c.insert(Addr(0), LineState::Exclusive);
        assert_eq!(
            c.set_state(Addr(0), LineState::Modified),
            Some(LineState::Exclusive)
        );
        assert_eq!(c.probe(Addr(0)), Some(LineState::Modified));
        assert_eq!(c.invalidate(Addr(0)), Some(LineState::Modified));
        assert_eq!(c.probe(Addr(0)), None);
        assert_eq!(c.invalidate(Addr(0)), None);
    }

    #[test]
    fn set_state_mru_rewrites_touched_line() {
        let mut c = small();
        c.insert(Addr(0), LineState::Exclusive);
        c.insert(Addr(128), LineState::Shared);
        let (set, tag) = c.locate(Addr(0));
        assert_eq!(c.touch_at(set, tag), Some(LineState::Exclusive));
        c.set_state_mru(set, tag, LineState::Modified);
        assert_eq!(c.probe(Addr(0)), Some(LineState::Modified));
        assert_eq!(c.probe(Addr(128)), Some(LineState::Shared));
    }

    #[test]
    fn update_at_returns_old_state_in_one_walk() {
        let mut c = small();
        c.insert(Addr(0), LineState::Modified);
        let (set, tag) = c.locate(Addr(0));
        let old = c.update_at(set, tag, |s| s.after_remote_read());
        assert_eq!(old, Some(LineState::Modified));
        assert_eq!(c.probe(Addr(0)), Some(LineState::Owned));
        assert_eq!(c.update_at(set, tag + 1, |s| s), None);
    }

    #[test]
    fn presence_mask_follows_the_line() {
        let mut c = Cache::with_presence(CacheConfig::new(256, 2, 64).unwrap());
        let (set, tag) = c.locate(Addr(0));
        c.insert_at(set, tag, LineState::Exclusive);
        c.or_presence_mru(set, tag, 0b101);
        assert_eq!(c.presence_of(Addr(0)), Some(0b101));
        // A second fill pushes line 0 off MRU; its mask must move with it.
        c.insert(Addr(128), LineState::Shared);
        assert_eq!(c.presence_of(Addr(0)), Some(0b101));
        assert_eq!(c.presence_of(Addr(128)), Some(0));
        // Invalidation harvests and clears the mask.
        assert_eq!(
            c.invalidate_at(set, tag),
            Some((LineState::Exclusive, 0b101))
        );
        assert_eq!(c.presence_of(Addr(0)), None);
    }

    #[test]
    fn eviction_carries_presence_and_untracked_caches_report_full() {
        let mut c = Cache::with_presence(CacheConfig::new(256, 2, 64).unwrap());
        c.insert(Addr(0), LineState::Shared);
        let (set, tag) = c.locate(Addr(0));
        c.or_presence_mru(set, tag, 0b11);
        c.insert(Addr(128), LineState::Shared);
        c.touch(Addr(128));
        let ev = c.insert(Addr(256), LineState::Shared).unwrap();
        assert_eq!(ev.line, Addr(0).line());
        assert_eq!(ev.presence, 0b11);

        let mut plain = small();
        plain.insert(Addr(0), LineState::Shared);
        let (set, tag) = plain.locate(Addr(0));
        assert_eq!(
            plain.invalidate_at(set, tag),
            Some((LineState::Shared, u64::MAX))
        );
    }

    #[test]
    fn resident_iterates_valid_lines() {
        let mut c = small();
        c.insert(Addr(0), LineState::Modified);
        c.insert(Addr(64), LineState::Shared);
        let mut lines: Vec<_> = c.resident().collect();
        lines.sort_by_key(|&(line, _)| line);
        assert_eq!(
            lines,
            vec![
                (Addr(0).line(), LineState::Modified),
                (Addr(64).line(), LineState::Shared)
            ]
        );
    }

    #[test]
    fn evicted_line_address_reconstructed() {
        let mut c = Cache::new(CacheConfig::new(1 << 14, 4, 64).unwrap());
        let addr = Addr(0xdead_b000);
        c.insert(addr, LineState::Owned);
        // Fill the same set with conflicting lines to force eviction.
        let sets = c.config().sets();
        let stride = sets * 64;
        let mut evicted = None;
        for i in 1..=4 {
            evicted = c.insert(Addr(addr.0 + i * stride), LineState::Shared);
            if evicted.is_some() {
                break;
            }
        }
        assert_eq!(evicted.unwrap().line, addr.line());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = small();
        c.insert(Addr(0), LineState::Modified);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
    }
}
