//! A single set-associative cache with true-LRU replacement.
//!
//! The cache tracks tags and coherence states only (the simulator never
//! stores data). Storage is flattened into contiguous per-set way arrays
//! kept in MRU-first order, so a hit is a short scan and an LRU update is a
//! small rotate — fast enough to stream hundreds of millions of references.

use crate::addr::{Addr, LineAddr};
use crate::config::CacheConfig;
use crate::protocol::LineState;

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The victim's line address.
    pub line: LineAddr,
    /// Its state at eviction (dirty states require a writeback).
    pub state: LineState,
}

/// A set-associative, true-LRU cache of coherence states.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    block_bits: u32,
    set_mask: u64,
    ways: usize,
    /// `sets * ways` tags, MRU-first within each set. The tag stored is the
    /// full line-address-above-index (block and index bits removed).
    tags: Vec<u64>,
    states: Vec<LineState>,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        Cache {
            cfg,
            block_bits: cfg.block_bits(),
            set_mask: (sets as u64) - 1,
            ways,
            tags: vec![0; sets * ways],
            states: vec![LineState::Invalid; sets * ways],
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.0 >> self.block_bits;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        (set, tag)
    }

    #[inline]
    fn line_addr(&self, set: usize, tag: u64) -> LineAddr {
        // Reconstruct a line address in units of *this cache's* block size,
        // then convert to coherence-unit line addressing via the base().
        let line = (tag << self.set_mask.count_ones()) | set as u64;
        Addr(line << self.block_bits).line()
    }

    /// Looks up `addr` without disturbing LRU order.
    ///
    /// Returns the line's state if present and valid.
    pub fn probe(&self, addr: Addr) -> Option<LineState> {
        let (set, tag) = self.index_tag(addr);
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.states[base + w].is_valid() && self.tags[base + w] == tag {
                return Some(self.states[base + w]);
            }
        }
        None
    }

    /// Looks up `addr`, promoting it to MRU on a hit.
    pub fn touch(&mut self, addr: Addr) -> Option<LineState> {
        let (set, tag) = self.index_tag(addr);
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.states[base + w].is_valid() && self.tags[base + w] == tag {
                let st = self.states[base + w];
                self.promote(base, w);
                return Some(st);
            }
        }
        None
    }

    #[inline]
    fn promote(&mut self, base: usize, way: usize) {
        if way == 0 {
            return;
        }
        let tag = self.tags[base + way];
        let st = self.states[base + way];
        self.tags.copy_within(base..base + way, base + 1);
        self.states.copy_within(base..base + way, base + 1);
        self.tags[base] = tag;
        self.states[base] = st;
    }

    /// Inserts (fills) `addr` with `state`, evicting the LRU way if the set
    /// is full. Returns the evicted line, if any. The filled line becomes
    /// MRU.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already present — fills must
    /// follow a miss.
    pub fn insert(&mut self, addr: Addr, state: LineState) -> Option<Evicted> {
        debug_assert!(
            self.probe(addr).is_none(),
            "fill of already-present line {addr}"
        );
        let (set, tag) = self.index_tag(addr);
        let base = set * self.ways;
        // Prefer filling an invalid way (the LRU-most one to keep order tidy).
        let mut victim = self.ways - 1;
        for w in (0..self.ways).rev() {
            if !self.states[base + w].is_valid() {
                victim = w;
                break;
            }
        }
        let evicted = if self.states[base + victim].is_valid() {
            Some(Evicted {
                line: self.line_addr(set, self.tags[base + victim]),
                state: self.states[base + victim],
            })
        } else {
            None
        };
        self.tags[base + victim] = tag;
        self.states[base + victim] = state;
        self.promote(base, victim);
        evicted
    }

    /// Overwrites the state of a present line; returns the old state, or
    /// `None` if the line is not cached.
    pub fn set_state(&mut self, addr: Addr, state: LineState) -> Option<LineState> {
        let (set, tag) = self.index_tag(addr);
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.states[base + w].is_valid() && self.tags[base + w] == tag {
                let old = self.states[base + w];
                self.states[base + w] = state;
                return Some(old);
            }
        }
        None
    }

    /// Invalidates a line if present; returns its prior state.
    pub fn invalidate(&mut self, addr: Addr) -> Option<LineState> {
        self.set_state(addr, LineState::Invalid)
            .filter(|s| s.is_valid())
    }

    /// Number of valid lines currently resident (O(capacity); for tests and
    /// diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.states.iter().filter(|s| s.is_valid()).count()
    }

    /// Clears the cache to the empty state.
    pub fn clear(&mut self) {
        self.states.fill(LineState::Invalid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B = 256B cache.
        Cache::new(CacheConfig::new(256, 2, 64).unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.probe(Addr(0)), None);
        assert_eq!(c.insert(Addr(0), LineState::Shared), None);
        assert_eq!(c.probe(Addr(0)), Some(LineState::Shared));
        assert_eq!(c.probe(Addr(63)), Some(LineState::Shared), "same line");
        assert_eq!(c.probe(Addr(64)), None, "next line maps to other set");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines whose (line % 2 == 0): byte addrs 0, 128, 256...
        c.insert(Addr(0), LineState::Shared);
        c.insert(Addr(128), LineState::Shared);
        // Touch line 0 so line at 128 becomes LRU.
        assert!(c.touch(Addr(0)).is_some());
        let ev = c.insert(Addr(256), LineState::Shared).unwrap();
        assert_eq!(ev.line, Addr(128).line());
        assert_eq!(c.probe(Addr(0)), Some(LineState::Shared));
        assert_eq!(c.probe(Addr(128)), None);
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = small();
        c.insert(Addr(0), LineState::Modified);
        c.insert(Addr(128), LineState::Shared);
        c.touch(Addr(128));
        let ev = c.insert(Addr(256), LineState::Shared).unwrap();
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(ev.line, Addr(0).line());
    }

    #[test]
    fn invalid_way_preferred_over_eviction() {
        let mut c = small();
        c.insert(Addr(0), LineState::Shared);
        assert_eq!(c.insert(Addr(128), LineState::Shared), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = small();
        c.insert(Addr(0), LineState::Exclusive);
        assert_eq!(
            c.set_state(Addr(0), LineState::Modified),
            Some(LineState::Exclusive)
        );
        assert_eq!(c.probe(Addr(0)), Some(LineState::Modified));
        assert_eq!(c.invalidate(Addr(0)), Some(LineState::Modified));
        assert_eq!(c.probe(Addr(0)), None);
        assert_eq!(c.invalidate(Addr(0)), None);
    }

    #[test]
    fn evicted_line_address_reconstructed() {
        let mut c = Cache::new(CacheConfig::new(1 << 14, 4, 64).unwrap());
        let addr = Addr(0xdead_b000);
        c.insert(addr, LineState::Owned);
        // Fill the same set with conflicting lines to force eviction.
        let sets = c.config().sets();
        let stride = sets * 64;
        let mut evicted = None;
        for i in 1..=4 {
            evicted = c.insert(Addr(addr.0 + i * stride), LineState::Shared);
            if evicted.is_some() {
                break;
            }
        }
        assert_eq!(evicted.unwrap().line, addr.line());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = small();
        c.insert(Addr(0), LineState::Modified);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
    }
}
