//! Best-effort huge-page advice for the simulator's big flat arrays.
//!
//! The L2 metadata arrays and the sharer directory's slot table are a few
//! megabytes each and are accessed at random, so with 4 KB pages nearly
//! every touch also risks a TLB miss — and x86 silently drops software
//! prefetches whose translation misses, which defeats the access path's
//! latency-hiding (see `Directory::prefetch` / `Cache::prefetch_set`).
//! Backing the arrays with 2 MB pages removes that pressure: the whole
//! working set maps with a handful of entries.
//!
//! Hosts commonly ship transparent huge pages in `madvise` mode, where
//! only regions that ask get them, so we ask — *before* first touch,
//! because the kernel materializes huge pages at fault time and only
//! slowly collapses already-faulted small pages. The request is advisory
//! in every sense: the kernel may ignore it, and on other platforms the
//! function compiles to nothing. Behavior is identical either way.

/// Advises the kernel to back the allocation at `ptr..ptr+size` with huge
/// pages (`MADV_HUGEPAGE`). Call right after allocating, before writing.
/// Returns the raw syscall result (0 on success) for diagnostics; callers
/// are free to ignore it — this is purely a performance hint.
pub(crate) fn advise_huge_raw(ptr: *const u8, size: usize) -> isize {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe {
        if size < (2 << 20) {
            return 0; // smaller than one huge page; nothing to gain
        }
        const PAGE: usize = 4096;
        const SYS_MADVISE: usize = 28;
        const MADV_HUGEPAGE: usize = 14;
        let start = ptr as usize & !(PAGE - 1);
        let len = ptr as usize + size - start;
        let ret: isize;
        // Raw syscall keeps the workspace dependency-free; clobbers per
        // the x86-64 Linux syscall ABI (rcx/r11 smashed by `syscall`).
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE => ret,
            in("rdi") start,
            in("rsi") len,
            in("rdx") MADV_HUGEPAGE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
        ret
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = (ptr, size);
        0
    }
}

/// Hints the CPU to pull the cache line at `p` into this core in
/// *writable* (exclusive) state. The simulator's metadata touches almost
/// always write — directory slots on every residency change, LRU stacks
/// on every hit — so fetching the line shared (as the preceding volatile
/// read does) would pay a second coherence round-trip for the ownership
/// upgrade. `PREFETCHW` starts that upgrade early; CPUs without the
/// feature have always executed the opcode as a NOP, so no detection is
/// needed. Issued *after* a real load of the same line: by then the
/// translation is warm, so the (droppable) prefetch actually runs.
///
/// # Safety
///
/// `p` must be a valid address (it is dereferenced by the preceding
/// volatile load in all callers; the prefetch itself cannot fault).
#[inline]
pub(crate) unsafe fn prefetch_write(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!("prefetchw [{0}]", in(reg) p, options(nostack, preserves_flags, readonly));
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// Allocates a `len`-element vector filled with `value`, advising huge
/// pages on the backing memory before the fill touches it.
pub(crate) fn huge_vec<T: Clone>(len: usize, value: T) -> Vec<T> {
    let mut v = Vec::with_capacity(len);
    let _ = advise_huge_raw(v.as_ptr() as *const u8, len * std::mem::size_of::<T>());
    v.resize(len, value);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advice_applies_to_large_allocations() {
        let v: Vec<u64> = Vec::with_capacity(1 << 20); // 8 MB untouched
        let ret = advise_huge_raw(v.as_ptr() as *const u8, (1 << 20) * 8);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(ret, 0, "madvise(MADV_HUGEPAGE) rejected");
        let _ = ret;
    }

    #[test]
    fn huge_vec_is_filled() {
        let v = huge_vec(1 << 19, 0xABu8);
        assert_eq!(v.len(), 1 << 19);
        assert!(v.iter().all(|&b| b == 0xAB));
    }
}

/// Non-binding prefetch of the cache line at `p`, fetch plus write-intent
/// upgrade. Unlike the volatile-load scheme above, this never adds a real
/// load to the pipeline: the CPU is free to drop the hint (and will, when
/// the page translation is cold), which is the right trade for
/// *speculative* warming issued well before — or without — a matching
/// access. Use the volatile form when the fetch must happen; use this
/// when it merely may help.
///
/// # Safety
///
/// `p` must point into a live allocation (prefetches of unmapped
/// addresses don't fault, but handing the hint a wild pointer serves no
/// purpose).
#[inline]
pub(crate) unsafe fn prefetch_hint(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "prefetcht0 [{0}]",
            "prefetchw [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}
