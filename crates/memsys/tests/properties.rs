//! Randomized verification of the cache and coherence models against
//! naive reference implementations, driven by the in-tree seeded PRNG.

use prng::SimRng;

use memsys::{
    AccessKind, Addr, AddrRange, Cache, CacheConfig, HierarchyConfig, LineState, MemorySystem,
};

/// A reference model of a set-associative LRU cache: per-set vectors in
/// MRU order, implemented as naively as possible.
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block_bits: u32,
    set_bits: u32,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); cfg.sets() as usize],
            ways: cfg.ways as usize,
            block_bits: cfg.block_bits(),
            set_bits: cfg.sets().trailing_zeros(),
        }
    }

    /// Returns whether the access hit, applying LRU update / fill.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.block_bits;
        let set = (line & ((1 << self.set_bits) - 1)) as usize;
        let tag = line >> self.set_bits;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.insert(0, tag);
            true
        } else {
            if s.len() == self.ways {
                s.pop();
            }
            s.insert(0, tag);
            false
        }
    }
}

/// The production cache and the naive reference model agree on every
/// hit/miss over arbitrary access streams.
#[test]
fn cache_matches_reference_lru() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = rng.gen_range(1..600usize);
        let cfg = CacheConfig::new(2048, 4, 64).unwrap();
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for _ in 0..n {
            let a = rng.gen_range(0..(1u64 << 14));
            let hit = cache.touch(Addr(a)).is_some();
            if !hit {
                let _ = cache.insert(Addr(a), LineState::Shared);
            }
            let ref_hit = reference.access(a);
            assert_eq!(hit, ref_hit, "seed {seed}: divergence at {a:#x}");
        }
    }
}

/// Coherence single-writer invariant: after any access stream, no line
/// is dirty/exclusive in one L2 while valid in another.
#[test]
fn single_writer_invariant() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = rng.gen_range(1..400usize);
        let mut sys = MemorySystem::e6000(4).unwrap();
        let mut touched = std::collections::HashSet::new();
        for _ in 0..n {
            let cpu = rng.gen_range(0..4usize);
            let kind = if rng.gen_bool(0.5) {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            let addr = Addr(rng.gen_range(0..64u64) * 64);
            touched.insert(addr);
            sys.access(cpu, kind, addr);
        }
        for &addr in &touched {
            let states = sys.l2_states(addr);
            let exclusive_holders = states
                .iter()
                .filter(|s| matches!(s, LineState::Modified | LineState::Exclusive))
                .count();
            let valid_holders = states.iter().filter(|s| s.is_valid()).count();
            assert!(
                exclusive_holders <= 1,
                "seed {seed}: two exclusive holders of {addr}: {states:?}"
            );
            if exclusive_holders == 1 {
                assert_eq!(
                    valid_holders, 1,
                    "seed {seed}: M/E must be the only copy of {addr}: {states:?}"
                );
            }
            let owners = states
                .iter()
                .filter(|s| matches!(s, LineState::Owned))
                .count();
            assert!(owners <= 1, "seed {seed}: two owners of {addr}: {states:?}");
        }
    }
}

/// L1 inclusion: an L1 never holds a line its L2 group lost.
#[test]
fn l1_inclusion_invariant() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = rng.gen_range(1..500usize);
        // Tiny L2s to force evictions.
        let mut b = HierarchyConfig::builder(2);
        b.l2(CacheConfig::new(1024, 2, 64).unwrap());
        b.l1i(CacheConfig::new(256, 2, 64).unwrap());
        b.l1d(CacheConfig::new(256, 2, 64).unwrap());
        let mut sys = MemorySystem::new(b.build().unwrap());
        let mut touched = std::collections::HashSet::new();
        for _ in 0..n {
            let cpu = rng.gen_range(0..2usize);
            let kind = if rng.gen_bool(0.5) {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            let addr = Addr(rng.gen_range(0..512u64) * 64);
            touched.insert(addr);
            sys.access(cpu, kind, addr);
        }
        let cfg = *sys.config();
        for &addr in &touched {
            let states = sys.l2_states(addr);
            for cpu in 0..2 {
                if sys.l1_holds(cpu, addr) {
                    let group = cfg.l2_group(cpu);
                    assert!(
                        states[group].is_valid(),
                        "seed {seed}: L1 of cpu {cpu} holds {addr} but its L2 lost it"
                    );
                }
            }
        }
    }
}

/// Miss accounting: l1 misses >= l2 misses, c2c <= l2 misses, and
/// accesses add up.
#[test]
fn counter_consistency() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = rng.gen_range(1..500usize);
        let mut sys = MemorySystem::e6000(4).unwrap();
        for _ in 0..n {
            let cpu = rng.gen_range(0..4usize);
            let kind = match rng.gen_range(0..3u32) {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => AccessKind::Ifetch,
            };
            sys.access(cpu, kind, Addr(rng.gen_range(0..256u64) * 64));
        }
        let st = sys.stats();
        assert_eq!(st.total_accesses(), n as u64);
        for k in [&st.ifetch, &st.load, &st.store] {
            assert!(k.l1_misses <= k.accesses);
            assert!(k.l2_misses <= k.l1_misses);
            assert!(k.c2c <= k.l2_misses);
        }
        let per_cpu: u64 = st.l2_misses_by_cpu.iter().sum();
        assert_eq!(per_cpu, st.total_l2_misses());
    }
}

/// AddrRange::take splits a range into disjoint, exhaustive pieces.
#[test]
fn range_take_partitions() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let start = rng.gen_range(0..1_000_000u64);
        let n = rng.gen_range(1..20usize);
        let lens: Vec<u64> = (0..n).map(|_| rng.gen_range(1..4096u64)).collect();
        let total: u64 = lens.iter().sum();
        let mut range = AddrRange::new(Addr(start), total);
        let mut cursor = start;
        for &len in &lens {
            let piece = range.take(len).expect("sized exactly");
            assert_eq!(piece.start(), Addr(cursor));
            assert_eq!(piece.len(), len);
            cursor += len;
        }
        assert!(range.is_empty());
    }
}
