//! Zipf-distributed key sampling.
//!
//! Database record popularity in transaction workloads is heavily skewed
//! (a few customers/items are hot, most are cold). The skew is what gives
//! data-cache miss-rate curves their slope between the L1 and the full
//! data-set size: popular records become cache-resident at intermediate
//! capacities. [`ZipfSampler`] draws indices `0..n` with probability
//! proportional to `1/(i+1)^s`.

use prng::SimRng;

/// A precomputed Zipf sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and non-negative
    /// (`s = 0` degenerates to uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut sum = 0.0;
        for i in 0..n {
            sum += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(sum);
        }
        for c in &mut cumulative {
            *c /= sum;
        }
        ZipfSampler { cumulative }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the domain is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws an index; `0` is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.gen_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_indices() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut head = 0;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        let frac = head as f64 / N as f64;
        assert!(frac > 0.3, "top-1% of keys should draw >30%: {frac}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfSampler::new(7, 1.5);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
