//! # workloads — executable models of SPECjbb2000 and ECperf
//!
//! The subject half of the reproduction: mechanistic models of the two
//! Java-middleware benchmarks the paper characterizes, built on the
//! [`jvm`] and [`sysos`] substrates and emitting their memory behavior
//! through [`memsys::MemSink`]s.
//!
//! - [`model`] — the engine-facing execution protocol (threads, steps,
//!   locks, GC safepoints);
//! - [`objtree`] — B-trees of simulated heap objects (SPECjbb's emulated
//!   database);
//! - [`methodset`] / [`zipf`] — code-path and key-popularity skew;
//! - [`specjbb`] — warehouses, TPC-C-like transaction mix, global
//!   company statistics;
//! - [`ecperf`] — the 3-tier middle-tier model: servlets, EJB-style
//!   entity beans, an application server with thread pooling, database
//!   connection pooling and object-level caching, kernel messaging to the
//!   database tier and supplier emulator.

pub mod ecperf;
pub mod methodset;
pub mod model;
pub mod objtree;
pub(crate) mod regions;
pub mod specjbb;
pub mod zipf;

pub use methodset::MethodSet;
pub use model::{Control, LockDesc, SchedLock, StepCtx, StepResult, WaitKind, Workload};
pub use objtree::{build_table, ObjTree};
pub use zipf::ZipfSampler;
