//! B-trees of simulated heap objects — SPECjbb's in-memory database.
//!
//! SPECjbb "stores its data in memory as trees of Java objects" instead of
//! using a database engine (Section 2.1). [`ObjTree`] is a real B-tree
//! whose nodes and records are objects in the simulated [`Heap`]: lookups
//! walk interior-node objects and read the record object, inserts may
//! split nodes (allocating new node objects), and every traversal emits
//! its references through a [`MemSink`]. The paper's observation that the
//! object trees "are updated sparsely enough that they rarely result in
//! cache-to-cache transfers" (Section 5.2) then falls out of the access
//! pattern rather than being assumed.

use jvm::heap::Heap;
use jvm::object::ObjectId;
use memsys::MemSink;

/// B-tree fanout (keys per interior node).
const FANOUT: usize = 16;

/// Bytes per interior-node object (keys + child pointers + header).
const NODE_BYTES: u32 = 256;

/// Instructions per node visited during descent (compares + branch).
const DESCENT_INSTRUCTIONS: u64 = 30;

/// One B-tree node: either interior (children) or leaf (records).
#[derive(Debug, Clone)]
enum Node {
    Interior {
        keys: Vec<u64>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<u64>,
        records: Vec<ObjectId>,
    },
}

/// A B-tree keyed by `u64` mapping to record objects in the heap.
///
/// The tree's *structure* (keys, child indices) lives in the simulator for
/// speed, but every node also owns a heap object whose lines are read
/// during descent, so the memory system sees the traversal.
#[derive(Debug, Clone)]
pub struct ObjTree {
    nodes: Vec<Node>,
    /// Heap object backing each node.
    node_objs: Vec<ObjectId>,
    root: usize,
    len: usize,
}

impl ObjTree {
    /// Creates an empty tree with its root node allocated in the old
    /// generation of `heap` (trees are long-lived database structure).
    pub fn new(heap: &mut Heap) -> Self {
        let root_obj = heap.alloc_permanent_old(NODE_BYTES);
        ObjTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                records: Vec::new(),
            }],
            node_objs: vec![root_obj],
            root: 0,
            len: 0,
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of B-tree nodes (interior + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Walks from the root to the leaf responsible for `key`, emitting a
    /// read of the first line of every node object visited. Returns the
    /// leaf index.
    fn descend(&self, key: u64, heap: &Heap, sink: &mut (impl MemSink + ?Sized)) -> usize {
        let mut idx = self.root;
        loop {
            sink.instructions(DESCENT_INSTRUCTIONS);
            sink.load(heap.addr_of(self.node_objs[idx]));
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Interior { keys, children } => {
                    let pos = keys.partition_point(|&k| k <= key);
                    idx = children[pos];
                }
            }
        }
    }

    /// Looks up `key`, reading the record object on a hit.
    pub fn lookup(
        &self,
        key: u64,
        heap: &Heap,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Option<ObjectId> {
        let leaf = self.descend(key, heap, sink);
        let Node::Leaf { keys, records } = &self.nodes[leaf] else {
            unreachable!("descend returns a leaf");
        };
        let pos = keys.binary_search(&key).ok()?;
        let rec = records[pos];
        heap.read_object(rec, sink);
        Some(rec)
    }

    /// Inserts `key -> record`, splitting nodes as needed. New nodes
    /// allocate node objects in the old generation (tree structure is
    /// permanent) and emit their initialization writes.
    ///
    /// Returns the previous record for the key, if any.
    pub fn insert(
        &mut self,
        key: u64,
        record: ObjectId,
        heap: &mut Heap,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Option<ObjectId> {
        let leaf = self.descend(key, heap, sink);
        // Write the leaf node object (the update itself).
        sink.store(heap.addr_of(self.node_objs[leaf]));
        let Node::Leaf { keys, records } = &mut self.nodes[leaf] else {
            unreachable!("descend returns a leaf");
        };
        match keys.binary_search(&key) {
            Ok(pos) => {
                let old = records[pos];
                records[pos] = record;
                return Some(old);
            }
            Err(pos) => {
                keys.insert(pos, key);
                records.insert(pos, record);
                self.len += 1;
            }
        }
        if let Node::Leaf { keys, .. } = &self.nodes[leaf] {
            if keys.len() > 2 * FANOUT {
                self.split_leaf(leaf, heap, sink);
            }
        }
        None
    }

    fn split_leaf(&mut self, leaf: usize, heap: &mut Heap, sink: &mut (impl MemSink + ?Sized)) {
        let (up_key, right) = {
            let Node::Leaf { keys, records } = &mut self.nodes[leaf] else {
                unreachable!("split target is a leaf");
            };
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid);
            let right_records = records.split_off(mid);
            (
                right_keys[0],
                Node::Leaf {
                    keys: right_keys,
                    records: right_records,
                },
            )
        };
        let right_idx = self.nodes.len();
        self.nodes.push(right);
        let node_obj = heap.alloc_permanent_old(NODE_BYTES);
        heap.write_object(node_obj, sink);
        self.node_objs.push(node_obj);
        self.insert_into_parent(leaf, up_key, right_idx, heap, sink);
    }

    fn insert_into_parent(
        &mut self,
        left: usize,
        key: u64,
        right: usize,
        heap: &mut Heap,
        sink: &mut (impl MemSink + ?Sized),
    ) {
        if left == self.root {
            // Grow a new root.
            let new_root = self.nodes.len();
            self.nodes.push(Node::Interior {
                keys: vec![key],
                children: vec![left, right],
            });
            let obj = heap.alloc_permanent_old(NODE_BYTES);
            heap.write_object(obj, sink);
            self.node_objs.push(obj);
            self.root = new_root;
            return;
        }
        let parent = self
            .parent_of(self.root, left)
            .expect("non-root node has a parent");
        sink.store(heap.addr_of(self.node_objs[parent]));
        let Node::Interior { keys, children } = &mut self.nodes[parent] else {
            unreachable!("parent is interior");
        };
        let pos = keys.partition_point(|&k| k <= key);
        keys.insert(pos, key);
        children.insert(pos + 1, right);
        if keys.len() > 2 * FANOUT {
            self.split_interior(parent, heap, sink);
        }
    }

    fn split_interior(&mut self, node: usize, heap: &mut Heap, sink: &mut (impl MemSink + ?Sized)) {
        let (up_key, right) = {
            let Node::Interior { keys, children } = &mut self.nodes[node] else {
                unreachable!("split target is interior");
            };
            let mid = keys.len() / 2;
            let up = keys[mid];
            let right_keys = keys.split_off(mid + 1);
            keys.pop();
            let right_children = children.split_off(mid + 1);
            (
                up,
                Node::Interior {
                    keys: right_keys,
                    children: right_children,
                },
            )
        };
        let right_idx = self.nodes.len();
        self.nodes.push(right);
        let obj = heap.alloc_permanent_old(NODE_BYTES);
        heap.write_object(obj, sink);
        self.node_objs.push(obj);
        self.insert_into_parent(node, up_key, right_idx, heap, sink);
    }

    /// Finds the parent of `target` under `node` (O(n) — used only on the
    /// rare split path).
    fn parent_of(&self, node: usize, target: usize) -> Option<usize> {
        match &self.nodes[node] {
            Node::Leaf { .. } => None,
            Node::Interior { children, .. } => {
                if children.contains(&target) {
                    return Some(node);
                }
                children.iter().find_map(|&c| self.parent_of(c, target))
            }
        }
    }

    /// Removes `key`, returning its record. Leaves are allowed to
    /// underflow (no rebalancing — deletions in these workloads are rare
    /// retirements, matching SPECjbb's order-delivery pattern).
    pub fn remove(
        &mut self,
        key: u64,
        heap: &Heap,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Option<ObjectId> {
        let leaf = self.descend(key, heap, sink);
        sink.store(heap.addr_of(self.node_objs[leaf]));
        let Node::Leaf { keys, records } = &mut self.nodes[leaf] else {
            unreachable!("descend returns a leaf");
        };
        let pos = keys.binary_search(&key).ok()?;
        keys.remove(pos);
        self.len -= 1;
        Some(records.remove(pos))
    }

    /// Visits every record (table scan), reading each record object.
    pub fn scan(
        &self,
        heap: &Heap,
        sink: &mut (impl MemSink + ?Sized),
        mut f: impl FnMut(u64, ObjectId),
    ) {
        for node in &self.nodes {
            if let Node::Leaf { keys, records } = node {
                for (k, r) in keys.iter().zip(records) {
                    heap.read_object(*r, sink);
                    f(*k, *r);
                }
            }
        }
    }
}

/// Builds a tree pre-populated with `count` records of `record_bytes`
/// each, keyed 0..count (bulk database construction).
pub fn build_table(
    heap: &mut Heap,
    count: u64,
    record_bytes: u32,
    sink: &mut (impl MemSink + ?Sized),
) -> ObjTree {
    let mut tree = ObjTree::new(heap);
    for key in 0..count {
        let rec = heap.alloc_permanent_old(record_bytes);
        tree.insert(key, rec, heap, sink);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm::heap::{HeapConfig, HeapGeometry};
    use memsys::{Addr, AddrRange, CountingSink};

    fn heap() -> Heap {
        Heap::new(
            HeapConfig {
                geometry: HeapGeometry {
                    eden: 1 << 20,
                    survivor: 256 << 10,
                    old: 64 << 20,
                },
                tenure_age: 1,
                tlab_bytes: 8 << 10,
            },
            AddrRange::new(Addr(0x4000_0000), 128 << 20),
        )
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut t = ObjTree::new(&mut h);
        let rec = h.alloc_permanent_old(128);
        assert_eq!(t.insert(42, rec, &mut h, &mut sink), None);
        assert_eq!(t.lookup(42, &h, &mut sink), Some(rec));
        assert_eq!(t.lookup(43, &h, &mut sink), None);
    }

    #[test]
    fn bulk_build_is_consistent() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let t = build_table(&mut h, 5000, 128, &mut sink);
        assert_eq!(t.len(), 5000);
        for key in [0u64, 1, 999, 2500, 4999] {
            assert!(t.lookup(key, &h, &mut sink).is_some(), "missing {key}");
        }
        assert!(t.lookup(5000, &h, &mut sink).is_none());
        assert!(t.node_count() > 100, "tree must actually branch");
    }

    #[test]
    fn duplicate_insert_replaces_and_returns_old() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut t = ObjTree::new(&mut h);
        let a = h.alloc_permanent_old(64);
        let b = h.alloc_permanent_old(64);
        t.insert(7, a, &mut h, &mut sink);
        assert_eq!(t.insert(7, b, &mut h, &mut sink), Some(a));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(7, &h, &mut sink), Some(b));
    }

    #[test]
    fn remove_deletes_records() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut t = build_table(&mut h, 100, 64, &mut sink);
        assert!(t.remove(50, &h, &mut sink).is_some());
        assert_eq!(t.lookup(50, &h, &mut sink), None);
        assert_eq!(t.len(), 99);
        assert!(t.remove(50, &h, &mut sink).is_none());
    }

    #[test]
    fn lookup_emits_descent_reads() {
        let mut h = heap();
        let mut build_sink = CountingSink::new();
        let t = build_table(&mut h, 10_000, 64, &mut build_sink);
        let mut sink = CountingSink::new();
        t.lookup(1234, &h, &mut sink);
        // Root + at least one interior level + leaf + record lines.
        assert!(sink.loads >= 4, "descent reads: {}", sink.loads);
        assert!(sink.instructions >= 3 * 30);
    }

    #[test]
    fn scan_visits_everything() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let t = build_table(&mut h, 500, 64, &mut sink);
        let mut seen = 0;
        t.scan(&h, &mut sink, |_, _| seen += 1);
        assert_eq!(seen, 500);
    }

    #[test]
    fn ascending_and_random_order_inserts_agree() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut t = ObjTree::new(&mut h);
        let mut keys: Vec<u64> = (0..2000).collect();
        prng::SimRng::seed_from_u64(7).shuffle(&mut keys);
        for &k in &keys {
            let rec = h.alloc_permanent_old(64);
            t.insert(k, rec, &mut h, &mut sink);
        }
        assert_eq!(t.len(), 2000);
        for k in 0..2000 {
            assert!(t.lookup(k, &h, &mut sink).is_some(), "missing {k}");
        }
    }
}
