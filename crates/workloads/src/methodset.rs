//! Method-popularity model: which compiled code a transaction executes.
//!
//! A workload's instruction working set is determined by how much hot
//! compiled code its transactions walk. Real method execution frequency is
//! heavily skewed, so a [`MethodSet`] installs `count` methods into the
//! [`CodeCache`] and samples calls from a Zipf distribution: a few very
//! hot methods dominate, with a long warm tail. ECperf — servlets + EJB
//! container + application-server plumbing — installs several times more
//! code than SPECjbb, which is the entire mechanism behind the paper's
//! Figure 12 instruction-cache gap.

use jvm::codecache::{CodeCache, MethodId};
use memsys::MemSink;
use prng::SimRng;

/// A set of installed methods with Zipf-skewed call popularity.
#[derive(Debug, Clone)]
pub struct MethodSet {
    methods: Vec<MethodId>,
    /// Cumulative popularity, ascending to 1.0.
    cumulative: Vec<f64>,
}

impl MethodSet {
    /// Installs `count` methods of roughly `avg_bytes` each (sizes vary
    /// x0.25–x4 deterministically) with Zipf exponent `zipf_s`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `zipf_s` is not finite and positive.
    pub fn install(code: &mut CodeCache, count: usize, avg_bytes: u64, zipf_s: f64) -> Self {
        assert!(count > 0, "a method set needs at least one method");
        assert!(
            zipf_s.is_finite() && zipf_s > 0.0,
            "zipf exponent must be positive"
        );
        let methods: Vec<MethodId> = (0..count)
            .map(|i| {
                // Deterministic size variation: small leaf methods and a few
                // big ones, averaging ~avg_bytes.
                let factor = match i % 8 {
                    0 => 4.0,
                    1 | 2 => 0.25,
                    3 | 4 => 0.5,
                    5 | 6 => 1.0,
                    _ => 1.5,
                };
                code.install(((avg_bytes as f64) * factor).max(64.0) as u64)
            })
            .collect();
        let mut cumulative = Vec::with_capacity(count);
        let mut sum = 0.0;
        for i in 0..count {
            sum += 1.0 / ((i + 1) as f64).powf(zipf_s);
            cumulative.push(sum);
        }
        for c in &mut cumulative {
            *c /= sum;
        }
        MethodSet {
            methods,
            cumulative,
        }
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the set is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Total installed code bytes of this set.
    pub fn footprint(&self, code: &CodeCache) -> u64 {
        self.methods.iter().map(|&m| code.range(m).len()).sum()
    }

    /// The `i`-th hottest method.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn hot(&self, i: usize) -> MethodId {
        self.methods[i]
    }

    /// Samples a method by popularity.
    pub fn sample(&self, rng: &mut SimRng) -> MethodId {
        let u = rng.gen_f64();
        let idx = self.cumulative.partition_point(|&c| c < u);
        self.methods[idx.min(self.methods.len() - 1)]
    }

    /// Executes `calls` sampled method bodies (a transaction's call path).
    pub fn exec_path(
        &self,
        code: &CodeCache,
        calls: usize,
        rng: &mut SimRng,
        sink: &mut (impl MemSink + ?Sized),
    ) {
        for _ in 0..calls {
            code.execute(self.sample(rng), sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{Addr, AddrRange, CountingSink};

    fn code() -> CodeCache {
        CodeCache::new(AddrRange::new(Addr(0x10_0000), 16 << 20))
    }

    #[test]
    fn footprint_scales_with_count() {
        let mut c = code();
        let small = MethodSet::install(&mut c, 50, 512, 1.0);
        let big = MethodSet::install(&mut c, 400, 512, 1.0);
        assert!(big.footprint(&c) > 4 * small.footprint(&c));
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let mut c = code();
        let set = MethodSet::install(&mut c, 100, 256, 1.1);
        let mut rng = SimRng::seed_from_u64(1);
        let hottest = set.hot(0);
        let mut hot_hits = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if set.sample(&mut rng) == hottest {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / N as f64;
        assert!(
            frac > 0.10 && frac < 0.35,
            "hottest of 100 methods should take a large share, got {frac}"
        );
    }

    #[test]
    fn exec_path_emits_code_fetches() {
        let mut c = code();
        let set = MethodSet::install(&mut c, 10, 640, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut sink = CountingSink::new();
        set.exec_path(&c, 5, &mut rng, &mut sink);
        assert!(sink.ifetches >= 5, "each call fetches at least one line");
        assert!(sink.instructions >= sink.ifetches * 16);
    }

    #[test]
    fn sampling_covers_the_tail_eventually() {
        let mut c = code();
        let set = MethodSet::install(&mut c, 50, 128, 0.8);
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(set.sample(&mut rng));
        }
        assert!(seen.len() > 40, "tail methods must appear: {}", seen.len());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_set_panics() {
        let mut c = code();
        let _ = MethodSet::install(&mut c, 0, 128, 1.0);
    }
}
