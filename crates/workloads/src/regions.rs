//! Shared region-map assembly for JVM-hosted workloads.
//!
//! Both workloads carve their address space the same way — code cache,
//! lock words, thread stacks, then the generational heap — so the
//! attribution regions are assembled here. TLAB metadata has no separate
//! address region in this model (a TLAB is a pair of bump cursors into an
//! eden chunk), so TLAB allocation traffic classifies as `eden`.

use jvm::codecache::CodeCache;
use jvm::heap::Heap;
use jvm::lock::LockSet;
use jvm::thread::JavaThread;
use memsys::{AddrRange, RegionMap};

/// Builds the common JVM regions: `code`, `lock`, `stack`, `eden`,
/// `survivor` (both semi-spaces), `old_gen`.
pub(crate) fn jvm_region_map(
    heap: &Heap,
    code: &CodeCache,
    locks: &LockSet,
    threads: &[JavaThread],
) -> RegionMap {
    let mut map = RegionMap::new();
    map.insert(code.region(), "code");
    map.insert(locks.region(), "lock");
    if let (Some(first), Some(last)) = (threads.first(), threads.last()) {
        // Stacks are carved contiguously; one region covers them all.
        let start = first.stack.start();
        let len = last.stack.end().0 - start.0;
        map.insert(AddrRange::new(start, len), "stack");
    }
    map.insert(heap.eden_range(), "eden");
    for s in heap.survivor_ranges() {
        map.insert(s, "survivor");
    }
    map.insert(heap.old_range(), "old_gen");
    map
}
