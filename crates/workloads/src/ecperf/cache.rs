//! The application server's object-level cache (entity bean cache).
//!
//! Section 2.5 names object-level caching as one of the commercial
//! application server's three key performance features: "instances of
//! components (beans) are cached in memory, thereby reducing database
//! queries and memory allocations". Section 4.4 then attributes ECperf's
//! *super-linear* speedup to constructive interference in this cache —
//! one thread re-uses entities fetched by another.
//!
//! The model is a capacity-bounded LRU map with a *time-to-live*: a cached
//! bean must be revalidated against the database once it is older than the
//! TTL (container-managed persistence consistency). The TTL is what makes
//! the hit rate *throughput-dependent* — with more processors pushing more
//! transactions through the same cache, popular entities are re-touched
//! within their TTL and the per-transaction path length falls. That is
//! the constructive-interference mechanism, not a curve fit.

use std::collections::HashMap;

use jvm::object::ObjectId;

/// A cache key: entity type tag + primary key, packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BeanKey(pub u64);

impl BeanKey {
    /// Packs an entity type tag and primary key.
    pub fn new(type_tag: u8, key: u64) -> Self {
        debug_assert!(key < 1 << 48, "bean primary key too large");
        BeanKey(((type_tag as u64) << 48) | key)
    }
}

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Present and fresh: use the cached bean.
    Hit(ObjectId),
    /// Present but older than the TTL: must revalidate (database round
    /// trip) and refresh.
    Stale(ObjectId),
    /// Absent: must load (database round trip) and insert.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: BeanKey,
    obj: ObjectId,
    loaded_at: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fresh hits.
    pub hits: u64,
    /// Stale probes (present but expired).
    pub stale: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
}

impl CacheStats {
    /// Fresh-hit ratio over all probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.stale + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A capacity-bounded LRU bean cache with TTL-based freshness.
#[derive(Debug, Clone)]
pub struct ObjectCache {
    capacity: usize,
    ttl: u64,
    map: HashMap<BeanKey, u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    stats: CacheStats,
}

impl ObjectCache {
    /// Creates a cache holding up to `capacity` beans, fresh for `ttl`
    /// cycles after load.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, ttl: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ObjectCache {
            capacity,
            ttl,
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached beans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in beans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn unlink(&mut self, idx: u32) {
        let e = self.entries[idx as usize];
        if e.prev != NIL {
            self.entries[e.prev as usize].next = e.next;
        } else {
            self.head = e.next;
        }
        if e.next != NIL {
            self.entries[e.next as usize].prev = e.prev;
        } else {
            self.tail = e.prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.entries[idx as usize].prev = NIL;
        self.entries[idx as usize].next = self.head;
        if self.head != NIL {
            self.entries[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Probes the cache at virtual time `now`, promoting hits to MRU.
    pub fn lookup(&mut self, key: BeanKey, now: u64) -> CacheLookup {
        match self.map.get(&key).copied() {
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
            Some(idx) => {
                let e = self.entries[idx as usize];
                self.unlink(idx);
                self.push_front(idx);
                if now.saturating_sub(e.loaded_at) <= self.ttl {
                    self.stats.hits += 1;
                    CacheLookup::Hit(e.obj)
                } else {
                    self.stats.stale += 1;
                    CacheLookup::Stale(e.obj)
                }
            }
        }
    }

    /// Inserts (or refreshes) `key -> obj` at time `now`. Returns the heap
    /// object of an evicted bean, which the caller must free, if the cache
    /// was full; also returns the *replaced* object when refreshing an
    /// existing key with a new bean instance.
    pub fn insert(&mut self, key: BeanKey, obj: ObjectId, now: u64) -> Option<ObjectId> {
        if let Some(&idx) = self.map.get(&key) {
            // Refresh in place.
            let old = self.entries[idx as usize].obj;
            self.entries[idx as usize].obj = obj;
            self.entries[idx as usize].loaded_at = now;
            self.unlink(idx);
            self.push_front(idx);
            return if old == obj { None } else { Some(old) };
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            let v = self.entries[victim as usize];
            self.unlink(victim);
            self.map.remove(&v.key);
            self.free.push(victim);
            self.stats.evictions += 1;
            evicted = Some(v.obj);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = Entry {
                    key,
                    obj,
                    loaded_at: now,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                let i = u32::try_from(self.entries.len()).expect("cache index fits u32");
                self.entries.push(Entry {
                    key,
                    obj,
                    loaded_at: now,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u32) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn miss_then_hit_within_ttl() {
        let mut c = ObjectCache::new(4, 100);
        let k = BeanKey::new(1, 7);
        assert_eq!(c.lookup(k, 0), CacheLookup::Miss);
        assert_eq!(c.insert(k, obj(1), 0), None);
        assert_eq!(c.lookup(k, 50), CacheLookup::Hit(obj(1)));
        assert_eq!(c.lookup(k, 100), CacheLookup::Hit(obj(1)));
    }

    #[test]
    fn expired_entries_are_stale_not_missing() {
        let mut c = ObjectCache::new(4, 100);
        let k = BeanKey::new(1, 7);
        c.insert(k, obj(1), 0);
        assert_eq!(c.lookup(k, 101), CacheLookup::Stale(obj(1)));
    }

    #[test]
    fn refresh_restores_freshness_and_returns_replaced() {
        let mut c = ObjectCache::new(4, 100);
        let k = BeanKey::new(1, 7);
        c.insert(k, obj(1), 0);
        assert_eq!(c.insert(k, obj(2), 200), Some(obj(1)));
        assert_eq!(c.lookup(k, 250), CacheLookup::Hit(obj(2)));
    }

    #[test]
    fn lru_eviction_returns_victim_object() {
        let mut c = ObjectCache::new(2, 1000);
        c.insert(BeanKey::new(0, 1), obj(1), 0);
        c.insert(BeanKey::new(0, 2), obj(2), 0);
        c.lookup(BeanKey::new(0, 1), 1); // 1 is MRU; 2 is LRU
        let evicted = c.insert(BeanKey::new(0, 3), obj(3), 2);
        assert_eq!(evicted, Some(obj(2)));
        assert_eq!(c.lookup(BeanKey::new(0, 2), 3), CacheLookup::Miss);
        assert!(matches!(
            c.lookup(BeanKey::new(0, 1), 3),
            CacheLookup::Hit(_)
        ));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn higher_touch_rate_raises_hit_rate_under_ttl() {
        // The constructive-interference mechanism: same popularity, more
        // probes per unit time => more fresh hits.
        let run = |probes_per_tick: u64| {
            let mut c = ObjectCache::new(64, 1_000);
            let mut now = 0u64;
            for round in 0..4_000u64 {
                for p in 0..probes_per_tick {
                    let key = BeanKey::new(1, (round * 7 + p * 13) % 32);
                    if !matches!(c.lookup(key, now), CacheLookup::Hit(_)) {
                        c.insert(key, obj(1), now);
                    }
                }
                now += 100; // virtual time advances per round
            }
            c.stats().hit_rate()
        };
        let slow = run(1);
        let fast = run(8);
        assert!(
            fast > slow + 0.1,
            "throughput must raise TTL-bound hit rate: slow={slow:.3} fast={fast:.3}"
        );
    }

    #[test]
    fn distinct_type_tags_do_not_collide() {
        let a = BeanKey::new(1, 42);
        let b = BeanKey::new(2, 42);
        assert_ne!(a, b);
        let mut c = ObjectCache::new(4, 100);
        c.insert(a, obj(1), 0);
        assert_eq!(c.lookup(b, 0), CacheLookup::Miss);
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut c = ObjectCache::new(16, 50);
        for i in 0..10_000u64 {
            // A hot set of 8 keys interleaved with a stream of one-shot
            // keys: exercises hits, misses, evictions and refreshes.
            let k = if i % 4 == 0 {
                BeanKey::new(9, i)
            } else {
                BeanKey::new(1, i % 8)
            };
            match c.lookup(k, i) {
                CacheLookup::Hit(_) => {}
                _ => {
                    c.insert(k, obj((i % 97) as u32), i);
                }
            }
            assert!(c.len() <= 16);
        }
        let s = c.stats();
        assert!(s.hits > 0 && s.misses > 0 && s.evictions > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ObjectCache::new(0, 1);
    }
}
