//! The database tier: a small relational-ish engine on its own machine.
//!
//! ECperf's database runs on a second E6000 (paper Section 3.1). The
//! paper filters the database machine's memory traffic out of its
//! middle-tier measurements, so the main experiments model the database
//! as a reply latency — but the tier itself is a real system, and the
//! cluster example simulates it: B-tree tables per entity type, a buffer
//! pool in its own address space, and a query executor that emits the
//! tier's memory references through a [`MemSink`].
//!
//! The paper notes that "ECperf does not overly stress the database" and
//! that the whole database fit in the buffer pool (Section 3.2) — which
//! is exactly the regime this engine models: all pages resident, queries
//! bounded by index descent plus row access.

use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::ObjectId;
use memsys::{AddrRange, MemSink};

use crate::ecperf::beans::BeanType;
use crate::objtree::{build_table, ObjTree};

/// Database sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseConfig {
    /// Rows per entity table, scaled from the bean keyspaces.
    pub keyspace_divisor: u64,
    /// Bytes per row (on top of the entity payload: slot headers, index
    /// entries).
    pub row_overhead: u32,
    /// Instructions per SQL statement beyond the index/row work
    /// (parse/plan cache hit, latching, logging).
    pub statement_instructions: u64,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            keyspace_divisor: 1,
            row_overhead: 64,
            statement_instructions: 2_500,
        }
    }
}

/// Per-query statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatabaseStats {
    /// SELECT-like queries served.
    pub reads: u64,
    /// UPDATE/INSERT-like statements served.
    pub writes: u64,
}

/// One table: a clustered B-tree of row objects.
#[derive(Debug, Clone)]
struct Table {
    ty: BeanType,
    index: ObjTree,
    next_row: u64,
}

/// The database engine and its buffer pool (a dedicated heap).
pub struct Database {
    pool: Heap,
    tables: Vec<Table>,
    cfg: DatabaseConfig,
    stats: DatabaseStats,
    /// The transaction log tail (sequential writes, one hot line each).
    log_cursor: u64,
    log: AddrRange,
}

impl Database {
    /// Builds the database inside `region` (its own machine's memory).
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold the buffer pool.
    pub fn new(cfg: DatabaseConfig, mut region: AddrRange) -> Self {
        let log = region.take(1 << 20).expect("log region");
        let geometry = HeapGeometry {
            eden: 8 << 20,
            survivor: 1 << 20,
            old: region.len() - (12 << 20),
        };
        let mut pool = Heap::new(
            HeapConfig {
                geometry,
                tenure_age: 1,
                tlab_bytes: 64 << 10,
            },
            region,
        );
        let tables = crate::ecperf::beans::ALL_BEAN_TYPES
            .iter()
            .filter(|t| !t.uses_supplier_emulator())
            .map(|&ty| {
                let rows = (ty.keyspace() / cfg.keyspace_divisor).clamp(64, 1 << 20);
                let row_bytes = ty.bytes() + cfg.row_overhead;
                let mut sink = memsys::CountingSink::new();
                Table {
                    ty,
                    index: build_table(&mut pool, rows, row_bytes, &mut sink),
                    next_row: rows,
                }
            })
            .collect();
        Database {
            pool,
            tables,
            cfg,
            stats: DatabaseStats::default(),
            log_cursor: 0,
            log,
        }
    }

    /// Query statistics.
    pub fn stats(&self) -> &DatabaseStats {
        &self.stats
    }

    /// Total resident rows across tables.
    pub fn rows(&self) -> usize {
        self.tables.iter().map(|t| t.index.len()).sum()
    }

    /// Buffer-pool bytes in use.
    pub fn pool_bytes(&self) -> u64 {
        self.pool.occupied_bytes()
    }

    fn table_mut(&mut self, ty: BeanType) -> Option<usize> {
        self.tables.iter().position(|t| t.ty == ty)
    }

    /// Serves a SELECT by primary key: index descent + row read.
    /// Returns the row object when found.
    pub fn select(
        &mut self,
        ty: BeanType,
        key: u64,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Option<ObjectId> {
        self.stats.reads += 1;
        sink.instructions(self.cfg.statement_instructions);
        let idx = self.table_mut(ty)?;
        let rows = self.tables[idx].next_row.max(1);
        self.tables[idx].index.lookup(key % rows, &self.pool, sink)
    }

    /// Serves an UPDATE by primary key: index descent, row write, and a
    /// sequential log append.
    pub fn update(&mut self, ty: BeanType, key: u64, sink: &mut (impl MemSink + ?Sized)) -> bool {
        self.stats.writes += 1;
        sink.instructions(self.cfg.statement_instructions);
        let Some(idx) = self.table_mut(ty) else {
            return false;
        };
        let rows = self.tables[idx].next_row.max(1);
        let row = self.tables[idx].index.lookup(key % rows, &self.pool, sink);
        if let Some(row) = row {
            sink.store(self.pool.addr_of(row));
            self.append_log(sink);
            true
        } else {
            false
        }
    }

    /// Serves an INSERT: allocate a row in the pool, insert into the
    /// index, log.
    pub fn insert(&mut self, ty: BeanType, sink: &mut (impl MemSink + ?Sized)) -> Option<u64> {
        self.stats.writes += 1;
        sink.instructions(self.cfg.statement_instructions);
        let row_bytes = ty.bytes() + self.cfg.row_overhead;
        let idx = self.table_mut(ty)?;
        let key = self.tables[idx].next_row;
        self.tables[idx].next_row += 1;
        let row = self.pool.alloc_permanent_old(row_bytes);
        // Split borrows: the tree insert needs the pool mutably.
        let Table { index, .. } = &mut self.tables[idx];
        index.insert(key, row, &mut self.pool, sink);
        self.append_log(sink);
        Some(key)
    }

    fn append_log(&mut self, sink: &mut (impl MemSink + ?Sized)) {
        let lines = self.log.line_count();
        let line = self.log.start().line().step(self.log_cursor % lines);
        sink.store(line.base());
        self.log_cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{Addr, CountingSink};

    fn db() -> Database {
        Database::new(
            DatabaseConfig {
                keyspace_divisor: 50,
                ..DatabaseConfig::default()
            },
            AddrRange::new(Addr(0x8000_0000), 128 << 20),
        )
    }

    #[test]
    fn tables_are_populated_for_every_persistent_entity() {
        let d = db();
        assert_eq!(d.tables.len(), 5, "every cacheable entity has a table");
        assert!(d.rows() > 500);
        assert!(d.pool_bytes() > 0);
    }

    #[test]
    fn select_reads_index_and_row() {
        let mut d = db();
        let mut sink = CountingSink::new();
        let row = d.select(BeanType::Customer, 42, &mut sink);
        assert!(row.is_some());
        assert!(sink.loads >= 4, "descent + row read: {}", sink.loads);
        assert!(sink.instructions >= 2_500);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn update_writes_row_and_log() {
        let mut d = db();
        let mut sink = CountingSink::new();
        assert!(d.update(BeanType::Part, 7, &mut sink));
        assert!(sink.stores >= 2, "row write + log append");
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn insert_grows_the_table_and_is_selectable() {
        let mut d = db();
        let mut sink = CountingSink::new();
        let before = d.rows();
        let key = d.insert(BeanType::Order, &mut sink).expect("insert");
        assert_eq!(d.rows(), before + 1);
        assert!(d.select(BeanType::Order, key, &mut sink).is_some());
    }

    #[test]
    fn log_appends_are_sequential_lines() {
        let mut d = db();
        let mut a = memsys::RecordingSink::new();
        d.update(BeanType::Customer, 1, &mut a);
        let mut b = memsys::RecordingSink::new();
        d.update(BeanType::Customer, 2, &mut b);
        let last_a = a.refs.last().unwrap().1;
        let last_b = b.refs.last().unwrap().1;
        assert_eq!(last_b.0, last_a.0 + 64, "log walks forward line by line");
    }
}
