//! ECperf's entity beans and business domains.
//!
//! The ECperf application divides its data and rules into four domains
//! (paper Section 2.2): the Customer domain (OLTP-like order
//! interactions), the Manufacturing domain (just-in-time work orders),
//! the Supplier domain (purchase orders against external suppliers) and
//! the Corporate domain (customers, suppliers and parts master data).
//! The EJB components operate on *entity beans* — persistent objects with
//! container-managed state — which this module enumerates together with
//! their domain, keyspace, size and cacheability.

/// The four ECperf business domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Order entry and customer interactions.
    Customer,
    /// Just-in-time manufacturing.
    Manufacturing,
    /// Interactions with external suppliers.
    Supplier,
    /// Master data: customers, suppliers, parts.
    Corporate,
}

/// Entity bean types used by the BBop mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeanType {
    /// A customer (Corporate domain master data).
    Customer,
    /// An order (Customer domain).
    Order,
    /// A catalog item (Customer domain).
    Item,
    /// A part / assembly (Corporate + Manufacturing).
    Part,
    /// A manufacturing work order (Manufacturing domain).
    WorkOrder,
    /// A purchase order sent to a supplier. Purchase orders are exchanged
    /// as XML documents with the supplier emulator and are not cached.
    PurchaseOrder,
}

/// All bean types.
pub const ALL_BEAN_TYPES: [BeanType; 6] = [
    BeanType::Customer,
    BeanType::Order,
    BeanType::Item,
    BeanType::Part,
    BeanType::WorkOrder,
    BeanType::PurchaseOrder,
];

impl BeanType {
    /// Stable tag for cache-key packing.
    pub fn tag(self) -> u8 {
        match self {
            BeanType::Customer => 0,
            BeanType::Order => 1,
            BeanType::Item => 2,
            BeanType::Part => 3,
            BeanType::WorkOrder => 4,
            BeanType::PurchaseOrder => 5,
        }
    }

    /// The domain owning this entity.
    pub fn domain(self) -> Domain {
        match self {
            BeanType::Customer => Domain::Corporate,
            BeanType::Order => Domain::Customer,
            BeanType::Item => Domain::Customer,
            BeanType::Part => Domain::Corporate,
            BeanType::WorkOrder => Domain::Manufacturing,
            BeanType::PurchaseOrder => Domain::Supplier,
        }
    }

    /// Keyspace size (distinct primary keys) at scale 1. ECperf's data is
    /// sized by the Orders Injection Rate *on the database side*; the
    /// middle tier only ever materializes the beans it touches, which is
    /// why its footprint stays roughly constant (Figure 11).
    pub fn keyspace(self) -> u64 {
        match self {
            BeanType::Customer => 15_000,
            BeanType::Order => 20_000,
            BeanType::Item => 5_000,
            BeanType::Part => 10_000,
            BeanType::WorkOrder => 5_000,
            BeanType::PurchaseOrder => 1 << 30, // effectively unique
        }
    }

    /// Bean instance size in bytes (state + container bookkeeping).
    pub fn bytes(self) -> u32 {
        match self {
            BeanType::Customer => 1536,
            BeanType::Order => 1536,
            BeanType::Item => 768,
            BeanType::Part => 1024,
            BeanType::WorkOrder => 1536,
            BeanType::PurchaseOrder => 4096,
        }
    }

    /// Whether the container caches instances of this bean.
    pub fn cacheable(self) -> bool {
        !matches!(self, BeanType::PurchaseOrder)
    }

    /// Whether loading this entity talks to the supplier emulator instead
    /// of the database (XML document exchange).
    pub fn uses_supplier_emulator(self) -> bool {
        matches!(self, BeanType::PurchaseOrder)
    }
}

/// One entity access required by a BBop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeanNeed {
    /// Entity type.
    pub ty: BeanType,
    /// Primary key.
    pub key: u64,
    /// Whether the BBop updates the entity (dirty shared lines).
    pub write: bool,
    /// Whether a loaded instance is installed in the object cache.
    /// Entity *creates* (new orders) write through to the database
    /// without caching — caching a never-to-be-reread instance would only
    /// churn the heap.
    pub cache_install: bool,
}

/// The Benchmark Business Operations (high-level actions; performance is
/// reported in BBops/minute, Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BBop {
    /// A customer places a new order (Customer domain).
    NewOrder,
    /// A customer changes or inquires about an order.
    OrderStatus,
    /// A manufacturing step of a scheduled work order (Mfg domain).
    ManufactureStep,
    /// A supplier purchase-order cycle (Supplier domain, XML exchange).
    SupplierCycle,
}

impl BBop {
    /// Samples the BBop mix: the customer and manufacturing domains
    /// dominate, as in ECperf's workload definition.
    pub fn sample(rng: &mut prng::SimRng) -> BBop {
        match rng.gen_range(0..100u32) {
            0..=39 => BBop::NewOrder,
            40..=49 => BBop::OrderStatus,
            50..=89 => BBop::ManufactureStep,
            _ => BBop::SupplierCycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in ALL_BEAN_TYPES {
            assert!(seen.insert(t.tag()), "duplicate tag for {t:?}");
        }
    }

    #[test]
    fn purchase_orders_are_uncacheable_supplier_documents() {
        assert!(!BeanType::PurchaseOrder.cacheable());
        assert!(BeanType::PurchaseOrder.uses_supplier_emulator());
        assert_eq!(BeanType::PurchaseOrder.domain(), Domain::Supplier);
        for t in ALL_BEAN_TYPES {
            if t != BeanType::PurchaseOrder {
                assert!(t.cacheable(), "{t:?} should be cacheable");
                assert!(!t.uses_supplier_emulator());
            }
        }
    }

    #[test]
    fn bbop_mix_covers_all_kinds() {
        let mut rng = prng::SimRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts
                .entry(format!("{:?}", BBop::sample(&mut rng)))
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4, "all BBops appear: {counts:?}");
        assert!(counts["NewOrder"] > 3_000);
        assert!(counts["ManufactureStep"] > 3_000);
        assert!(counts["SupplierCycle"] < 1_500);
    }

    #[test]
    fn bean_sizes_are_realistic() {
        for t in ALL_BEAN_TYPES {
            assert!((512..=4096).contains(&t.bytes()), "{t:?}: {}", t.bytes());
        }
    }
}
