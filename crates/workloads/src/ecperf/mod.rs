//! The ECperf (SPECjAppServer2001) middle-tier workload model.
//!
//! ECperf deploys EJB components on a commercial application server, with
//! the database, supplier emulator and driver on separate machines
//! (paper Figure 3). This model reproduces the *application-server tier*
//! — the machine the paper monitors — mechanistically:
//!
//! - worker threads from a **thread pool** serve Benchmark Business
//!   Operations (BBops) arriving over the kernel network path;
//! - entity beans are looked up in the container's **object-level cache**
//!   (capacity LRU + TTL revalidation); misses check a connection out of
//!   the **database connection pool**, send a query through the kernel,
//!   and wait for the database tier's reply;
//! - supplier purchase orders are exchanged as XML documents with the
//!   supplier emulator (bigger payloads, parse cost, no caching);
//! - business logic executes a large compiled-code path (the Figure 12
//!   instruction footprint) and updates shared bean objects (the wide
//!   communication footprint of Figures 14/15).
//!
//! The database and emulator tiers are modeled as reply latencies: the
//! paper itself filters the memory traffic of the other tiers out of its
//! measurements (Section 3.3), so only the messages' kernel-side work and
//! the waiting matter on the monitored machine.

pub mod beans;
pub mod cache;
pub mod database;

use jvm::alloc::AllocOutcome;
use jvm::codecache::CodeCache;
use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::lock::{LockId, LockSet};
use jvm::object::{Lifetime, ObjectId};
use jvm::thread::{carve_stacks, JavaThread};
use memsys::{AddrRange, MemSink};
use probes::Histogram;
use sysos::net::{NetConfig, NetStack};

use crate::ecperf::beans::{BBop, BeanNeed, BeanType};
use crate::ecperf::cache::{BeanKey, CacheLookup, ObjectCache};
use crate::methodset::MethodSet;
use crate::model::{Control, LockDesc, SchedLock, StepCtx, StepResult, Workload};
use crate::zipf::ZipfSampler;

/// First scheduler-lock index of the bean-cache stripes. Commercial
/// containers stripe their cache locks; without striping a single lock
/// word would carry far more of the communication than the paper
/// measures for ECperf's hottest line (14%, Section 5.2).
pub const CACHE_LOCK_BASE: u32 = 0;
/// Number of cache-lock stripes.
pub const CACHE_STRIPES: u32 = 4;
/// Scheduler-lock index of the DB connection-pool semaphore.
pub const CONN_POOL: u32 = CACHE_LOCK_BASE + CACHE_STRIPES;
/// First kernel (spin) lock index; there are [`KNET_LOCKS`] of them.
pub const KNET_BASE: u32 = CONN_POOL + 1;
/// Number of kernel network locks. Solaris-8-era TCP processing is
/// heavily serialized; a single stream lock reproduces the paper's
/// system-time growth and the post-12-processor throughput decline.
pub const KNET_LOCKS: u32 = 1;

const CODE_REGION_BYTES: u64 = 32 << 20;
const LOCK_REGION_BYTES: u64 = 64 << 10;
const KERNEL_REGION_BYTES: u64 = 32 << 20;

/// ECperf configuration.
#[derive(Debug, Clone)]
pub struct EcperfConfig {
    /// Orders Injection Rate — ECperf's scale factor.
    pub ir: u32,
    /// Worker threads in the application server's thread pool. The
    /// default derivation caps at the tuned pool size, which is why the
    /// middle tier's memory stops growing around IR 6 (Figure 11).
    pub threads: usize,
    /// Database connections in the pool.
    pub db_connections: u32,
    /// Heap configuration.
    pub heap: HeapConfig,
    /// Bean-cache capacity in beans.
    pub cache_capacity: usize,
    /// Bean-cache TTL in cycles (container revalidation interval).
    pub cache_ttl: u64,
    /// Per-thread permanent workspace (connection buffers, session state).
    pub workspace_bytes: u32,
    /// Hot compiled methods (app server + container + beans).
    pub method_count: usize,
    /// Average method size in bytes.
    pub method_avg_bytes: u64,
    /// Method-popularity skew.
    pub method_zipf: f64,
    /// Method calls per BBop.
    pub calls_per_bbop: usize,
    /// Bytes per stack frame.
    pub frame_bytes: u64,
    /// Frames pushed per BBop.
    pub frames_per_bbop: usize,
    /// Ephemeral scratch allocation per BBop.
    pub scratch_per_bbop: u32,
    /// Extra pure-compute instructions per BBop.
    pub pad_instructions: u64,
    /// Database reply latency in cycles.
    pub db_latency: u64,
    /// Supplier-emulator reply latency in cycles.
    pub supplier_latency: u64,
    /// XML parse instructions per purchase order.
    pub xml_parse_instructions: u64,
    /// Kernel network parameters.
    pub net: NetConfig,
    /// Per-thread stack region size.
    pub stack_bytes: u64,
    /// Entity-key popularity skew.
    pub key_skew: f64,
    /// Whether to log every database query (for two-tier co-simulation:
    /// the cluster harness replays the log into the database machine).
    pub log_queries: bool,
    /// Window of recent orders OrderStatus queries.
    pub recent_orders: u64,
    /// Divisor applied to entity keyspaces (scaled runs shrink the hot
    /// entity population together with the cache so hit rates are
    /// preserved).
    pub keyspace_divisor: u64,
}

impl EcperfConfig {
    /// Full-size configuration at injection rate `ir`.
    pub fn full(ir: u32) -> Self {
        let threads = (8 * ir as usize).clamp(12, 48);
        EcperfConfig {
            ir,
            threads,
            db_connections: (threads as u32 / 2).max(2),
            heap: HeapConfig::default(),
            cache_capacity: 12_000,
            cache_ttl: 900_000,
            workspace_bytes: 512 << 10,
            method_count: 600,
            method_avg_bytes: 2048,
            method_zipf: 1.05,
            calls_per_bbop: 36,
            frame_bytes: 768,
            frames_per_bbop: 5,
            scratch_per_bbop: 1024,
            pad_instructions: 9000,
            db_latency: 60_000,
            supplier_latency: 150_000,
            xml_parse_instructions: 3000,
            net: NetConfig::default(),
            stack_bytes: 64 << 10,
            key_skew: 1.1,
            log_queries: false,
            recent_orders: 512,
            keyspace_divisor: 1,
        }
    }

    /// Scaled configuration: heap, cache and workspaces divided by
    /// `divisor` for reference-driven multiprocessor runs.
    pub fn scaled(ir: u32, divisor: u64) -> Self {
        let f = EcperfConfig::full(ir);
        EcperfConfig {
            heap: HeapConfig {
                geometry: HeapGeometry::paper_scaled(divisor),
                // Smaller TLAB chunks keep many-threaded runs from
                // draining a scaled eden with half-empty buffers.
                tlab_bytes: 32 << 10,
                ..HeapConfig::default()
            },
            cache_capacity: ((f.cache_capacity as u64 / divisor).max(4000)) as usize,
            workspace_bytes: ((f.workspace_bytes as u64 / divisor).max(4096)) as u32,
            keyspace_divisor: divisor,
            ..f
        }
    }

    /// Bytes of address space the workload needs.
    pub fn required_bytes(&self) -> u64 {
        self.heap.geometry.total()
            + CODE_REGION_BYTES
            + LOCK_REGION_BYTES
            + KERNEL_REGION_BYTES
            + self.threads as u64 * self.stack_bytes
            + (1 << 20)
    }
}

/// The per-worker phase machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Phase {
    /// Sample the BBop, reserve allocation, build the entity list.
    #[default]
    Begin,
    /// Request the kernel lock for the incoming client message.
    RecvAcq,
    /// Kernel: receive the request.
    RecvMsg,
    /// Presentation logic (servlets).
    Servlet,
    /// Dispatch the next entity need (or move to business logic).
    BeanNext,
    /// Probe the bean cache (holding the cache lock).
    BeanProbe,
    /// Check a database connection out of the pool.
    ConnAcq,
    /// Request the kernel lock for the outgoing query.
    SendAcq,
    /// Kernel: send the query / purchase order.
    SendMsg,
    /// Wait for the remote tier's reply.
    RemoteWait,
    /// Request the kernel lock for the reply.
    RespAcq,
    /// Kernel: receive the reply.
    RespMsg,
    /// Parse the supplier's XML response (no caching).
    ParsePo,
    /// Complete a write-through entity create (no cache installation).
    Transient,
    /// Re-enter the cache to install the loaded bean.
    InstallAcq,
    /// Holding the cache lock: allocate + insert + evict.
    Install,
    /// Return the database connection.
    ConnRel,
    /// Business rules over the gathered entities.
    Business,
    /// Request the kernel lock for the client reply.
    ReplyAcq,
    /// Kernel: send the reply.
    ReplyMsg,
    /// Unwind and complete the BBop.
    Finish,
}

#[derive(Debug, Clone, Default)]
struct Worker {
    phase: Phase,
    needs: Vec<BeanNeed>,
    need_idx: usize,
    pending: Option<BeanNeed>,
}

/// The ECperf application-server workload.
pub struct Ecperf {
    cfg: EcperfConfig,
    heap: Heap,
    code: CodeCache,
    methods: MethodSet,
    lockset: LockSet,
    net: NetStack,
    cache: ObjectCache,
    threads: Vec<JavaThread>,
    workers: Vec<Worker>,
    samplers: Vec<(BeanType, ZipfSampler)>,
    next_order: u64,
    next_po: u64,
    tx_done: Vec<u64>,
    /// Per-thread start time of the BBop in flight (set at `Phase::Begin`,
    /// consumed at `TxDone`).
    tx_begin: Vec<Option<u64>>,
    /// Per-BBop response times in cycles (includes lock/pool waits,
    /// emulator round trips, and absorbed GC pauses).
    resp_hist: Histogram,
    gc_count: u64,
    db_roundtrips: u64,
    supplier_roundtrips: u64,
    /// Per-thread permanent workspace objects (kept live).
    _workspaces: Vec<ObjectId>,
    /// JVM-internal shared structures (see the SPECjbb equivalent).
    jvm_shared: ObjectId,
    /// The kernel network region (attribution classifies its traffic
    /// as `kernel`).
    kernel_region: AddrRange,
    /// Logged database queries (when `log_queries` is on).
    query_log: Vec<DbQuery>,
}

/// One logged database interaction (for tier co-simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbQuery {
    /// Entity type queried.
    pub ty: BeanType,
    /// Primary key.
    pub key: u64,
    /// Whether the statement writes (update/insert).
    pub write: bool,
}

impl Ecperf {
    /// Builds the application-server tier inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is smaller than
    /// [`EcperfConfig::required_bytes`].
    pub fn new(cfg: EcperfConfig, mut region: AddrRange) -> Self {
        assert!(
            region.len() >= cfg.required_bytes(),
            "region {} B < required {} B",
            region.len(),
            cfg.required_bytes()
        );
        let code_region = region.take(CODE_REGION_BYTES).expect("sized above");
        let lock_region = region.take(LOCK_REGION_BYTES).expect("sized above");
        let kernel_region = region.take(KERNEL_REGION_BYTES).expect("sized above");
        let stacks_region = region
            .take(cfg.threads as u64 * cfg.stack_bytes)
            .expect("sized above");
        let mut heap = Heap::new(cfg.heap, region);

        let mut code = CodeCache::new(code_region);
        let methods = MethodSet::install(
            &mut code,
            cfg.method_count,
            cfg.method_avg_bytes,
            cfg.method_zipf,
        );
        let mut lockset = LockSet::new(lock_region);
        for _ in 0..(KNET_BASE + KNET_LOCKS) {
            lockset.create();
        }
        // Client connections [0, threads), database connections
        // [threads, 2*threads), supplier connections share the DB range.
        let net = NetStack::new(cfg.net, kernel_region, cfg.threads * 2 + 4);
        let threads = carve_stacks(stacks_region, cfg.threads, cfg.stack_bytes);
        let workspaces = (0..cfg.threads)
            .map(|_| heap.alloc_permanent_old(cfg.workspace_bytes))
            .collect();
        let jvm_shared = heap.alloc_permanent_old(32 * 64);
        let samplers = beans::ALL_BEAN_TYPES
            .iter()
            .filter(|t| t.cacheable())
            .map(|&t| {
                (
                    t,
                    ZipfSampler::new(
                        (t.keyspace() / cfg.keyspace_divisor).clamp(64, 1 << 20) as usize,
                        cfg.key_skew,
                    ),
                )
            })
            .collect();
        Ecperf {
            cache: ObjectCache::new(cfg.cache_capacity, cfg.cache_ttl),
            workers: vec![Worker::default(); cfg.threads],
            tx_done: vec![0; cfg.threads],
            tx_begin: vec![None; cfg.threads],
            resp_hist: Histogram::new(),
            gc_count: 0,
            db_roundtrips: 0,
            supplier_roundtrips: 0,
            next_order: 0,
            next_po: 0,
            samplers,
            cfg,
            heap,
            code,
            methods,
            lockset,
            net,
            threads,
            _workspaces: workspaces,
            jvm_shared,
            kernel_region,
            query_log: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EcperfConfig {
        &self.cfg
    }

    /// The simulated heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The bean cache (hit-rate inspection).
    pub fn cache(&self) -> &ObjectCache {
        &self.cache
    }

    /// Completed BBops per thread.
    pub fn tx_done(&self) -> &[u64] {
        &self.tx_done
    }

    /// Total completed BBops.
    pub fn total_tx(&self) -> u64 {
        self.tx_done.iter().sum()
    }

    /// Per-BBop response-time histogram (cycles from `Begin` to
    /// `TxDone`, including waits and absorbed GC pauses).
    pub fn response_hist(&self) -> &Histogram {
        &self.resp_hist
    }

    /// Discards accumulated response times (e.g. at the end of warm-up).
    pub fn reset_response_hist(&mut self) {
        self.resp_hist = Histogram::new();
    }

    /// Database round trips performed (path-length diagnostics).
    pub fn db_roundtrips(&self) -> u64 {
        self.db_roundtrips
    }

    /// Supplier-emulator round trips performed.
    pub fn supplier_roundtrips(&self) -> u64 {
        self.supplier_roundtrips
    }

    /// Collections run so far.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// Drains the logged database queries (empty unless
    /// [`EcperfConfig::log_queries`] is set).
    pub fn take_query_log(&mut self) -> Vec<DbQuery> {
        std::mem::take(&mut self.query_log)
    }

    /// Hot compiled-code footprint in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.methods.footprint(&self.code)
    }

    /// The cache stripe guarding a bean key.
    fn stripe(need: &BeanNeed) -> u32 {
        CACHE_LOCK_BASE + ((need.key as u32).wrapping_mul(0x9e37) >> 4) % CACHE_STRIPES
    }

    /// The kernel path: scheduling serializes on [`KNET_LOCKS`] stream
    /// locks, while the lock-word *traffic* lives in the network stack's
    /// protocol lines (touched by [`NetStack::emit_protocol`]); the
    /// protocol index spreads per connection so no single kernel line
    /// carries all of the communication.
    fn knet(&self, conn: usize) -> (SchedLock, u32) {
        // KNET_LOCKS is 1 today (one serialized stream lock) but the
        // mapping is kept general for sensitivity studies.
        #[allow(clippy::modulo_one)]
        let sched = (conn as u32) % KNET_LOCKS;
        let proto = (conn as u32) % self.cfg.net.global_locks;
        (SchedLock(KNET_BASE + sched), proto)
    }

    fn sample_key(&self, ty: BeanType, rng: &mut prng::SimRng) -> u64 {
        self.samplers
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, s)| s.sample(rng) as u64)
            .unwrap_or(0)
    }

    fn build_needs(&mut self, worker: usize, rng: &mut prng::SimRng) {
        let bbop = BBop::sample(rng);
        let mut needs: Vec<BeanNeed> = Vec::with_capacity(8);
        match bbop {
            BBop::NewOrder => {
                needs.push(BeanNeed {
                    ty: BeanType::Customer,
                    key: self.sample_key(BeanType::Customer, rng),
                    write: true,
                    cache_install: true,
                });
                for _ in 0..3 {
                    needs.push(BeanNeed {
                        ty: BeanType::Item,
                        key: self.sample_key(BeanType::Item, rng),
                        write: false,
                        cache_install: true,
                    });
                }
                let key = self.next_order;
                self.next_order += 1;
                needs.push(BeanNeed {
                    ty: BeanType::Order,
                    key,
                    write: true,
                    cache_install: false,
                });
            }
            BBop::OrderStatus => {
                needs.push(BeanNeed {
                    ty: BeanType::Customer,
                    key: self.sample_key(BeanType::Customer, rng),
                    write: false,
                    cache_install: true,
                });
                if self.next_order > 0 {
                    let back = rng.gen_range(0..self.cfg.recent_orders.max(1));
                    needs.push(BeanNeed {
                        ty: BeanType::Order,
                        key: self.next_order.saturating_sub(1 + back),
                        write: false,
                        cache_install: true,
                    });
                }
            }
            BBop::ManufactureStep => {
                needs.push(BeanNeed {
                    ty: BeanType::WorkOrder,
                    key: self.sample_key(BeanType::WorkOrder, rng),
                    write: true,
                    cache_install: true,
                });
                for _ in 0..4 {
                    needs.push(BeanNeed {
                        ty: BeanType::Part,
                        key: self.sample_key(BeanType::Part, rng),
                        write: false,
                        cache_install: true,
                    });
                }
                needs.push(BeanNeed {
                    ty: BeanType::Item,
                    key: self.sample_key(BeanType::Item, rng),
                    write: false,
                    cache_install: true,
                });
            }
            BBop::SupplierCycle => {
                let key = self.next_po;
                self.next_po += 1;
                needs.push(BeanNeed {
                    ty: BeanType::PurchaseOrder,
                    key,
                    write: true,
                    cache_install: true,
                });
                for _ in 0..2 {
                    needs.push(BeanNeed {
                        ty: BeanType::Part,
                        key: self.sample_key(BeanType::Part, rng),
                        write: true,
                        cache_install: true,
                    });
                }
            }
        }
        let w = &mut self.workers[worker];
        w.needs = needs;
        w.need_idx = 0;
        w.pending = None;
    }

    /// TLAB bytes a BBop may need before its next safe GC point: the
    /// worst-case BBop misses on every entity it touches and installs a
    /// fresh bean for each, plus servlet scratch, XML documents and the
    /// reply session object.
    fn bbop_alloc_budget(&self) -> u64 {
        let worst_beans = 6 * 2048;
        self.cfg.scratch_per_bbop as u64 + worst_beans + 4096 + 1024 + 1024
    }

    /// Allocates, or reports that a collection is needed. A failure
    /// mid-BBop is legal: another thread's collection retires every TLAB,
    /// and under allocation pressure eden can be dry again by the time
    /// this thread resumes. The caller re-runs its phase after the GC.
    fn try_alloc(
        heap: &mut Heap,
        tlab: &mut jvm::alloc::Tlab,
        size: u32,
        lifetime: Lifetime,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Option<ObjectId> {
        match tlab.alloc(heap, size, lifetime, sink) {
            AllocOutcome::Ok(id) => Some(id),
            AllocOutcome::NeedsGc => None,
        }
    }

    fn db_latency_and_count(&mut self) -> u64 {
        self.db_roundtrips += 1;
        self.cfg.db_latency
    }

    fn supplier_latency_and_count(&mut self) -> u64 {
        self.supplier_roundtrips += 1;
        self.cfg.supplier_latency
    }
}

impl Workload for Ecperf {
    fn thread_count(&self) -> usize {
        self.cfg.threads
    }

    fn lock_table(&self) -> Vec<LockDesc> {
        let mut locks = vec![LockDesc::mutex(); CACHE_STRIPES as usize];
        locks.push(LockDesc::semaphore(self.cfg.db_connections)); // CONN_POOL
        for _ in 0..KNET_LOCKS {
            locks.push(LockDesc::spin_mutex());
        }
        locks
    }

    fn region_map(&self) -> memsys::RegionMap {
        let mut map =
            crate::regions::jvm_region_map(&self.heap, &self.code, &self.lockset, &self.threads);
        map.insert(self.kernel_region, "kernel");
        map
    }

    fn step(&mut self, thread: usize, ctx: &mut StepCtx<'_>) -> StepResult {
        let phase = self.workers[thread].phase;
        match phase {
            Phase::Begin => {
                let budget = self.bbop_alloc_budget();
                if !self.threads[thread].tlab.ensure(&mut self.heap, budget) {
                    return StepResult::user(Control::NeedsGc);
                }
                // Response time starts here; a NeedsGc re-run of this
                // phase keeps the original start (the pause counts).
                self.tx_begin[thread].get_or_insert(ctx.now);
                self.build_needs(thread, ctx.rng);
                ctx.sink.instructions(self.cfg.pad_instructions / 3);
                self.workers[thread].phase = Phase::RecvAcq;
                StepResult::user(Control::Continue)
            }
            Phase::RecvAcq => {
                let (lock, _) = self.knet(thread);
                ctx.sink.instructions(40); // mutex_enter path
                self.workers[thread].phase = Phase::RecvMsg;
                StepResult::system(Control::Acquire(lock))
            }
            Phase::RecvMsg => {
                let (lock, proto) = self.knet(thread);
                let sink = &mut *ctx.sink;
                self.net.emit_protocol(proto, sink);
                self.net.emit_transfer(thread, 512, sink);
                self.workers[thread].phase = Phase::Servlet;
                StepResult::system(Control::Release(lock))
            }
            Phase::Servlet => {
                let sink = &mut *ctx.sink;
                for _ in 0..self.cfg.frames_per_bbop {
                    self.threads[thread].push_frame(self.cfg.frame_bytes, sink);
                }
                self.methods
                    .exec_path(&self.code, self.cfg.calls_per_bbop / 3, ctx.rng, sink);
                if Self::try_alloc(
                    &mut self.heap,
                    &mut self.threads[thread].tlab,
                    self.cfg.scratch_per_bbop,
                    Lifetime::Ephemeral,
                    sink,
                )
                .is_none()
                {
                    return StepResult::user(Control::NeedsGc);
                }
                self.workers[thread].phase = Phase::BeanNext;
                StepResult::user(Control::Continue)
            }
            Phase::BeanNext => {
                let w = &self.workers[thread];
                if w.need_idx >= w.needs.len() {
                    self.workers[thread].phase = Phase::Business;
                    return StepResult::user(Control::Continue);
                }
                let need = w.needs[w.need_idx];
                if !need.ty.cacheable() {
                    // Supplier documents bypass the cache and the pool.
                    self.workers[thread].pending = Some(need);
                    self.workers[thread].phase = Phase::SendAcq;
                    return StepResult::user(Control::Continue);
                }
                if !need.cache_install {
                    // Write-through create: database round trip, no
                    // cache installation.
                    self.workers[thread].pending = Some(need);
                    self.workers[thread].phase = Phase::ConnAcq;
                    return StepResult::user(Control::Continue);
                }
                let stripe = Self::stripe(&need);
                self.lockset.emit_acquire(LockId(stripe), &mut *ctx.sink);
                self.workers[thread].phase = Phase::BeanProbe;
                StepResult::user(Control::Acquire(SchedLock(stripe)))
            }
            Phase::BeanProbe => {
                let need = self.workers[thread].needs[self.workers[thread].need_idx];
                let sink = &mut *ctx.sink;
                sink.instructions(60); // hash + probe
                match self
                    .cache
                    .lookup(BeanKey::new(need.ty.tag(), need.key), ctx.now)
                {
                    CacheLookup::Hit(obj) => {
                        // Field access, not a full scan: the container
                        // hands out the bean and the BBop reads the
                        // fields it needs. The container also *writes*
                        // the bean header on every activation (pin count,
                        // access time) — the mechanism that spreads
                        // ECperf's communication across its whole entity
                        // working set (Figures 14/15).
                        self.heap.read_object_prefix(obj, 2, sink);
                        sink.store(self.heap.addr_of(obj));
                        if need.write {
                            sink.store(self.heap.addr_of(obj).offset(64));
                        }
                        self.workers[thread].need_idx += 1;
                        self.workers[thread].phase = Phase::BeanNext;
                    }
                    CacheLookup::Stale(obj) => {
                        // Revalidation: read what we have, then reload.
                        self.heap.read_object_prefix(obj, 2, sink);
                        self.workers[thread].pending = Some(need);
                        self.workers[thread].phase = Phase::ConnAcq;
                    }
                    CacheLookup::Miss => {
                        self.workers[thread].pending = Some(need);
                        self.workers[thread].phase = Phase::ConnAcq;
                    }
                }
                let stripe = Self::stripe(&need);
                self.lockset.emit_release(LockId(stripe), sink);
                StepResult::user(Control::Release(SchedLock(stripe)))
            }
            Phase::ConnAcq => {
                // Pool checkout: RMW on the pool's free-list head line.
                self.lockset.emit_acquire(LockId(CONN_POOL), &mut *ctx.sink);
                self.workers[thread].phase = Phase::SendAcq;
                StepResult::user(Control::Acquire(SchedLock(CONN_POOL)))
            }
            Phase::SendAcq => {
                let conn = self.cfg.threads + thread; // this worker's DB conn
                let (lock, _) = self.knet(conn);
                ctx.sink.instructions(40);
                self.workers[thread].phase = Phase::SendMsg;
                StepResult::system(Control::Acquire(lock))
            }
            Phase::SendMsg => {
                let conn = self.cfg.threads + thread;
                let (lock, proto) = self.knet(conn);
                let supplier = self.workers[thread]
                    .pending
                    .is_some_and(|n| n.ty.uses_supplier_emulator());
                let bytes = if supplier { 4096 } else { 256 };
                let sink = &mut *ctx.sink;
                self.net.emit_protocol(proto, sink);
                self.net.emit_transfer(conn, bytes, sink);
                self.workers[thread].phase = Phase::RemoteWait;
                StepResult::system(Control::Release(lock))
            }
            Phase::RemoteWait => {
                if self.cfg.log_queries {
                    if let Some(n) = self.workers[thread].pending {
                        if !n.ty.uses_supplier_emulator() {
                            self.query_log.push(DbQuery {
                                ty: n.ty,
                                key: n.key,
                                write: n.write,
                            });
                        }
                    }
                }
                let supplier = self.workers[thread]
                    .pending
                    .is_some_and(|n| n.ty.uses_supplier_emulator());
                let base = if supplier {
                    self.supplier_latency_and_count()
                } else {
                    self.db_latency_and_count()
                };
                let jitter = ctx.rng.gen_range(0..base / 4 + 1);
                self.workers[thread].phase = Phase::RespAcq;
                StepResult::user(Control::IoWait(base + jitter))
            }
            Phase::RespAcq => {
                let conn = self.cfg.threads + thread;
                let (lock, _) = self.knet(conn);
                ctx.sink.instructions(40);
                self.workers[thread].phase = Phase::RespMsg;
                StepResult::system(Control::Acquire(lock))
            }
            Phase::RespMsg => {
                let conn = self.cfg.threads + thread;
                let (lock, proto) = self.knet(conn);
                let supplier = self.workers[thread]
                    .pending
                    .is_some_and(|n| n.ty.uses_supplier_emulator());
                let bytes = if supplier { 4096 } else { 2048 };
                let sink = &mut *ctx.sink;
                self.net.emit_protocol(proto, sink);
                self.net.emit_transfer(conn, bytes, sink);
                let transient = self.workers[thread]
                    .pending
                    .is_some_and(|n| !n.cache_install && !n.ty.uses_supplier_emulator());
                self.workers[thread].phase = if supplier {
                    Phase::ParsePo
                } else if transient {
                    Phase::Transient
                } else {
                    Phase::InstallAcq
                };
                StepResult::system(Control::Release(lock))
            }
            Phase::ParsePo => {
                let sink = &mut *ctx.sink;
                sink.instructions(self.cfg.xml_parse_instructions);
                let need = self.workers[thread].pending.expect("pending PO");
                if Self::try_alloc(
                    &mut self.heap,
                    &mut self.threads[thread].tlab,
                    need.ty.bytes(),
                    Lifetime::Ephemeral,
                    sink,
                )
                .is_none()
                {
                    return StepResult::user(Control::NeedsGc);
                }
                self.workers[thread].pending = None;
                self.workers[thread].need_idx += 1;
                self.workers[thread].phase = Phase::BeanNext;
                StepResult::user(Control::Continue)
            }
            Phase::Transient => {
                let need = self.workers[thread].pending.expect("pending create");
                let sink = &mut *ctx.sink;
                sink.instructions(500); // result-set marshalling
                if Self::try_alloc(
                    &mut self.heap,
                    &mut self.threads[thread].tlab,
                    need.ty.bytes(),
                    Lifetime::Ephemeral,
                    sink,
                )
                .is_none()
                {
                    return StepResult::user(Control::NeedsGc);
                }
                self.workers[thread].pending = None;
                self.workers[thread].phase = Phase::ConnRel;
                StepResult::user(Control::Continue)
            }
            Phase::InstallAcq => {
                let need = self.workers[thread].pending.expect("pending bean");
                let stripe = Self::stripe(&need);
                self.lockset.emit_acquire(LockId(stripe), &mut *ctx.sink);
                self.workers[thread].phase = Phase::Install;
                StepResult::user(Control::Acquire(SchedLock(stripe)))
            }
            Phase::Install => {
                let need = self.workers[thread].pending.expect("pending bean");
                let sink = &mut *ctx.sink;
                // Materialize the bean: allocate and populate it. On
                // allocation failure the thread keeps the cache lock and
                // retries this phase after the collection.
                let Some(obj) = Self::try_alloc(
                    &mut self.heap,
                    &mut self.threads[thread].tlab,
                    need.ty.bytes(),
                    Lifetime::Permanent,
                    sink,
                ) else {
                    return StepResult::user(Control::NeedsGc);
                };
                self.workers[thread].pending = None;
                // The allocation's initializing stores already populated
                // the bean; no second full-object write.
                if let Some(evicted) =
                    self.cache
                        .insert(BeanKey::new(need.ty.tag(), need.key), obj, ctx.now)
                {
                    self.heap.free(evicted);
                }
                let stripe = Self::stripe(&need);
                self.lockset.emit_release(LockId(stripe), sink);
                self.workers[thread].phase = Phase::ConnRel;
                StepResult::user(Control::Release(SchedLock(stripe)))
            }
            Phase::ConnRel => {
                self.lockset.emit_release(LockId(CONN_POOL), &mut *ctx.sink);
                self.workers[thread].need_idx += 1;
                self.workers[thread].phase = Phase::BeanNext;
                StepResult::user(Control::Release(SchedLock(CONN_POOL)))
            }
            Phase::Business => {
                let sink = &mut *ctx.sink;
                self.methods.exec_path(
                    &self.code,
                    self.cfg.calls_per_bbop - self.cfg.calls_per_bbop / 3,
                    ctx.rng,
                    sink,
                );
                sink.instructions(self.cfg.pad_instructions / 3);
                // Apply updates to the written entities (dirty shared
                // bean lines: ECperf's wide communication footprint).
                for i in 0..self.workers[thread].needs.len() {
                    let need = self.workers[thread].needs[i];
                    if !need.write || !need.ty.cacheable() {
                        continue;
                    }
                    if let CacheLookup::Hit(obj) | CacheLookup::Stale(obj) = self
                        .cache
                        .lookup(BeanKey::new(need.ty.tag(), need.key), ctx.now)
                    {
                        sink.store(self.heap.addr_of(obj));
                        sink.store(self.heap.addr_of(obj).offset(64));
                    }
                }
                // Session state for the reply (short-lived).
                let epoch = self.heap.epoch();
                if Self::try_alloc(
                    &mut self.heap,
                    &mut self.threads[thread].tlab,
                    1024,
                    Lifetime::Session {
                        expires_epoch: epoch + 24,
                    },
                    sink,
                )
                .is_none()
                {
                    return StepResult::user(Control::NeedsGc);
                }
                self.workers[thread].phase = Phase::ReplyAcq;
                StepResult::user(Control::Continue)
            }
            Phase::ReplyAcq => {
                let (lock, _) = self.knet(thread);
                ctx.sink.instructions(40);
                self.workers[thread].phase = Phase::ReplyMsg;
                StepResult::system(Control::Acquire(lock))
            }
            Phase::ReplyMsg => {
                let (lock, proto) = self.knet(thread);
                let sink = &mut *ctx.sink;
                self.net.emit_protocol(proto, sink);
                self.net.emit_transfer(thread, 1024, sink);
                self.workers[thread].phase = Phase::Finish;
                StepResult::system(Control::Release(lock))
            }
            Phase::Finish => {
                let sink = &mut *ctx.sink;
                // JVM-internal shared-structure updates (as in SPECjbb).
                let jvm = self.heap.addr_of(self.jvm_shared);
                for _ in 0..2 {
                    let line = ctx.rng.gen_range(0..32u64);
                    sink.load(jvm.offset(line * 64));
                    sink.store(jvm.offset(line * 64));
                }
                for _ in 0..self.cfg.frames_per_bbop {
                    self.threads[thread].pop_frame(self.cfg.frame_bytes, sink);
                }
                self.threads[thread].unwind();
                sink.instructions(self.cfg.pad_instructions / 3);
                self.heap.advance_epoch(1);
                self.tx_done[thread] += 1;
                if let Some(begin) = self.tx_begin[thread].take() {
                    self.resp_hist.record(ctx.now.saturating_sub(begin));
                }
                self.workers[thread].phase = Phase::Begin;
                StepResult::user(Control::TxDone)
            }
        }
    }

    fn collect(&mut self, sink: &mut dyn MemSink) {
        for t in &mut self.threads {
            t.tlab.retire();
        }
        self.heap.minor_gc(&mut *sink);
        if self.heap.needs_major_gc() {
            self.heap.major_gc(&mut *sink);
        }
        self.gc_count += 1;
    }

    fn heap_after_last_gc(&self) -> Option<u64> {
        if self.gc_count == 0 {
            None
        } else {
            Some(self.heap.stats().live_after_last_gc)
        }
    }

    fn gc_pressure(&self) -> f64 {
        self.heap.eden_occupancy()
    }

    fn response_hist(&self) -> Option<&Histogram> {
        Some(Ecperf::response_hist(self))
    }

    fn reset_response_hist(&mut self) {
        Ecperf::reset_response_hist(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{Addr, CountingSink};
    use prng::SimRng;

    fn small() -> Ecperf {
        let mut cfg = EcperfConfig::scaled(2, 64);
        cfg.threads = 4;
        cfg.db_connections = 2;
        let region = AddrRange::new(Addr(0x1000_0000), cfg.required_bytes());
        Ecperf::new(cfg, region)
    }

    /// A permissive driver: grants all locks, sleeps through IoWaits,
    /// collects on demand, and advances a fake clock.
    fn drive(ec: &mut Ecperf, thread: usize, steps: usize) -> (u64, u64) {
        let mut rng = SimRng::seed_from_u64(9);
        let mut sink = CountingSink::new();
        let mut now = 0u64;
        let mut txs = 0;
        let mut gcs = 0;
        for _ in 0..steps {
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng: &mut rng,
                now,
            };
            match ec.step(thread, &mut ctx).control {
                Control::TxDone => txs += 1,
                Control::NeedsGc => {
                    ec.collect(&mut sink);
                    gcs += 1;
                }
                Control::IoWait(c) => now += c,
                _ => now += 1_000,
            }
        }
        (txs, gcs)
    }

    #[test]
    fn bbops_complete_and_collections_run() {
        let mut ec = small();
        let (txs, gcs) = drive(&mut ec, 0, 60_000);
        assert!(txs > 500, "BBops must flow: {txs}");
        assert!(gcs > 0, "the scaled eden must fill: {gcs}");
        assert_eq!(ec.total_tx(), txs);
    }

    #[test]
    fn cache_warms_up_and_cuts_db_roundtrips() {
        let mut ec = small();
        drive(&mut ec, 0, 20_000);
        let early_rt = ec.db_roundtrips();
        let early_tx = ec.total_tx();
        drive(&mut ec, 0, 40_000);
        let late_rt = ec.db_roundtrips() - early_rt;
        let late_tx = ec.total_tx() - early_tx;
        let early_per_tx = early_rt as f64 / early_tx.max(1) as f64;
        let late_per_tx = late_rt as f64 / late_tx.max(1) as f64;
        assert!(
            late_per_tx < early_per_tx,
            "warm cache must reduce round trips per BBop: early {early_per_tx:.2}, late {late_per_tx:.2}"
        );
        assert!(ec.cache().stats().hits > 0);
    }

    #[test]
    fn supplier_cycles_reach_the_emulator() {
        let mut ec = small();
        drive(&mut ec, 0, 80_000);
        assert!(
            ec.supplier_roundtrips() > 0,
            "the BBop mix includes supplier cycles"
        );
    }

    #[test]
    fn lock_table_matches_indices() {
        let ec = small();
        let locks = ec.lock_table();
        assert_eq!(locks.len() as u32, KNET_BASE + KNET_LOCKS);
        assert_eq!(locks[CACHE_LOCK_BASE as usize].capacity, 1);
        assert_eq!(locks[CONN_POOL as usize].capacity, 2);
        assert_eq!(locks[KNET_BASE as usize].wait, crate::model::WaitKind::Spin);
    }

    #[test]
    fn acquires_and_releases_balance() {
        let mut ec = small();
        let mut rng = SimRng::seed_from_u64(3);
        let mut sink = CountingSink::new();
        let mut now = 0u64;
        let mut held: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        for _ in 0..5_000 {
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng: &mut rng,
                now,
            };
            match ec.step(0, &mut ctx).control {
                Control::Acquire(SchedLock(l)) => *held.entry(l).or_insert(0) += 1,
                Control::Release(SchedLock(l)) => *held.entry(l).or_insert(0) -= 1,
                Control::NeedsGc => ec.collect(&mut sink),
                Control::IoWait(c) => now += c,
                _ => now += 500,
            }
        }
        for (l, v) in held {
            assert!(
                (0..=1).contains(&v),
                "lock {l} acquire/release imbalance: {v}"
            );
        }
    }

    #[test]
    fn code_footprint_is_much_larger_than_specjbb() {
        let ec = small();
        let jbb_cfg = crate::specjbb::SpecJbbConfig::scaled(2, 64);
        let jbb_region = AddrRange::new(Addr(0x1000_0000), jbb_cfg.required_bytes());
        let jbb = crate::specjbb::SpecJbb::new(jbb_cfg, jbb_region);
        assert!(
            ec.code_footprint() > 3 * jbb.code_footprint(),
            "paper Figure 12: ECperf's instruction footprint is much larger ({} vs {})",
            ec.code_footprint(),
            jbb.code_footprint()
        );
    }

    #[test]
    fn ecperf_heap_stays_bounded_as_it_runs() {
        let mut ec = small();
        drive(&mut ec, 0, 40_000);
        let a = ec.heap_after_last_gc().expect("collections ran");
        drive(&mut ec, 0, 80_000);
        let b = ec.heap_after_last_gc().unwrap();
        // The middle tier's data set must not grow without bound
        // (Figure 11: ECperf's memory use is roughly constant).
        assert!(
            b < 2 * a + (1 << 20),
            "ECperf live data must stay bounded: {a} -> {b}"
        );
    }
}
