//! The SPECjbb2000 workload model.
//!
//! SPECjbb combines all three tiers of a TPC-C-like wholesale business in
//! one Java process (paper Figure 2): driver threads, business logic, and
//! an emulated database of in-memory object trees. One thread serves one
//! warehouse; the benchmark scales by adding warehouses, which grows both
//! the thread count and the data set linearly (Section 4.6) — the paper's
//! central contrast with ECperf, whose data set stays roughly constant.
//!
//! Transactions follow the TPC-C-inspired mix (NewOrder / Payment /
//! OrderStatus / Delivery / StockLevel). Every transaction also updates
//! shared company-wide statistics under a global monitor, making that lock
//! word and counter line the hottest communication lines — the paper
//! measures 20% of all SPECjbb cache-to-cache transfers on a single line
//! (Section 5.2).

pub mod db;

use jvm::alloc::Tlab;
use jvm::codecache::CodeCache;
use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::lock::{LockId, LockSet};
use jvm::object::Lifetime;
use jvm::thread::{carve_stacks, JavaThread};
use memsys::{AddrRange, CountingSink, MemSink};
use probes::Histogram;

use crate::methodset::MethodSet;
use crate::model::{Control, LockDesc, StepCtx, StepResult, Workload};
use crate::specjbb::db::{JbbDb, JbbDbConfig};

/// SPECjbb configuration.
#[derive(Debug, Clone)]
pub struct SpecJbbConfig {
    /// Warehouses (and therefore driver threads).
    pub warehouses: usize,
    /// Heap configuration.
    pub heap: HeapConfig,
    /// Database sizing.
    pub db: JbbDbConfig,
    /// Hot compiled methods.
    pub method_count: usize,
    /// Average method size in bytes.
    pub method_avg_bytes: u64,
    /// Method-popularity skew.
    pub method_zipf: f64,
    /// Method calls per transaction.
    pub calls_per_tx: usize,
    /// Bytes per stack frame.
    pub frame_bytes: u64,
    /// Frames pushed per transaction.
    pub frames_per_tx: usize,
    /// Ephemeral scratch allocation per transaction (bytes).
    pub scratch_per_tx: u32,
    /// Extra pure-compute instructions per transaction.
    pub pad_instructions: u64,
    /// Instructions executed while holding the global company monitor
    /// (JVM-internal shared-resource work; the knob behind SPECjbb's
    /// contention-driven leveling in Figure 4).
    pub global_work_instructions: u64,
    /// Per-thread stack region size.
    pub stack_bytes: u64,
    /// Order lines (items) per NewOrder.
    pub order_lines: usize,
}

impl SpecJbbConfig {
    /// Full-size configuration: paper heap geometry and full database.
    pub fn full(warehouses: usize) -> Self {
        SpecJbbConfig {
            warehouses,
            heap: HeapConfig::default(),
            db: JbbDbConfig::default(),
            method_count: 80,
            method_avg_bytes: 2048,
            method_zipf: 1.05,
            calls_per_tx: 10,
            frame_bytes: 768,
            frames_per_tx: 4,
            scratch_per_tx: 512,
            pad_instructions: 5000,
            global_work_instructions: 2600,
            stack_bytes: 64 << 10,
            order_lines: 8,
        }
    }

    /// Scaled configuration: heap geometry and database record counts
    /// divided by `divisor` (reference-driven multiprocessor runs).
    pub fn scaled(warehouses: usize, divisor: u64) -> Self {
        SpecJbbConfig {
            heap: HeapConfig {
                geometry: HeapGeometry::paper_scaled(divisor),
                // Smaller TLABs match the scaled eden.
                tlab_bytes: 16 << 10,
                ..HeapConfig::default()
            },
            db: JbbDbConfig::scaled(divisor),
            ..SpecJbbConfig::full(warehouses)
        }
    }

    /// Bytes of address space the workload needs
    /// (heap + code + stacks + lock words).
    pub fn required_bytes(&self) -> u64 {
        self.heap.geometry.total()
            + CODE_REGION_BYTES
            + self.warehouses as u64 * self.stack_bytes
            + LOCK_REGION_BYTES
            + (1 << 20) // slack for rounding
    }
}

const CODE_REGION_BYTES: u64 = 32 << 20;
const LOCK_REGION_BYTES: u64 = 64 << 10;

/// TPC-C-like transaction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// Place a new order (~44%).
    NewOrder,
    /// Record a payment (~44%).
    Payment,
    /// Query an order's status (~4%).
    OrderStatus,
    /// Deliver (retire) the oldest orders (~4%).
    Delivery,
    /// Check stock levels (~4%).
    StockLevel,
}

impl TxKind {
    fn sample(rng: &mut prng::SimRng) -> TxKind {
        match rng.gen_range(0..100u32) {
            0..=43 => TxKind::NewOrder,
            44..=87 => TxKind::Payment,
            88..=91 => TxKind::OrderStatus,
            92..=95 => TxKind::Delivery,
            _ => TxKind::StockLevel,
        }
    }
}

/// Per-thread transaction in flight.
#[derive(Debug, Clone, Copy)]
struct CurTx {
    kind: TxKind,
    wh: usize,
    items: [u64; 16],
    customer: u64,
    district: usize,
}

impl Default for CurTx {
    fn default() -> Self {
        CurTx {
            kind: TxKind::NewOrder,
            wh: 0,
            items: [0; 16],
            customer: 0,
            district: 0,
        }
    }
}

/// The per-thread phase machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Phase {
    /// Sampling, frames, catalog reads; ends requesting the warehouse lock.
    #[default]
    Begin,
    /// Database work under the warehouse lock; ends releasing it.
    Warehouse,
    /// CAS on the global monitor; ends requesting it.
    GlobalAcq,
    /// Company-statistics update; ends releasing the global monitor.
    GlobalWork,
    /// Unwind and finish; ends with `TxDone`.
    Finish,
}

/// The SPECjbb workload.
pub struct SpecJbb {
    cfg: SpecJbbConfig,
    heap: Heap,
    code: CodeCache,
    methods: MethodSet,
    lockset: LockSet,
    threads: Vec<JavaThread>,
    phases: Vec<Phase>,
    cur: Vec<CurTx>,
    db: JbbDb,
    tx_done: Vec<u64>,
    /// Per-thread start time of the transaction in flight (set at
    /// `Phase::Begin`, consumed at `TxDone`).
    tx_begin: Vec<Option<u64>>,
    /// Per-transaction response times in cycles (includes lock waits and
    /// any GC pause the transaction absorbed).
    resp_hist: Histogram,
    gc_count: u64,
}

/// Scheduler-lock index of the global company monitor.
pub const GLOBAL_LOCK: u32 = 0;

impl SpecJbb {
    /// Builds the workload inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is smaller than
    /// [`SpecJbbConfig::required_bytes`].
    pub fn new(cfg: SpecJbbConfig, mut region: AddrRange) -> Self {
        assert!(
            region.len() >= cfg.required_bytes(),
            "region {} B < required {} B",
            region.len(),
            cfg.required_bytes()
        );
        let code_region = region.take(CODE_REGION_BYTES).expect("sized above");
        let lock_region = region.take(LOCK_REGION_BYTES).expect("sized above");
        let stacks_region = region
            .take(cfg.warehouses as u64 * cfg.stack_bytes)
            .expect("sized above");
        let mut heap = Heap::new(cfg.heap, region);

        let mut code = CodeCache::new(code_region);
        let methods = MethodSet::install(
            &mut code,
            cfg.method_count,
            cfg.method_avg_bytes,
            cfg.method_zipf,
        );
        let mut lockset = LockSet::new(lock_region);
        // Lock 0: the global company monitor; locks 1..=W: warehouse locks.
        for _ in 0..=cfg.warehouses {
            lockset.create();
        }
        let threads = carve_stacks(stacks_region, cfg.warehouses, cfg.stack_bytes);
        let mut build_sink = CountingSink::new();
        let db = JbbDb::build(cfg.db, cfg.warehouses, &mut heap, &mut build_sink);
        SpecJbb {
            phases: vec![Phase::Begin; cfg.warehouses],
            cur: vec![CurTx::default(); cfg.warehouses],
            tx_done: vec![0; cfg.warehouses],
            tx_begin: vec![None; cfg.warehouses],
            resp_hist: Histogram::new(),
            gc_count: 0,
            cfg,
            heap,
            code,
            methods,
            lockset,
            threads,
            db,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SpecJbbConfig {
        &self.cfg
    }

    /// The simulated heap (for experiment inspection).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Completed transactions per thread.
    pub fn tx_done(&self) -> &[u64] {
        &self.tx_done
    }

    /// Total completed transactions.
    pub fn total_tx(&self) -> u64 {
        self.tx_done.iter().sum()
    }

    /// Collections run so far.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// Per-transaction response-time histogram (cycles from `Begin` to
    /// `TxDone`, including lock waits and absorbed GC pauses).
    pub fn response_hist(&self) -> &Histogram {
        &self.resp_hist
    }

    /// Discards accumulated response times (e.g. at the end of warm-up).
    pub fn reset_response_hist(&mut self) {
        self.resp_hist = Histogram::new();
    }

    /// Hot compiled-code footprint in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.methods.footprint(&self.code)
    }

    fn wh_lock(wh: usize) -> crate::model::SchedLock {
        crate::model::SchedLock(1 + wh as u32)
    }

    fn wh_lock_word(&self, wh: usize) -> LockId {
        LockId(1 + wh as u32)
    }

    /// TLAB bytes a transaction may need before its next safe GC point.
    fn tx_alloc_budget(&self) -> u64 {
        self.cfg.scratch_per_tx as u64
            + self.cfg.db.order_bytes as u64
            + self.cfg.db.history_bytes as u64
            + 512
    }

    /// Allocates, or reports that a collection is needed (another
    /// thread's collection may have retired this thread's TLAB
    /// mid-transaction; the phase is re-run after the GC).
    fn try_alloc(
        heap: &mut Heap,
        tlab: &mut Tlab,
        size: u32,
        lifetime: Lifetime,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Option<jvm::object::ObjectId> {
        tlab.alloc(heap, size, lifetime, sink).ok()
    }
}

impl Workload for SpecJbb {
    fn thread_count(&self) -> usize {
        self.cfg.warehouses
    }

    fn lock_table(&self) -> Vec<LockDesc> {
        // Global monitor + one monitor per warehouse, all blocking mutexes.
        vec![LockDesc::mutex(); 1 + self.cfg.warehouses]
    }

    fn region_map(&self) -> memsys::RegionMap {
        crate::regions::jvm_region_map(&self.heap, &self.code, &self.lockset, &self.threads)
    }

    fn step(&mut self, thread: usize, ctx: &mut StepCtx<'_>) -> StepResult {
        let phase = self.phases[thread];
        match phase {
            Phase::Begin => {
                let budget = self.tx_alloc_budget();
                if !self.threads[thread].tlab.ensure(&mut self.heap, budget) {
                    return StepResult::user(Control::NeedsGc);
                }
                // Response time starts here; a NeedsGc re-run of this
                // phase keeps the original start (the pause counts).
                self.tx_begin[thread].get_or_insert(ctx.now);
                let cur = &mut self.cur[thread];
                cur.kind = TxKind::sample(ctx.rng);
                cur.wh = thread % self.db.warehouse_count();
                if cur.kind == TxKind::Payment && ctx.rng.gen_range(0..100u32) < 3 {
                    // Remote payment: touch another warehouse's customer.
                    cur.wh = ctx.rng.gen_range(0..self.db.warehouse_count());
                }
                for slot in cur.items.iter_mut().take(self.cfg.order_lines) {
                    *slot = self.db.item_keys.sample(ctx.rng) as u64;
                }
                cur.customer = self.db.customer_keys.sample(ctx.rng) as u64;
                cur.district = ctx.rng.gen_range(0..self.cfg.db.districts_per_wh as usize);
                let cur = self.cur[thread];

                let sink = &mut *ctx.sink;
                sink.instructions(self.cfg.pad_instructions / 2);
                for _ in 0..self.cfg.frames_per_tx {
                    self.threads[thread].push_frame(self.cfg.frame_bytes, sink);
                }
                self.methods
                    .exec_path(&self.code, self.cfg.calls_per_tx / 2, ctx.rng, sink);
                if cur.kind == TxKind::NewOrder {
                    // Item catalog reads happen outside the warehouse lock
                    // (the catalog is immutable).
                    for &key in cur.items.iter().take(self.cfg.order_lines) {
                        self.db.items.lookup(key, &self.heap, sink);
                    }
                }
                self.lockset.emit_acquire(self.wh_lock_word(cur.wh), sink);
                self.phases[thread] = Phase::Warehouse;
                StepResult::user(Control::Acquire(Self::wh_lock(cur.wh)))
            }
            Phase::Warehouse => {
                let cur = self.cur[thread];
                let sink = &mut *ctx.sink;
                let heap = &mut self.heap;
                let tlab = &mut self.threads[thread].tlab;
                let wh = &mut self.db.warehouses[cur.wh];
                match cur.kind {
                    TxKind::NewOrder => {
                        // District: read + bump next-order id.
                        let d = wh.districts[cur.district];
                        heap.read_object(d, sink);
                        sink.store(heap.addr_of(d));
                        // Stock: read + decrement per order line.
                        for &key in cur.items.iter().take(self.cfg.order_lines) {
                            if let Some(rec) = wh.stock.lookup(key, heap, sink) {
                                sink.store(heap.addr_of(rec));
                            }
                        }
                        // Customer credit check.
                        wh.customers.lookup(cur.customer, heap, sink);
                        // The order object itself, inserted into the tree.
                        // (A mid-transaction allocation failure re-runs
                        // this phase after a collection.)
                        let Some(order) = Self::try_alloc(
                            heap,
                            tlab,
                            self.cfg.db.order_bytes,
                            Lifetime::Permanent,
                            sink,
                        ) else {
                            return StepResult::user(Control::NeedsGc);
                        };
                        let key = wh.next_order;
                        wh.next_order += 1;
                        wh.orders.insert(key, order, heap, sink);
                    }
                    TxKind::Payment => {
                        let d = wh.districts[cur.district];
                        heap.read_object(d, sink);
                        sink.store(heap.addr_of(d));
                        if let Some(c) = wh.customers.lookup(cur.customer, heap, sink) {
                            sink.store(heap.addr_of(c));
                        }
                        let Some(hist) = Self::try_alloc(
                            heap,
                            tlab,
                            self.cfg.db.history_bytes,
                            Lifetime::Permanent,
                            sink,
                        ) else {
                            return StepResult::user(Control::NeedsGc);
                        };
                        wh.history.push_back(hist);
                        if wh.history.len() > self.cfg.db.history_capacity {
                            if let Some(old) = wh.history.pop_front() {
                                heap.free(old);
                            }
                        }
                    }
                    TxKind::OrderStatus => {
                        wh.customers.lookup(cur.customer, heap, sink);
                        if wh.next_order > wh.oldest_undelivered {
                            let span = wh.next_order - wh.oldest_undelivered;
                            let key = wh.oldest_undelivered + cur.items[0] % span;
                            wh.orders.lookup(key, heap, sink);
                        }
                    }
                    TxKind::Delivery => {
                        for _ in 0..10 {
                            if wh.oldest_undelivered >= wh.next_order {
                                break;
                            }
                            let key = wh.oldest_undelivered;
                            wh.oldest_undelivered += 1;
                            if let Some(order) = wh.orders.remove(key, heap, sink) {
                                heap.free(order);
                            }
                        }
                        if let Some(c) = wh.customers.lookup(cur.customer, heap, sink) {
                            sink.store(heap.addr_of(c));
                        }
                    }
                    TxKind::StockLevel => {
                        let d = wh.districts[cur.district];
                        heap.read_object(d, sink);
                        for i in 0..20u64 {
                            let key = (cur.items[0] + i * 37) % self.cfg.db.stock_per_wh;
                            wh.stock.lookup(key, heap, sink);
                        }
                    }
                }
                self.lockset.emit_release(self.wh_lock_word(cur.wh), sink);
                self.phases[thread] = Phase::GlobalAcq;
                StepResult::user(Control::Release(Self::wh_lock(cur.wh)))
            }
            Phase::GlobalAcq => {
                self.lockset
                    .emit_acquire(LockId(GLOBAL_LOCK), &mut *ctx.sink);
                self.phases[thread] = Phase::GlobalWork;
                StepResult::user(Control::Acquire(crate::model::SchedLock(GLOBAL_LOCK)))
            }
            Phase::GlobalWork => {
                let sink = &mut *ctx.sink;
                // Company-wide counters and JVM-internal shared-resource
                // bookkeeping: the hottest data line in SPECjbb.
                sink.instructions(self.cfg.global_work_instructions);
                let company = self.heap.addr_of(self.db.company);
                sink.load(company);
                sink.store(company);
                sink.store(company.offset(64));
                sink.store(company.offset(128));
                self.lockset.emit_release(LockId(GLOBAL_LOCK), sink);
                self.phases[thread] = Phase::Finish;
                StepResult::user(Control::Release(crate::model::SchedLock(GLOBAL_LOCK)))
            }
            Phase::Finish => {
                let sink = &mut *ctx.sink;
                // Company-wide statistics are updated with atomic
                // increments on every transaction (no monitor): the
                // hottest data line in SPECjbb.
                let company = self.heap.addr_of(self.db.company);
                sink.instructions(20);
                sink.store(company);
                sink.store(company.offset(64));
                // JVM-internal shared structures (allocation metadata,
                // monitor bookkeeping) are updated on every transaction.
                let jvm = self.heap.addr_of(self.db.jvm_shared);
                for _ in 0..2 {
                    let line = ctx.rng.gen_range(0..32u64);
                    sink.load(jvm.offset(line * 64));
                    sink.store(jvm.offset(line * 64));
                }
                let half = self.cfg.calls_per_tx - self.cfg.calls_per_tx / 2;
                self.methods.exec_path(&self.code, half, ctx.rng, sink);
                // Ephemeral scratch (marshalling buffers, iterators, strings).
                if Self::try_alloc(
                    &mut self.heap,
                    &mut self.threads[thread].tlab,
                    self.cfg.scratch_per_tx,
                    Lifetime::Ephemeral,
                    sink,
                )
                .is_none()
                {
                    return StepResult::user(Control::NeedsGc);
                }
                for _ in 0..self.cfg.frames_per_tx {
                    self.threads[thread].pop_frame(self.cfg.frame_bytes, sink);
                }
                self.threads[thread].unwind();
                sink.instructions(self.cfg.pad_instructions / 2);
                self.heap.advance_epoch(1);
                self.tx_done[thread] += 1;
                if let Some(begin) = self.tx_begin[thread].take() {
                    self.resp_hist.record(ctx.now.saturating_sub(begin));
                }
                self.phases[thread] = Phase::Begin;
                StepResult::user(Control::TxDone)
            }
        }
    }

    fn collect(&mut self, sink: &mut dyn MemSink) {
        for t in &mut self.threads {
            t.tlab.retire();
        }
        self.heap.minor_gc(&mut *sink);
        if self.heap.needs_major_gc() {
            self.heap.major_gc(&mut *sink);
        }
        self.gc_count += 1;
    }

    fn heap_after_last_gc(&self) -> Option<u64> {
        if self.gc_count == 0 {
            None
        } else {
            Some(self.heap.stats().live_after_last_gc)
        }
    }

    fn gc_pressure(&self) -> f64 {
        self.heap.eden_occupancy()
    }

    fn response_hist(&self) -> Option<&Histogram> {
        Some(SpecJbb::response_hist(self))
    }

    fn reset_response_hist(&mut self) {
        SpecJbb::reset_response_hist(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::Addr;
    use prng::SimRng;

    fn small() -> SpecJbb {
        let cfg = SpecJbbConfig::scaled(4, 64);
        let region = AddrRange::new(Addr(0x1000_0000), cfg.required_bytes());
        SpecJbb::new(cfg, region)
    }

    /// Drives one thread through phases with a permissive engine that
    /// grants every lock immediately and collects on demand.
    fn drive(jbb: &mut SpecJbb, thread: usize, steps: usize) -> (u64, u64) {
        let mut rng = SimRng::seed_from_u64(42);
        let mut sink = CountingSink::new();
        let mut txs = 0;
        let mut gcs = 0;
        for _ in 0..steps {
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng: &mut rng,
                now: 0,
            };
            match jbb.step(thread, &mut ctx).control {
                Control::TxDone => txs += 1,
                Control::NeedsGc => {
                    jbb.collect(&mut sink);
                    gcs += 1;
                }
                _ => {}
            }
        }
        (txs, gcs)
    }

    #[test]
    fn transactions_complete_and_gcs_happen() {
        let mut jbb = small();
        let (txs, gcs) = drive(&mut jbb, 0, 30_000);
        assert!(txs > 1000, "transactions must flow: {txs}");
        assert!(gcs > 0, "the scaled eden must fill: {gcs}");
        assert_eq!(jbb.total_tx(), txs);
    }

    #[test]
    fn phase_machine_cycles_through_lock_protocol() {
        let mut jbb = small();
        let mut rng = SimRng::seed_from_u64(1);
        let mut sink = CountingSink::new();
        let mut seen_acquire = 0;
        let mut seen_release = 0;
        for _ in 0..100 {
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng: &mut rng,
                now: 0,
            };
            match jbb.step(0, &mut ctx).control {
                Control::Acquire(_) => seen_acquire += 1,
                Control::Release(_) => seen_release += 1,
                Control::NeedsGc => jbb.collect(&mut sink),
                _ => {}
            }
        }
        assert!(seen_acquire >= 2 && seen_release >= 2);
        assert_eq!(seen_acquire, seen_release, "acquires pair with releases");
    }

    #[test]
    fn lock_table_has_global_plus_warehouses() {
        let jbb = small();
        assert_eq!(jbb.lock_table().len(), 5);
    }

    #[test]
    fn heap_after_gc_reported_once_collected() {
        let mut jbb = small();
        assert_eq!(jbb.heap_after_last_gc(), None);
        drive(&mut jbb, 0, 30_000);
        let after = jbb.heap_after_last_gc().expect("a GC ran");
        assert!(after > 0, "database keeps the heap non-empty");
    }

    #[test]
    fn orders_are_retired_by_delivery() {
        let mut jbb = small();
        drive(&mut jbb, 0, 60_000);
        let wh = &jbb.db.warehouses[0];
        // In steady state deliveries keep in-flight orders bounded.
        let in_flight = wh.next_order - wh.oldest_undelivered;
        assert!(
            in_flight < 2_000,
            "delivery must keep up with new orders: {in_flight} in flight"
        );
    }

    #[test]
    fn code_footprint_is_moderate() {
        let jbb = small();
        let f = jbb.code_footprint();
        assert!(
            (100 << 10..400 << 10).contains(&f),
            "SPECjbb hot code should be a few hundred KB: {} KB",
            f >> 10
        );
    }
}
