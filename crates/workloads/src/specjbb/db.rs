//! SPECjbb's emulated database: per-warehouse object trees.
//!
//! SPECjbb models a TPC-C-like wholesale company whose data lives entirely
//! in memory as trees of Java objects (paper Section 2.1, Figure 2). Each
//! warehouse owns stock, customer, district, order and history structures;
//! the item catalog is global and read-only. Because the emulated
//! database *is* the Java heap, SPECjbb's data footprint grows linearly
//! with the warehouse count — the root cause of the Figure 11/13/16
//! differences against ECperf.

use std::collections::VecDeque;

use jvm::heap::Heap;
use jvm::object::ObjectId;
use memsys::MemSink;

use crate::objtree::{build_table, ObjTree};
use crate::zipf::ZipfSampler;

/// Sizing parameters for the emulated database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JbbDbConfig {
    /// Items in the global catalog.
    pub items: u64,
    /// Bytes per item record.
    pub item_bytes: u32,
    /// Stock records per warehouse (one per item in real SPECjbb).
    pub stock_per_wh: u64,
    /// Bytes per stock record.
    pub stock_bytes: u32,
    /// Customers per warehouse.
    pub customers_per_wh: u64,
    /// Bytes per customer record.
    pub customer_bytes: u32,
    /// Districts per warehouse.
    pub districts_per_wh: u64,
    /// Bytes per district record.
    pub district_bytes: u32,
    /// Bytes per order object (order + order lines).
    pub order_bytes: u32,
    /// History ring capacity per warehouse.
    pub history_capacity: usize,
    /// Bytes per history record.
    pub history_bytes: u32,
    /// Zipf exponent for item/stock popularity (low: TPC-C-style NURand
    /// spreads order lines over most of the catalog).
    pub item_skew: f64,
    /// Zipf exponent for customer popularity (higher: repeat customers).
    pub customer_skew: f64,
}

impl Default for JbbDbConfig {
    /// Full-size database: ~14 MB of live data per warehouse, matching the
    /// paper's Figure 11 slope of roughly 15 MB per warehouse.
    fn default() -> Self {
        JbbDbConfig {
            items: 20_000,
            item_bytes: 128,
            stock_per_wh: 20_000,
            stock_bytes: 448,
            customers_per_wh: 3_000,
            customer_bytes: 1536,
            districts_per_wh: 10,
            district_bytes: 256,
            order_bytes: 1024,
            history_capacity: 1_000,
            history_bytes: 128,
            item_skew: 0.3,
            customer_skew: 0.9,
        }
    }
}

impl JbbDbConfig {
    /// A down-scaled database for scaled-heap runs and tests; record
    /// *sizes* stay realistic, record *counts* shrink by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn scaled(divisor: u64) -> Self {
        assert!(divisor > 0, "scale divisor must be positive");
        let d = JbbDbConfig::default();
        JbbDbConfig {
            items: (d.items / divisor).max(64),
            stock_per_wh: (d.stock_per_wh / divisor).max(64),
            customers_per_wh: (d.customers_per_wh / divisor).max(16),
            history_capacity: ((d.history_capacity as u64 / divisor).max(16)) as usize,
            ..d
        }
    }

    /// Approximate live bytes contributed per warehouse.
    pub fn bytes_per_warehouse(&self) -> u64 {
        self.stock_per_wh * self.stock_bytes as u64
            + self.customers_per_wh * self.customer_bytes as u64
            + self.districts_per_wh * self.district_bytes as u64
            + self.history_capacity as u64 * self.history_bytes as u64
    }
}

/// One warehouse's data.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// Stock records keyed by item id.
    pub stock: ObjTree,
    /// Customer records keyed by customer id.
    pub customers: ObjTree,
    /// District records (10 in TPC-C nomenclature).
    pub districts: Vec<ObjectId>,
    /// In-flight orders keyed by order id.
    pub orders: ObjTree,
    /// Next order id to assign.
    pub next_order: u64,
    /// Oldest order id not yet delivered.
    pub oldest_undelivered: u64,
    /// History ring (oldest first).
    pub history: VecDeque<ObjectId>,
}

/// The whole emulated database.
#[derive(Debug, Clone)]
pub struct JbbDb {
    cfg: JbbDbConfig,
    /// The global, read-only item catalog.
    pub items: ObjTree,
    /// Per-warehouse data.
    pub warehouses: Vec<Warehouse>,
    /// Popularity sampler over items.
    pub item_keys: ZipfSampler,
    /// Popularity sampler over customers.
    pub customer_keys: ZipfSampler,
    /// The shared company-wide statistics object (every transaction
    /// updates it — the hottest line in SPECjbb).
    pub company: ObjectId,
    /// JVM-internal shared structures (allocation-region metadata, class
    /// counters, monitor lists): a small pool of lines written by every
    /// thread — the paper suspects exactly this kind of contention
    /// "within the JVM" (Section 4.1).
    pub jvm_shared: ObjectId,
}

impl JbbDb {
    /// Builds the database for `warehouse_count` warehouses directly in
    /// the old generation. Construction emits no references (setup happens
    /// before the measurement window); `sink` only receives the tree
    /// bookkeeping writes, which callers typically discard.
    pub fn build(
        cfg: JbbDbConfig,
        warehouse_count: usize,
        heap: &mut Heap,
        sink: &mut (impl MemSink + ?Sized),
    ) -> Self {
        let items = build_table(heap, cfg.items, cfg.item_bytes, sink);
        let warehouses = (0..warehouse_count)
            .map(|_| Warehouse {
                stock: build_table(heap, cfg.stock_per_wh, cfg.stock_bytes, sink),
                customers: build_table(heap, cfg.customers_per_wh, cfg.customer_bytes, sink),
                districts: (0..cfg.districts_per_wh)
                    .map(|_| heap.alloc_permanent_old(cfg.district_bytes))
                    .collect(),
                orders: ObjTree::new(heap),
                next_order: 0,
                oldest_undelivered: 0,
                history: VecDeque::with_capacity(cfg.history_capacity),
            })
            .collect();
        let company = heap.alloc_permanent_old(256);
        let jvm_shared = heap.alloc_permanent_old(32 * 64);
        JbbDb {
            item_keys: ZipfSampler::new(cfg.items as usize, cfg.item_skew),
            customer_keys: ZipfSampler::new(cfg.customers_per_wh as usize, cfg.customer_skew),
            cfg,
            items,
            warehouses,
            company,
            jvm_shared,
        }
    }

    /// The database sizing in effect.
    pub fn config(&self) -> &JbbDbConfig {
        &self.cfg
    }

    /// Number of warehouses.
    pub fn warehouse_count(&self) -> usize {
        self.warehouses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm::heap::{HeapConfig, HeapGeometry};
    use memsys::{Addr, AddrRange, CountingSink};

    fn heap() -> Heap {
        Heap::new(
            HeapConfig {
                geometry: HeapGeometry {
                    eden: 1 << 20,
                    survivor: 256 << 10,
                    old: 128 << 20,
                },
                tenure_age: 1,
                tlab_bytes: 8 << 10,
            },
            AddrRange::new(Addr(0x4000_0000), 256 << 20),
        )
    }

    #[test]
    fn build_populates_all_tables() {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let db = JbbDb::build(JbbDbConfig::scaled(20), 3, &mut h, &mut sink);
        assert_eq!(db.warehouse_count(), 3);
        assert_eq!(db.items.len() as u64, JbbDbConfig::scaled(20).items);
        for w in &db.warehouses {
            assert_eq!(w.stock.len() as u64, db.config().stock_per_wh);
            assert_eq!(w.customers.len() as u64, db.config().customers_per_wh);
            assert_eq!(w.districts.len() as u64, db.config().districts_per_wh);
            assert!(w.orders.is_empty());
        }
    }

    #[test]
    fn live_bytes_grow_linearly_with_warehouses() {
        let mut sink = CountingSink::new();
        let cfg = JbbDbConfig::scaled(40);
        let mut h1 = heap();
        JbbDb::build(cfg, 1, &mut h1, &mut sink);
        let mut h4 = heap();
        JbbDb::build(cfg, 4, &mut h4, &mut sink);
        let b1 = h1.live_bytes();
        let b4 = h4.live_bytes();
        // Subtract the shared item catalog to isolate per-warehouse growth.
        let items = cfg.items * cfg.item_bytes as u64;
        let per1 = b1 - items;
        let per4 = b4 - items;
        let ratio = per4 as f64 / per1 as f64;
        assert!(
            (3.3..=4.7).contains(&ratio),
            "warehouse data should scale ~4x (trees add overhead): {ratio}"
        );
    }

    #[test]
    fn full_size_database_is_about_14_mb_per_warehouse() {
        let per = JbbDbConfig::default().bytes_per_warehouse();
        assert!(
            (12 << 20..=17 << 20).contains(&per),
            "paper Figure 11 slope ~15 MB/warehouse, got {} MB",
            per >> 20
        );
    }
}
