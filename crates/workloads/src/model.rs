//! The workload execution model: how benchmark threads talk to the
//! simulation engine.
//!
//! A workload is a set of threads, each advanced in bounded *steps*. A
//! step emits its memory references and instruction counts through a
//! [`MemSink`] and then returns a [`Control`] telling the engine what the
//! thread needs next: keep running, a lock, an I/O completion, a garbage
//! collection, or nothing (transaction finished). The engine — which owns
//! processors, clocks and the coherent memory system — schedules threads
//! over processors, resolves lock contention (idle time), serializes
//! garbage collection (GC-idle time) and advances virtual time.
//!
//! Splitting at exactly these points is what lets the paper's phenomena
//! emerge: lock waits become Figure 5's idle time, kernel spin locks
//! become ECperf's system time, and the single-threaded collector becomes
//! the GC-idle slice and the Figure 10 snoop-copyback collapse.

use memsys::{MemSink, RegionMap};
use prng::SimRng;
use sysos::modes::ExecMode;

/// A scheduler-level lock (mutex or counting semaphore) index.
///
/// Workloads declare their locks up front via [`Workload::lock_table`];
/// the engine enforces mutual exclusion and accounts waiting time. The
/// *memory traffic* of a lock (the CAS on its lock word) is emitted by the
/// workload itself through the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchedLock(pub u32);

/// How waiters on a lock spend their time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Sleep in the scheduler: waiting shows up as *idle* time (pool
    /// waits, long queues).
    Block,
    /// Busy-wait: waiting is charged to the thread's current mode
    /// (Solaris adaptive kernel mutexes — the source of ECperf's growing
    /// *system* time).
    Spin,
    /// HotSpot-style adaptive monitor: spin on the processor while the
    /// queue is short (no migration, no idle), park once it grows (idle
    /// time under heavy contention).
    Adaptive,
}

/// Declares one scheduler lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockDesc {
    /// Concurrent holders allowed (1 = mutex; >1 = counting semaphore,
    /// e.g. a database connection pool).
    pub capacity: u32,
    /// Wait behavior.
    pub wait: WaitKind,
}

impl LockDesc {
    /// A Java monitor: adaptive spin-then-park.
    pub fn mutex() -> Self {
        LockDesc {
            capacity: 1,
            wait: WaitKind::Adaptive,
        }
    }

    /// A strictly parking mutex.
    pub fn blocking_mutex() -> Self {
        LockDesc {
            capacity: 1,
            wait: WaitKind::Block,
        }
    }

    /// A spinning kernel mutex.
    pub fn spin_mutex() -> Self {
        LockDesc {
            capacity: 1,
            wait: WaitKind::Spin,
        }
    }

    /// A blocking counting semaphore of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn semaphore(capacity: u32) -> Self {
        assert!(capacity > 0, "semaphore capacity must be positive");
        LockDesc {
            capacity,
            wait: WaitKind::Block,
        }
    }
}

/// What a thread needs after a step.
///
/// The engine's contract for [`Control::Acquire`]: the thread will only be
/// stepped again once the lock has been granted, so the thread may assume
/// possession in its next step. [`Control::Release`] applies after the
/// step's references have been charged (the step's work happened *while
/// holding*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running; nothing special happened.
    Continue,
    /// The thread needs `SchedLock` before its next step.
    Acquire(SchedLock),
    /// The thread has released `SchedLock`.
    Release(SchedLock),
    /// A transaction (SPECjbb operation / ECperf BBop) completed.
    TxDone,
    /// The thread is waiting for an external completion (database reply,
    /// emulator response) arriving this many cycles from now.
    IoWait(u64),
    /// Allocation failed: the engine must run a stop-the-world collection
    /// (via [`Workload::collect`]) and step this thread again.
    NeedsGc,
    /// The thread has no more work.
    Done,
}

/// The result of one step: what was done and what comes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepResult {
    /// All references and instructions of this step ran in this mode.
    pub mode: ExecMode,
    /// What the thread needs next.
    pub control: Control,
}

impl StepResult {
    /// A user-mode step with the given control.
    pub fn user(control: Control) -> Self {
        StepResult {
            mode: ExecMode::User,
            control,
        }
    }

    /// A system-mode (kernel) step with the given control.
    pub fn system(control: Control) -> Self {
        StepResult {
            mode: ExecMode::System,
            control,
        }
    }
}

/// Context handed to each step.
pub struct StepCtx<'a> {
    /// Where the step's instructions and references go.
    pub sink: &'a mut dyn MemSink,
    /// Deterministic per-run randomness.
    pub rng: &'a mut SimRng,
    /// The stepping thread's current virtual time in cycles.
    pub now: u64,
}

/// A complete benchmark workload.
pub trait Workload {
    /// Number of threads (fixed for a run).
    fn thread_count(&self) -> usize;

    /// Scheduler locks this workload uses, indexed by [`SchedLock`].
    fn lock_table(&self) -> Vec<LockDesc>;

    /// Advances thread `thread` by one bounded step.
    fn step(&mut self, thread: usize, ctx: &mut StepCtx<'_>) -> StepResult;

    /// Runs a stop-the-world collection; references emitted through `sink`
    /// execute on the single collecting processor.
    fn collect(&mut self, sink: &mut dyn MemSink);

    /// Heap occupancy immediately after the last collection, in bytes
    /// (the Figure 11 metric); `None` if no collection has run yet.
    fn heap_after_last_gc(&self) -> Option<u64>;

    /// How close the workload is to triggering a collection, in 0..=1
    /// (eden occupancy for the generational workloads; 0 for workloads
    /// that never collect). The sampled-execution scheduler polls this
    /// at unit boundaries to force detailed simulation onto units about
    /// to contain a GC burst — a one-unit event that reactive cluster
    /// scheduling would only catch after the fact.
    fn gc_pressure(&self) -> f64 {
        0.0
    }

    /// Named address regions for cycle attribution (heap generations,
    /// code cache, lock words, stacks, kernel structures). Defaults to
    /// an empty map: every access classifies as `other`. Built once at
    /// machine construction — regions are fixed for a run.
    fn region_map(&self) -> RegionMap {
        RegionMap::new()
    }

    /// Per-transaction response-time histogram, when the workload keeps
    /// one (`None` for workloads without a transaction notion).
    fn response_hist(&self) -> Option<&probes::Histogram> {
        None
    }

    /// Discards accumulated response times, so a measurement window
    /// observes only its own transactions.
    fn reset_response_hist(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_desc_constructors() {
        assert_eq!(LockDesc::mutex().capacity, 1);
        assert_eq!(LockDesc::mutex().wait, WaitKind::Adaptive);
        assert_eq!(LockDesc::blocking_mutex().wait, WaitKind::Block);
        assert_eq!(LockDesc::spin_mutex().wait, WaitKind::Spin);
        assert_eq!(LockDesc::semaphore(8).capacity, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_semaphore_panics() {
        let _ = LockDesc::semaphore(0);
    }

    #[test]
    fn step_result_modes() {
        assert_eq!(StepResult::user(Control::Continue).mode, ExecMode::User);
        assert_eq!(StepResult::system(Control::TxDone).mode, ExecMode::System);
    }
}
