//! Property-based verification of the workload substrates: the object
//! B-tree against a reference map, the bean cache against a reference
//! LRU, and the Zipf sampler's distribution properties.

use std::collections::BTreeMap;

use proptest::prelude::*;

use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::ObjectId;
use memsys::{Addr, AddrRange, CountingSink};
use workloads::ecperf::cache::{BeanKey, CacheLookup, ObjectCache};
use workloads::objtree::ObjTree;
use workloads::zipf::ZipfSampler;

fn heap() -> Heap {
    Heap::new(
        HeapConfig {
            geometry: HeapGeometry {
                eden: 256 << 10,
                survivor: 64 << 10,
                old: 32 << 20,
            },
            tenure_age: 1,
            tlab_bytes: 8 << 10,
        },
        AddrRange::new(Addr(0x4000_0000), 64 << 20),
    )
}

#[derive(Debug, Clone, Copy)]
enum TreeOp {
    Insert(u16),
    Remove(u16),
    Lookup(u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0u16..800).prop_map(TreeOp::Insert),
        (0u16..800).prop_map(TreeOp::Remove),
        (0u16..800).prop_map(TreeOp::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The object B-tree agrees with `BTreeMap` on every operation.
    #[test]
    fn objtree_matches_btreemap(ops in prop::collection::vec(tree_op(), 1..400)) {
        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut tree = ObjTree::new(&mut h);
        let mut reference: BTreeMap<u64, ObjectId> = BTreeMap::new();
        for &op in &ops {
            match op {
                TreeOp::Insert(k) => {
                    let rec = h.alloc_permanent_old(64);
                    let old = tree.insert(k as u64, rec, &mut h, &mut sink);
                    let ref_old = reference.insert(k as u64, rec);
                    prop_assert_eq!(old, ref_old);
                }
                TreeOp::Remove(k) => {
                    let got = tree.remove(k as u64, &h, &mut sink);
                    let expect = reference.remove(&(k as u64));
                    prop_assert_eq!(got, expect);
                }
                TreeOp::Lookup(k) => {
                    let got = tree.lookup(k as u64, &h, &mut sink);
                    let expect = reference.get(&(k as u64)).copied();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(tree.len(), reference.len());
        }
        // Full agreement at the end, via scan.
        let mut scanned = BTreeMap::new();
        tree.scan(&h, &mut sink, |k, r| {
            scanned.insert(k, r);
        });
        prop_assert_eq!(scanned, reference);
    }

    /// The bean cache never exceeds capacity, evicts exactly the LRU
    /// entry, and freshness follows the TTL.
    #[test]
    fn bean_cache_is_an_lru_with_ttl(
        keys in prop::collection::vec(0u64..96, 1..400),
        capacity in 2usize..24,
        ttl in 1u64..200,
    ) {
        let mut cache = ObjectCache::new(capacity, ttl);
        // Reference: MRU-first vec of (key, loaded_at).
        let mut reference: Vec<(u64, u64)> = Vec::new();
        for (now, &k) in keys.iter().enumerate() {
            let now = now as u64;
            let key = BeanKey::new(1, k);
            let got = cache.lookup(key, now);
            let ref_pos = reference.iter().position(|&(rk, _)| rk == k);
            match (got, ref_pos) {
                (CacheLookup::Miss, None) => {
                    // Insert; evict reference LRU if full.
                    if reference.len() == capacity {
                        reference.pop();
                    }
                    cache.insert(key, ObjectId(k as u32), now);
                    reference.insert(0, (k, now));
                }
                (CacheLookup::Hit(_), Some(pos)) => {
                    let (rk, loaded) = reference.remove(pos);
                    prop_assert!(now - loaded <= ttl, "hit but reference says stale");
                    reference.insert(0, (rk, loaded));
                }
                (CacheLookup::Stale(_), Some(pos)) => {
                    let (rk, loaded) = reference.remove(pos);
                    prop_assert!(now - loaded > ttl, "stale but reference says fresh");
                    // Refresh.
                    cache.insert(key, ObjectId(k as u32), now);
                    reference.insert(0, (rk.to_owned(), now));
                }
                (got, refp) => {
                    return Err(TestCaseError::fail(format!(
                        "cache {got:?} disagrees with reference position {refp:?} for key {k}"
                    )));
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), reference.len());
        }
    }

    /// Zipf samples stay in the domain and lower indices are (weakly)
    /// more popular for a skewed distribution.
    #[test]
    fn zipf_is_monotonically_skewed(n in 8usize..256, seed in 0u64..1000) {
        use rand::SeedableRng;
        let z = ZipfSampler::new(n, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut counts = vec![0u32; n];
        for _ in 0..4000 {
            let s = z.sample(&mut rng);
            prop_assert!(s < n);
            counts[s] += 1;
        }
        // Head quarter beats tail quarter.
        let q = (n / 4).max(1);
        let head: u32 = counts[..q].iter().sum();
        let tail: u32 = counts[n - q..].iter().sum();
        prop_assert!(head > tail, "head {head} should beat tail {tail}");
    }
}
