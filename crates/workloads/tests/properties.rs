//! Randomized verification of the workload substrates: the object
//! B-tree against a reference map, the bean cache against a reference
//! LRU, and the Zipf sampler's distribution properties. Driven by the
//! in-tree seeded PRNG so every run exercises the same cases.

use std::collections::BTreeMap;

use jvm::heap::{Heap, HeapConfig, HeapGeometry};
use jvm::object::ObjectId;
use memsys::{Addr, AddrRange, CountingSink};
use prng::SimRng;
use workloads::ecperf::cache::{BeanKey, CacheLookup, ObjectCache};
use workloads::objtree::ObjTree;
use workloads::zipf::ZipfSampler;

fn heap() -> Heap {
    Heap::new(
        HeapConfig {
            geometry: HeapGeometry {
                eden: 256 << 10,
                survivor: 64 << 10,
                old: 32 << 20,
            },
            tenure_age: 1,
            tlab_bytes: 8 << 10,
        },
        AddrRange::new(Addr(0x4000_0000), 64 << 20),
    )
}

#[derive(Debug, Clone, Copy)]
enum TreeOp {
    Insert(u16),
    Remove(u16),
    Lookup(u16),
}

fn random_tree_op(rng: &mut SimRng) -> TreeOp {
    let k = rng.gen_range(0..800u16);
    match rng.gen_range(0..3u32) {
        0 => TreeOp::Insert(k),
        1 => TreeOp::Remove(k),
        _ => TreeOp::Lookup(k),
    }
}

/// The object B-tree agrees with `BTreeMap` on every operation.
#[test]
fn objtree_matches_btreemap() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(1..400usize);
        let ops: Vec<TreeOp> = (0..n_ops).map(|_| random_tree_op(&mut rng)).collect();

        let mut h = heap();
        let mut sink = CountingSink::new();
        let mut tree = ObjTree::new(&mut h);
        let mut reference: BTreeMap<u64, ObjectId> = BTreeMap::new();
        for &op in &ops {
            match op {
                TreeOp::Insert(k) => {
                    let rec = h.alloc_permanent_old(64);
                    let old = tree.insert(k as u64, rec, &mut h, &mut sink);
                    let ref_old = reference.insert(k as u64, rec);
                    assert_eq!(old, ref_old, "seed {seed}: insert {k}");
                }
                TreeOp::Remove(k) => {
                    let got = tree.remove(k as u64, &h, &mut sink);
                    let expect = reference.remove(&(k as u64));
                    assert_eq!(got, expect, "seed {seed}: remove {k}");
                }
                TreeOp::Lookup(k) => {
                    let got = tree.lookup(k as u64, &h, &mut sink);
                    let expect = reference.get(&(k as u64)).copied();
                    assert_eq!(got, expect, "seed {seed}: lookup {k}");
                }
            }
            assert_eq!(tree.len(), reference.len());
        }
        // Full agreement at the end, via scan.
        let mut scanned = BTreeMap::new();
        tree.scan(&h, &mut sink, |k, r| {
            scanned.insert(k, r);
        });
        assert_eq!(scanned, reference, "seed {seed}: scan mismatch");
    }
}

/// The bean cache never exceeds capacity, evicts exactly the LRU
/// entry, and freshness follows the TTL.
#[test]
fn bean_cache_is_an_lru_with_ttl() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let capacity = rng.gen_range(2..24usize);
        let ttl = rng.gen_range(1..200u64);
        let n_keys = rng.gen_range(1..400usize);
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.gen_range(0..96u64)).collect();

        let mut cache = ObjectCache::new(capacity, ttl);
        // Reference: MRU-first vec of (key, loaded_at).
        let mut reference: Vec<(u64, u64)> = Vec::new();
        for (now, &k) in keys.iter().enumerate() {
            let now = now as u64;
            let key = BeanKey::new(1, k);
            let got = cache.lookup(key, now);
            let ref_pos = reference.iter().position(|&(rk, _)| rk == k);
            match (got, ref_pos) {
                (CacheLookup::Miss, None) => {
                    // Insert; evict reference LRU if full.
                    if reference.len() == capacity {
                        reference.pop();
                    }
                    cache.insert(key, ObjectId(k as u32), now);
                    reference.insert(0, (k, now));
                }
                (CacheLookup::Hit(_), Some(pos)) => {
                    let (rk, loaded) = reference.remove(pos);
                    assert!(
                        now - loaded <= ttl,
                        "seed {seed}: hit but reference says stale"
                    );
                    reference.insert(0, (rk, loaded));
                }
                (CacheLookup::Stale(_), Some(pos)) => {
                    let (rk, loaded) = reference.remove(pos);
                    assert!(
                        now - loaded > ttl,
                        "seed {seed}: stale but reference says fresh"
                    );
                    // Refresh.
                    cache.insert(key, ObjectId(k as u32), now);
                    reference.insert(0, (rk, now));
                }
                (got, refp) => {
                    panic!(
                        "seed {seed}: cache {got:?} disagrees with reference \
                         position {refp:?} for key {k}"
                    );
                }
            }
            assert!(cache.len() <= capacity);
            assert_eq!(cache.len(), reference.len());
        }
    }
}

/// Zipf samples stay in the domain and lower indices are (weakly)
/// more popular for a skewed distribution.
#[test]
fn zipf_is_monotonically_skewed() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let n = rng.gen_range(8..256usize);
        let z = ZipfSampler::new(n, 1.0);
        let mut counts = vec![0u32; n];
        for _ in 0..4000 {
            let s = z.sample(&mut rng);
            assert!(s < n);
            counts[s] += 1;
        }
        // Head quarter beats tail quarter.
        let q = (n / 4).max(1);
        let head: u32 = counts[..q].iter().sum();
        let tail: u32 = counts[n - q..].iter().sum();
        assert!(
            head > tail,
            "seed {seed}: head {head} should beat tail {tail}"
        );
    }
}
