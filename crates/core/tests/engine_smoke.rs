//! Engine smoke tests: the machine must drive both workloads to steady
//! state without deadlock and produce physically sensible reports.

use memsys::{Addr, AddrRange};
use middlesim::{Machine, MachineConfig};
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

fn jbb(pset: usize, warehouses: usize, seed: u64) -> Machine<SpecJbb> {
    let cfg = SpecJbbConfig::scaled(warehouses, 64);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let wl = SpecJbb::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

fn ecperf(pset: usize, ir: u32, seed: u64) -> Machine<Ecperf> {
    let mut cfg = EcperfConfig::scaled(ir, 64);
    cfg.threads = (pset * 3).max(4);
    cfg.db_connections = (cfg.threads as u32 / 2).max(2);
    let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
    let wl = Ecperf::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

#[test]
fn specjbb_runs_to_horizon_and_completes_transactions() {
    let mut m = jbb(2, 4, 1);
    m.run_until(20 * MCYCLES);
    m.begin_measurement();
    m.run_until(60 * MCYCLES);
    let r = m.window_report();
    assert!(r.transactions > 100, "txs: {}", r.transactions);
    assert!(
        r.cpi.cpi() > 1.3 && r.cpi.cpi() < 6.0,
        "cpi: {}",
        r.cpi.cpi()
    );
    let b = r.modes;
    assert!((b.sum() - 1.0).abs() < 0.02, "modes sum: {}", b.sum());
    assert!(b.user > 0.3, "user share: {b}");
}

#[test]
fn ecperf_runs_with_kernel_time_and_io() {
    let mut m = ecperf(2, 2, 1);
    m.run_until(20 * MCYCLES);
    m.begin_measurement();
    m.run_until(60 * MCYCLES);
    let r = m.window_report();
    assert!(r.transactions > 20, "bbops: {}", r.transactions);
    assert!(r.modes.system > 0.01, "system share: {}", r.modes.system);
    assert!(r.cpi.cpi() > 1.3, "cpi: {}", r.cpi.cpi());
}

#[test]
fn specjbb_gc_happens_and_is_visible() {
    let mut m = jbb(2, 4, 2);
    m.run_until(120 * MCYCLES);
    assert!(m.gc_count() > 0, "GCs: {}", m.gc_count());
    assert!(!m.gc_intervals().is_empty());
}

#[test]
fn multiprocessor_c2c_ratio_grows_with_processors() {
    let measure = |p: usize| {
        let mut m = jbb(p, 2 * p.max(2), 3);
        m.run_until(15 * MCYCLES);
        m.begin_measurement();
        m.run_until(45 * MCYCLES);
        m.window_report().c2c_ratio
    };
    let r2 = measure(2);
    let r8 = measure(8);
    assert!(r8 > r2, "c2c ratio must grow with P: {r2:.3} -> {r8:.3}");
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut m = jbb(2, 4, 7);
        m.run_until(30 * MCYCLES);
        (m.transactions(), m.memory().stats().total_accesses())
    };
    assert_eq!(run(), run());
}
