//! End-to-end `simdiff` drift-gate test, driving the real binary.
//!
//! The gate's contract, proven against actual simulation output: a
//! same-seed re-run diffs clean (exit 0), a single perturbed counter
//! fails the gate (exit nonzero), the `--write-baseline`/`--baseline`
//! round trip works, and comparisons across mismatched `sim_mode`
//! provenance are refused (exit 2).

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use memsys::{Addr, AddrRange};
use middlesim::{ExperimentPlan, Machine, MachineConfig};
use probes::RunLog;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

const MCYCLES: u64 = 1_000_000;

/// One tiny probed run, serialized to JSONL with the given `sim_mode`.
fn mini_runlog(sim_mode: &str) -> String {
    let jobs: Vec<u64> = vec![0, 1];
    let log = Arc::new(RunLog::new());
    let plan =
        ExperimentPlan::serial(middlesim::Effort::Quick).with_run_log(Arc::clone(&log), "gate");
    let _ = plan.run_probed(
        &jobs,
        |_| 1,
        |&s| {
            let cfg = SpecJbbConfig::scaled(2, 64);
            let region = AddrRange::new(Addr(0x2000_0000), cfg.required_bytes());
            let mut mc = MachineConfig::e6000(1);
            mc.seed = s;
            let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
            m.run_until(5 * MCYCLES);
            m.begin_measurement();
            let start = m.time();
            m.run_until(start + 10 * MCYCLES);
            (m.window_report(), Some(m.counters()))
        },
    );
    log.to_jsonl(&probes::Provenance {
        git_rev: "test".into(),
        hostname: "test".into(),
        cpu_count: 4,
        timestamp: 0,
        workers: Some(1),
        effort: Some("quick".into()),
        sim_mode: Some(sim_mode.into()),
    })
}

/// Bump the first occurrence of `"name":<n>` to `<n+1>`.
fn perturb(jsonl: &str, name: &str) -> String {
    let needle = format!("\"{name}\":");
    let pos = jsonl.find(&needle).expect("counter present in the log");
    let start = pos + needle.len();
    let digits = jsonl[start..]
        .find(|c: char| !c.is_ascii_digit())
        .expect("number terminated");
    let val: u64 = jsonl[start..start + digits].parse().expect("counter value");
    format!("{}{}{}", &jsonl[..start], val + 1, &jsonl[start + digits..])
}

fn scratch(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("simdiff_gate_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write scratch file");
    path
}

fn simdiff(args: &[&PathBuf]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_simdiff"))
        .args(args.iter().map(|p| p.as_os_str()))
        .output()
        .expect("run simdiff");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("simdiff exited"), text)
}

fn simdiff_mode(mode: &str, a: &PathBuf, b: &PathBuf) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_simdiff"))
        .arg(mode)
        .arg(a)
        .arg(b)
        .output()
        .expect("run simdiff");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("simdiff exited"), text)
}

#[test]
fn drift_gate_passes_clean_reruns_and_fails_perturbed_counters() {
    // Two independent same-seed runs. Their spans differ in wall-clock
    // time (host noise), but every simulated counter must agree — which
    // is exactly the separation the gate enforces.
    let a = mini_runlog("full");
    let b = mini_runlog("full");

    let log_a = scratch("a.jsonl", &a);
    let log_b = scratch("b.jsonl", &b);

    // Same-seed re-run diffs clean.
    let (code, text) = simdiff(&[&log_a, &log_b]);
    assert_eq!(code, 0, "clean re-run must pass the gate:\n{text}");
    assert!(text.contains("PASS"), "report announces the pass:\n{text}");

    // A single perturbed counter — one retired-instruction count off by
    // one — trips the gate.
    let bad = perturb(&b, "cpustat.instr_cnt");
    let log_bad = scratch("bad.jsonl", &bad);
    let (code, text) = simdiff(&[&log_a, &log_bad]);
    assert_ne!(code, 0, "perturbed counter must fail the gate:\n{text}");
    assert!(
        text.contains("cpustat.instr_cnt"),
        "report names the drifted counter:\n{text}"
    );

    // The baseline round trip gates the same way.
    let baseline = scratch("BASELINES.json", "");
    let (code, text) = simdiff_mode("--write-baseline", &baseline, &log_a);
    assert_eq!(code, 0, "write-baseline succeeds:\n{text}");
    let (code, _) = simdiff_mode("--baseline", &baseline, &log_b);
    assert_eq!(code, 0, "clean run passes against the committed baseline");
    let (code, _) = simdiff_mode("--baseline", &baseline, &log_bad);
    assert_ne!(
        code, 0,
        "perturbed run fails against the committed baseline"
    );

    // Mismatched sim_mode provenance is refused outright, not diffed:
    // sampled-mode counters are extrapolated estimates.
    let sampled = mini_runlog("sampled");
    let log_sampled = scratch("sampled.jsonl", &sampled);
    let (code, text) = simdiff(&[&log_a, &log_sampled]);
    assert_eq!(code, 2, "mode mismatch is a refusal, not a drift:\n{text}");
    assert!(text.contains("refusing"), "refusal is explicit:\n{text}");

    for p in [log_a, log_b, log_bad, baseline, log_sampled] {
        let _ = std::fs::remove_file(p);
    }
}
