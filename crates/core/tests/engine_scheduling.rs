//! Scheduler semantics, verified with a scripted workload: lock
//! granting, adaptive spin-vs-park, semaphores, I/O sleeps, preemption,
//! stop-the-world GC and mode accounting.

use memsys::MemSink;
use middlesim::{Machine, MachineConfig};
use workloads::model::{Control, LockDesc, StepCtx, StepResult, Workload};

/// A workload whose threads each follow a fixed script of steps.
struct Scripted {
    /// Per-thread scripts: each entry is (busy instructions, control).
    scripts: Vec<Vec<(u64, Control)>>,
    /// Per-thread program counters (wrap around).
    pcs: Vec<usize>,
    locks: Vec<LockDesc>,
    /// Execution log of (thread, step index) pairs.
    log: Vec<(usize, usize)>,
}

impl Scripted {
    fn new(scripts: Vec<Vec<(u64, Control)>>, locks: Vec<LockDesc>) -> Self {
        Scripted {
            pcs: vec![0; scripts.len()],
            scripts,
            locks,
            log: Vec::new(),
        }
    }
}

impl Workload for Scripted {
    fn thread_count(&self) -> usize {
        self.scripts.len()
    }

    fn lock_table(&self) -> Vec<LockDesc> {
        self.locks.clone()
    }

    fn step(&mut self, thread: usize, ctx: &mut StepCtx<'_>) -> StepResult {
        let script = &self.scripts[thread];
        let pc = self.pcs[thread] % script.len();
        self.pcs[thread] += 1;
        self.log.push((thread, pc));
        let (instr, control) = script[pc];
        ctx.sink.instructions(instr);
        // A touch so every step does some memory work.
        ctx.sink
            .load(memsys::Addr(0x100_0000 + thread as u64 * 4096));
        StepResult::user(control)
    }

    fn collect(&mut self, sink: &mut dyn MemSink) {
        sink.instructions(100_000);
    }

    fn heap_after_last_gc(&self) -> Option<u64> {
        None
    }
}

fn machine(w: Scripted, pset: usize) -> Machine<Scripted> {
    let mut cfg = MachineConfig::e6000(pset);
    cfg.seed = 1;
    Machine::new(cfg, w)
}

#[test]
fn transactions_are_counted() {
    let w = Scripted::new(
        vec![vec![(1_000, Control::Continue), (1_000, Control::TxDone)]],
        vec![],
    );
    let mut m = machine(w, 1);
    m.run_until(5_000_000);
    assert!(m.transactions() > 100);
}

#[test]
fn mutual_exclusion_serializes_the_critical_region() {
    // Four threads on four processors fight over one mutex whose
    // critical region is nearly the whole transaction. Mutual exclusion
    // bounds throughput by the serialization limit: passages x critical
    // work cannot exceed elapsed time.
    let script = vec![
        (100, Control::Acquire(workloads::SchedLock(0))),
        (20_000, Control::Release(workloads::SchedLock(0))),
        (100, Control::TxDone),
    ];
    let w = Scripted::new(vec![script; 4], vec![LockDesc::blocking_mutex()]);
    let mut m = machine(w, 4);
    let horizon = 50_000_000;
    m.run_until(horizon);
    // Critical step: 20k instructions at base CPI 1.3 = 26k cycles each.
    let critical_cycles = m.transactions() * 26_000;
    assert!(
        critical_cycles <= horizon + horizon / 5,
        "mutex violated: {} passages x 26k cycles > {horizon} cycles",
        m.transactions()
    );
    assert!(m.transactions() > 100, "the lock must still make progress");
}

#[test]
fn semaphore_admits_capacity_holders() {
    // Three threads, a 2-capacity semaphore held across an IoWait: with
    // capacity 2 the throughput should approach 2 concurrent waits.
    let script = vec![
        (100, Control::Acquire(workloads::SchedLock(0))),
        (100, Control::IoWait(100_000)),
        (100, Control::Release(workloads::SchedLock(0))),
        (100, Control::TxDone),
    ];
    let sem2 = Scripted::new(vec![script.clone(); 3], vec![LockDesc::semaphore(2)]);
    let sem1 = Scripted::new(vec![script; 3], vec![LockDesc::semaphore(1)]);
    let mut m2 = machine(sem2, 3);
    let mut m1 = machine(sem1, 3);
    m2.run_until(30_000_000);
    m1.run_until(30_000_000);
    let (t2, t1) = (m2.transactions() as f64, m1.transactions() as f64);
    assert!(
        t2 > 1.6 * t1,
        "capacity 2 should nearly double wait throughput: {t1} vs {t2}"
    );
}

#[test]
fn io_waits_overlap_on_one_processor() {
    // Two threads that mostly sleep: one cpu should interleave them and
    // get nearly 2x the single-thread transaction rate.
    let script = vec![(50_000, Control::IoWait(400_000)), (1_000, Control::TxDone)];
    let two = Scripted::new(vec![script.clone(); 2], vec![]);
    let one = Scripted::new(vec![script; 1], vec![]);
    let mut m2 = machine(two, 1);
    let mut m1 = machine(one, 1);
    m2.run_until(40_000_000);
    m1.run_until(40_000_000);
    assert!(
        m2.transactions() as f64 > 1.7 * m1.transactions() as f64,
        "{} vs {}",
        m1.transactions(),
        m2.transactions()
    );
}

#[test]
fn preemption_shares_one_processor_between_compute_threads() {
    // Two pure-compute threads on one cpu: without preemption only one
    // would ever run.
    let script = vec![(10_000, Control::Continue), (10_000, Control::TxDone)];
    let w = Scripted::new(vec![script.clone(), script], vec![]);
    let mut m = machine(w, 1);
    m.run_until(200_000_000);
    let log = &m.workload().log;
    let t0 = log.iter().filter(|&&(t, _)| t == 0).count();
    let t1 = log.iter().filter(|&&(t, _)| t == 1).count();
    assert!(t0 > 0 && t1 > 0, "both threads must run: {t0} / {t1}");
    let ratio = t0 as f64 / t1 as f64;
    assert!((0.5..2.0).contains(&ratio), "fair-ish split: {t0} vs {t1}");
}

#[test]
fn gc_requests_stop_the_world() {
    let script = vec![
        (10_000, Control::Continue),
        (10_000, Control::NeedsGc),
        (10_000, Control::TxDone),
    ];
    let w = Scripted::new(vec![script; 4], vec![]);
    let mut m = machine(w, 4);
    m.run_until(50_000_000);
    assert!(m.gc_count() > 0);
    // GC intervals are disjoint and the report carries GC cycles.
    let report = m.window_report();
    assert!(report.gc_cycles > 0);
    for w in m.gc_intervals().windows(2) {
        assert!(w[1].0 >= w[0].1, "overlapping collections");
    }
}

#[test]
fn spin_locks_charge_busy_time_not_idle() {
    // Two threads spin-contending one lock at high duty: mode accounting
    // must show almost no idle.
    let script = vec![
        (100, Control::Acquire(workloads::SchedLock(0))),
        (50_000, Control::Release(workloads::SchedLock(0))),
        (100, Control::TxDone),
    ];
    let w = Scripted::new(vec![script; 2], vec![LockDesc::spin_mutex()]);
    let mut m = machine(w, 2);
    m.run_until(10_000_000);
    m.begin_measurement();
    let s = m.time();
    m.run_until(s + 30_000_000);
    let modes = m.window_report().modes;
    assert!(
        modes.idle < 0.05,
        "spinners keep their processors busy: idle {:.2}",
        modes.idle
    );
}

#[test]
fn blocking_locks_produce_idle_under_saturation() {
    // Four threads serialize on one *parking* mutex on four processors:
    // three processors have nothing to run most of the time.
    let script = vec![
        (100, Control::Acquire(workloads::SchedLock(0))),
        (50_000, Control::Release(workloads::SchedLock(0))),
        (100, Control::TxDone),
    ];
    let w = Scripted::new(vec![script; 4], vec![LockDesc::blocking_mutex()]);
    let mut m = machine(w, 4);
    m.run_until(10_000_000);
    m.begin_measurement();
    let s = m.time();
    m.run_until(s + 30_000_000);
    let modes = m.window_report().modes;
    assert!(
        modes.idle > 0.4,
        "serialized workload must idle the other processors: idle {:.2}",
        modes.idle
    );
}

#[test]
fn window_reset_isolates_measurements() {
    let script = vec![(5_000, Control::TxDone)];
    let w = Scripted::new(vec![script; 2], vec![]);
    let mut m = machine(w, 2);
    m.run_until(10_000_000);
    let before = m.transactions();
    m.begin_measurement();
    let r0 = m.window_report();
    assert_eq!(r0.transactions, 0, "fresh window starts empty");
    let s = m.time();
    m.run_until(s + 10_000_000);
    let r1 = m.window_report();
    assert!(r1.transactions > 0);
    assert!(m.transactions() > before);
}
