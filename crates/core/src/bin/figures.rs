//! Regenerates every measured figure of the paper and reports whether the
//! published shapes hold.
//!
//! Usage: `figures [--sampled] [quick|standard|full]
//!                 [4|5|...|16|10dram|attrib|memcurve|ablations|validate-sampled|all]...`
//!
//! Several figure names may be given at once (`figures quick 10 attrib`);
//! they share the one plan and RunLog, so the written
//! `RUNLOG_figures.jsonl` carries every named run — the form
//! `rebaseline.sh` aggregates and `ci.sh` gates.
//!
//! `--sampled` routes every plan-run experiment through the
//! signature-picked sampling path (one seed per point, fast-forward
//! between sample units) instead of every-cycle simulation; the unit
//! schedules land in the run log. `validate-sampled` runs the
//! sampled-vs-full differential matrix, writes
//! `SAMPLED_VALIDATION.csv`, and exits non-zero if any metric breaks
//! the error bound.
//!
//! Every plan-routed experiment runs with a `RunLog` attached; the
//! worker-occupancy record is written to `RUNLOG_figures.jsonl` on exit
//! (render it with `simreport RUNLOG_figures.jsonl`).

use std::sync::Arc;

use middlesim::figures::{self, processor_axis, scaling::run_scaling_with};
use middlesim::{Effort, ExperimentPlan};
use probes::runlog::{JobSpan, RunMeta};
use probes::{Provenance, RunLog};

fn effort_from(arg: Option<&str>) -> Effort {
    match arg {
        Some("standard") => Effort::Standard,
        Some("full") => Effort::Full,
        _ => Effort::Quick,
    }
}

fn report(name: &str, table: impl std::fmt::Display, violations: Vec<String>) {
    println!("{table}");
    if violations.is_empty() {
        println!("[shape OK] {name}\n");
    } else {
        println!("[shape VIOLATIONS] {name}:");
        for v in &violations {
            println!("  - {v}");
        }
        println!();
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let sampled = args.iter().any(|a| a == "--sampled");
    args.retain(|a| a != "--sampled");
    let effort = effort_from(args.get(1).map(|s| s.as_str()));
    let whichs: Vec<&str> = if args.len() > 2 {
        args[2..].iter().map(|s| s.as_str()).collect()
    } else {
        vec!["all"]
    };
    let has = |n: &str| whichs.iter().any(|&w| w == n);
    let all = has("all");
    let ps = processor_axis(effort);
    let log = Arc::new(RunLog::new());
    let mut plan = ExperimentPlan::new(effort).with_run_log(Arc::clone(&log), "figures");
    if sampled {
        plan = plan.with_mode(effort.sampled_mode());
    }

    let scaling_figs = ["4", "5", "6", "7", "8", "9"];
    if all || scaling_figs.iter().any(|f| has(f)) {
        eprintln!(
            "running scaling sweep over {ps:?} at {effort:?} ({} workers)...",
            plan.threads()
        );
        let data = run_scaling_with(&plan, ps);
        if all || has("4") {
            let f = figures::fig04::from_data(&data);
            report("Figure 4", f.table(), f.shape_violations());
        }
        if all || has("5") {
            let f = figures::fig05::from_data(&data);
            report("Figure 5", f.table(), f.shape_violations());
        }
        if all || has("6") {
            let f = figures::fig06::from_data(&data);
            report("Figure 6", f.table(), f.shape_violations());
        }
        if all || has("7") {
            let f = figures::fig07::from_data(&data);
            report("Figure 7", f.table(), f.shape_violations());
        }
        if all || has("8") {
            let f = figures::fig08::from_data(&data);
            report("Figure 8", f.table(), f.shape_violations());
        }
        if all || has("9") {
            let f = figures::fig09::from_data(&data);
            report("Figure 9", f.table(), f.shape_violations());
        }
    }

    if all || has("10") || has("10dram") {
        let dram = has("10dram") && !all && !has("10");
        let (label, name) = if dram {
            ("fig10dram", "Figure 10 (banked DRAM)")
        } else {
            ("fig10", "Figure 10")
        };
        eprintln!("running figure 10 trace ({label})...");
        let started = std::time::Instant::now();
        let f = match (dram, sampled) {
            (true, _) => figures::fig10::run_dram(effort, 8),
            (false, true) => figures::fig10::run_sampled(effort, 8),
            (false, false) => figures::fig10::run(effort, 8),
        };
        println!(
            "## {name} summary: c2c/Mcycle outside GC = {:.1}, during GC = {:.1} ({} GCs)",
            f.rate_outside_gc(),
            f.rate_during_gc(),
            f.gc_count
        );
        // The interval series goes into the shared log as its own run
        // so `simreport --simstat RUNLOG_figures.jsonl` can render it.
        let run = log.begin_run(RunMeta {
            tag: "figures".into(),
            effort: effort.name().into(),
            threads: 1,
            jobs: 1,
        });
        log.record_span(JobSpan {
            run,
            id: 0,
            label: Some(label.into()),
            worker: 0,
            claim: 0,
            cost_hint: None,
            wall_secs: started.elapsed().as_secs_f64(),
            counters: None,
        });
        log.record_intervals(f.records(run, 0));
        log.record_events(f.event_records(run, 0));
        report(name, f.table(), f.shape_violations());
    }

    if all || has("11") {
        eprintln!("running figure 11 scale sweep...");
        let axis = match effort {
            Effort::Quick => &figures::fig11::QUICK_SCALE_AXIS[..],
            _ => &figures::fig11::PAPER_SCALE_AXIS[..],
        };
        let f = figures::fig11::run_with(&plan, axis);
        report("Figure 11", f.table(), f.shape_violations());
    }

    if all || has("12") || has("13") {
        eprintln!("running figure 12/13 uniprocessor sweeps...");
        let data = figures::fig12::run_sweeps_with(&plan);
        let f12 = figures::fig12::from_data(&data);
        report("Figure 12", f12.table(), f12.shape_violations());
        let f13 = figures::fig13::from_data(&data);
        report("Figure 13", f13.table(), f13.shape_violations());
    }

    if all || has("14") || has("15") {
        eprintln!("running figure 14/15 communication footprints...");
        let f14 = figures::fig14::run_with(&plan, 8);
        let f15 = figures::fig15::from_fig14(&f14);
        report("Figure 14", f14.table(), f14.shape_violations());
        report("Figure 15", f15.table(), f15.shape_violations());
    }

    if all || has("16") {
        eprintln!("running figure 16 shared-cache topologies...");
        let f = figures::fig16::run_with(&plan);
        report("Figure 16", f.table(), f.shape_violations());
    }

    if all || has("attrib") {
        eprintln!("running cycle-attribution profiles...");
        let f = figures::attrib::run_with(&plan, 8);
        report("Cycle attribution", f.table(), f.shape_violations());
    }

    if all || has("memcurve") {
        eprintln!("running bandwidth-latency curves...");
        let c = figures::memcurve::run_with(&plan);
        std::fs::write("MEMCURVE.csv", c.csv()).expect("write MEMCURVE.csv");
        eprintln!("wrote MEMCURVE.csv ({} points)", c.points.len());
        report("Bandwidth-latency curves", c.table(), c.shape_violations());
    }

    if all || has("ablations") {
        eprintln!("running ablations...");
        let ism = figures::ablations::run_ism(effort);
        report("Ablation: ISM", ism.table(), ism.shape_violations());
        let pl = figures::ablations::run_path_length(effort, &[1, 4, 8]);
        report("Ablation: path length", pl.table(), pl.shape_violations());
        let oc = figures::ablations::run_objcache(effort, 8);
        report("Ablation: object cache", oc.table(), oc.shape_violations());
        let cl = figures::ablations::run_c2c_latency(effort, 8);
        report("Ablation: c2c latency", cl.table(), cl.shape_violations());
        let mb = figures::ablations::run_mem_backend(effort, 8);
        report(
            "Ablation: memory backend",
            mb.table(),
            mb.shape_violations(),
        );
        let mbe = figures::ablations::run_mem_backend_ecperf(effort, 2);
        report(
            "Ablation: memory backend (ECperf)",
            mbe.table(),
            mbe.shape_violations(),
        );
    }

    if has("validate-sampled") {
        eprintln!("running sampled-vs-full differential validation...");
        let v = figures::validate::run_with(&plan);
        std::fs::write("SAMPLED_VALIDATION.csv", v.csv()).expect("write SAMPLED_VALIDATION.csv");
        eprintln!("wrote SAMPLED_VALIDATION.csv ({} rows)", v.rows.len());
        let violations = v.violations();
        report("Sampled-vs-full validation", v.table(), violations.clone());
        if !violations.is_empty() {
            std::process::exit(1);
        }
    }

    if log.span_count() > 0
        || log.interval_count() > 0
        || log.sample_unit_count() > 0
        || log.event_count() > 0
        || log.attrib_count() > 0
    {
        let prov = Provenance::capture()
            .with_workers(plan.threads())
            .with_effort(effort.name())
            .with_sim_mode(if sampled { "sampled" } else { "full" });
        let file =
            std::fs::File::create("RUNLOG_figures.jsonl").expect("create RUNLOG_figures.jsonl");
        log.write_to(file, &prov)
            .expect("write RUNLOG_figures.jsonl");
        eprintln!(
            "wrote RUNLOG_figures.jsonl ({} runs, {} job spans, {} intervals, {} events) — render with `simreport RUNLOG_figures.jsonl`",
            log.run_count(),
            log.span_count(),
            log.interval_count(),
            log.event_count()
        );
    }
}
