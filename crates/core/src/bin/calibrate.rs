//! Calibration probe: prints the headline metrics of both workloads so
//! model constants can be tuned against the paper's figures.

use middlesim::{ecperf_machine, jbb_machine, measure, Effort, SweepObserver};

fn main() {
    let effort = Effort::Quick;
    println!("=== Uniprocessor sweeps (Figures 12/13) ===");
    for (name, mk) in [("SPECjbb-4wh", 0usize), ("ECperf", 1)] {
        let (isweep, dsweep, instr) = if mk == 0 {
            let mut m = jbb_machine(1, 4, 1, effort);
            let sweeps = m.attach_observer(SweepObserver::paper());
            let r = measure(&mut m, effort);
            let s = m.observer(sweeps);
            (
                s.isweep().results(),
                s.dsweep().results(),
                r.cpi.instructions,
            )
        } else {
            let mut m = ecperf_machine(1, 1, effort);
            let sweeps = m.attach_observer(SweepObserver::paper());
            let r = measure(&mut m, effort);
            let s = m.observer(sweeps);
            (
                s.isweep().results(),
                s.dsweep().results(),
                r.cpi.instructions,
            )
        };
        println!("-- {name} (instr={instr}) --");
        println!("  size      I-miss/1k   D-miss/1k");
        for ((sz, ip), (_, dp)) in isweep.iter().zip(&dsweep) {
            println!(
                "  {:>7}KB  {:>9.3}  {:>9.3}",
                sz >> 10,
                ip.misses_per_kilo_instr(instr),
                dp.misses_per_kilo_instr(instr)
            );
        }
    }

    println!("\n=== SPECjbb scaling (Figures 4-8) ===");
    println!("  P   tput     cpi   i-stall d-stall other  user  sys  idle  gcidle  c2c%  gc%  gcs");
    for p in [1usize, 2, 4, 8, 12, 15] {
        let mut m = jbb_machine(p, 2 * p.max(1), 1, effort);
        let r = measure(&mut m, effort);
        println!("  {:>2} {:>8.0} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.1} {:>4.1} {:>4}",
            p, r.throughput(), r.cpi.cpi(), r.cpi.instr_stall_cpi(), r.cpi.data_stall_cpi(),
            r.cpi.other_cpi(), r.modes.user, r.modes.system, r.modes.idle, r.modes.gc_idle,
            r.c2c_ratio * 100.0, r.gc_cycles as f64 * 100.0 / r.cycles.max(1) as f64, r.gc_count);
    }

    println!("\n=== ECperf scaling ===");
    println!("  P   tput     cpi   i-stall d-stall other  user  sys  idle  gcidle  c2c%  gc%  gcs");
    for p in [1usize, 2, 4, 8, 12, 15] {
        let mut m = ecperf_machine(p, 1, effort);
        let r = measure(&mut m, effort);
        println!("  {:>2} {:>8.0} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.1} {:>4.1} {:>4}",
            p, r.throughput(), r.cpi.cpi(), r.cpi.instr_stall_cpi(), r.cpi.data_stall_cpi(),
            r.cpi.other_cpi(), r.modes.user, r.modes.system, r.modes.idle, r.modes.gc_idle,
            r.c2c_ratio * 100.0, r.gc_cycles as f64 * 100.0 / r.cycles.max(1) as f64, r.gc_count);
    }
}
