//! `simreport` — render or validate an experiment RunLog.
//!
//! The simulation counterpart of reading `mpstat`/`cpustat` output: the
//! plan runner writes a JSONL RunLog (provenance, per-run metadata, one
//! span per job), and this binary turns it into the two tables the paper
//! works from, a Chrome-trace timeline, or schema-checks it for CI.
//!
//! Usage:
//!   simreport <runlog.jsonl>           mpstat-style worker tables plus a
//!                                      cpustat-style counter dump
//!   simreport --csv <runlog.jsonl>     one CSV row per job, counters as
//!                                      trailing columns
//!   simreport --simstat <runlog.jsonl> mpstat-style interval table with
//!                                      sparklines, plus histogram
//!                                      percentile tables
//!   simreport --simstat-csv <runlog.jsonl>
//!                                      one CSV row per sampled interval,
//!                                      counter deltas as columns
//!   simreport --attrib <runlog.jsonl>  cycle-attribution CPI-stack
//!                                      tables (phase roll-up plus one
//!                                      row per phase;component;cause;
//!                                      region stack)
//!   simreport --attrib-csv <runlog.jsonl>
//!                                      one CSV row per attribution
//!                                      stack (run, phase, component,
//!                                      cause, region, cycles, share)
//!   simreport --folded <runlog.jsonl>  attribution stacks in folded-
//!                                      stack format for inferno /
//!                                      flamegraph.pl / speedscope
//!   simreport --trace TRACE.json <runlog.jsonl>
//!                                      export the run observatory's
//!                                      Chrome trace-event JSON (load in
//!                                      Perfetto / chrome://tracing)
//!   simreport --check <runlog.jsonl>   validate the JSONL schema (and
//!                                      the trace export round-trip);
//!                                      exits nonzero with the offending
//!                                      line
//!
//! All rendering logic lives in `probes::report`/`probes::timeline`;
//! this is the argv shim.

use std::process::ExitCode;

use probes::{report, timeline};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simreport [--csv | --simstat | --simstat-csv | --attrib | --attrib-csv | \
         --folded | --trace TRACE.json | --check] <runlog.jsonl>"
    );
    ExitCode::from(2)
}

const MODES: &[&str] = &[
    "--csv",
    "--simstat",
    "--simstat-csv",
    "--attrib",
    "--attrib-csv",
    "--folded",
    "--check",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, trace_path, path) = match args.as_slice() {
        [path] => ("text", None, path),
        [flag, path] if MODES.contains(&flag.as_str()) => (flag.as_str(), None, path),
        [flag, trace, path] if flag == "--trace" => ("--trace", Some(trace), path),
        _ => return usage(),
    };

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simreport: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let log = match report::check(&src) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("simreport: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match mode {
        "--check" => {
            // The timeline export is part of the schema contract: a log
            // that renders to an invalid trace fails --check.
            let trace = timeline::render_chrome_trace(&log);
            let summary = match timeline::validate_chrome_trace(&trace) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("simreport: {path}: trace export failed validation: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{path}: ok ({} runs, {} job spans, {} intervals, {} histograms, {} sample \
                 units, {} events, {} attrib stacks; trace: {summary})",
                log.runs.len(),
                log.jobs.len(),
                log.intervals.len(),
                log.hists.len(),
                log.sample_units.len(),
                log.events.len(),
                log.attribs.len()
            );
        }
        "--trace" => {
            let out = trace_path.expect("--trace carries an output path");
            let trace = timeline::render_chrome_trace(&log);
            let summary = match timeline::validate_chrome_trace(&trace) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("simreport: {path}: trace export failed validation: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(out, &trace) {
                eprintln!("simreport: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {out} ({summary}) — load in Perfetto (ui.perfetto.dev) or \
                 chrome://tracing"
            );
        }
        "--csv" => print!("{}", report::render_csv(&log)),
        "--attrib" | "--attrib-csv" | "--folded" => {
            if log.attribs.is_empty() {
                eprintln!(
                    "simreport: {path}: no attrib records — this RunLog has no cycle \
                     attribution to render (was an AttribProfiler attached?)"
                );
                return ExitCode::FAILURE;
            }
            match mode {
                "--attrib" => print!("{}", report::render_attrib(&log)),
                "--attrib-csv" => print!("{}", report::render_attrib_csv(&log)),
                _ => print!("{}", report::render_folded(&log)),
            }
        }
        "--simstat" | "--simstat-csv" => {
            if log.intervals.is_empty() && log.hists.is_empty() {
                eprintln!(
                    "simreport: {path}: no interval or histogram records — this RunLog has no \
                     time-series telemetry to render (was the run sampled?)"
                );
                return ExitCode::FAILURE;
            }
            if mode == "--simstat" {
                print!("{}", report::render_simstat(&log));
            } else {
                print!("{}", report::render_interval_csv(&log));
            }
        }
        _ => print!("{}", report::render_text(&log)),
    }
    ExitCode::SUCCESS
}
