//! `simreport` — render or validate an experiment RunLog.
//!
//! The simulation counterpart of reading `mpstat`/`cpustat` output: the
//! plan runner writes a JSONL RunLog (provenance, per-run metadata, one
//! span per job), and this binary turns it into the two tables the paper
//! works from, or schema-checks it for CI.
//!
//! Usage:
//!   simreport <runlog.jsonl>           mpstat-style worker tables plus a
//!                                      cpustat-style counter dump
//!   simreport --csv <runlog.jsonl>     one CSV row per job, counters as
//!                                      trailing columns
//!   simreport --simstat <runlog.jsonl> mpstat-style interval table with
//!                                      sparklines, plus histogram
//!                                      percentile tables
//!   simreport --simstat-csv <runlog.jsonl>
//!                                      one CSV row per sampled interval,
//!                                      counter deltas as columns
//!   simreport --check <runlog.jsonl>   validate the JSONL schema; exits
//!                                      nonzero with the offending line
//!
//! All rendering logic lives in `probes::report`; this is the argv shim.

use std::process::ExitCode;

use probes::report;

fn usage() -> ExitCode {
    eprintln!("usage: simreport [--csv | --simstat | --simstat-csv | --check] <runlog.jsonl>");
    ExitCode::from(2)
}

const MODES: &[&str] = &["--csv", "--simstat", "--simstat-csv", "--check"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [path] => ("text", path),
        [flag, path] if MODES.contains(&flag.as_str()) => (flag.as_str(), path),
        _ => return usage(),
    };

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simreport: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let log = match report::check(&src) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("simreport: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match mode {
        "--check" => {
            println!(
                "{path}: ok ({} runs, {} job spans, {} intervals, {} histograms, {} sample units)",
                log.runs.len(),
                log.jobs.len(),
                log.intervals.len(),
                log.hists.len(),
                log.sample_units.len()
            );
        }
        "--csv" => print!("{}", report::render_csv(&log)),
        "--simstat" | "--simstat-csv" => {
            if log.intervals.is_empty() && log.hists.is_empty() {
                eprintln!(
                    "simreport: {path}: no interval or histogram records — this RunLog has no \
                     time-series telemetry to render (was the run sampled?)"
                );
                return ExitCode::FAILURE;
            }
            if mode == "--simstat" {
                print!("{}", report::render_simstat(&log));
            } else {
                print!("{}", report::render_interval_csv(&log));
            }
        }
        _ => print!("{}", report::render_text(&log)),
    }
    ExitCode::SUCCESS
}
